//! `earthd` — the EARTH-C compile-and-run daemon.
//!
//! ```text
//! earthd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!        [--spill DIR] [--deadline-ms N]
//! ```
//!
//! Binds (default `127.0.0.1:0`, i.e. an OS-assigned port), prints
//! `earthd listening on ADDR`, and serves newline-delimited JSON
//! requests — `compile`, `run`, `pgo`, `lint`, `stats`, `ping`,
//! `shutdown` — until a `shutdown` request arrives. Identical compile
//! requests are answered from a content-addressed artifact cache
//! without re-running any analysis; see `earth_serve` for the protocol
//! and `earthc::serve` for the cache-key discipline.
//!
//! Talk to it with `earthcc client <cmd> --addr ADDR` or any
//! line-oriented TCP tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match earthc::serve::run_daemon(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
