//! `earthcc` — command-line driver for the EARTH-C pipeline.
//!
//! ```text
//! earthcc run  prog.ec [--nodes N] [--no-opt] [--no-locality] [--verify-placement]
//!                      [--alias binary|prob] [--escape on|off] [--workers N]
//!                      [--timings] [--report-json]
//!                      [--arg V]... [--profile-out FILE | --profile-in FILE]
//! earthcc pgo  prog.ec [--nodes N] [--workers N] [--arg V]...   # instrument, run, recompile
//! earthcc dump prog.ec [--simple | --optimized] [--func NAME]
//! earthcc stats prog.ec [--nodes N] [--arg V]...   # simple vs optimized
//! earthcc lint prog.ec [--json]        # parallel-soundness linter
//! earthcc lint --explain <CODE|all>    # rule documentation (no input file)
//! earthcc verify prog.ec [--json] [--alias binary|prob] [--escape on|off]
//! ```
//!
//! `--lint` and `--verify-placement` are accepted as aliases for the `lint`
//! and `verify` subcommands.
//!
//! `--alias prob` turns on the probabilistic alias mode: branch/loop
//! likelihood heuristics (measured frequencies under PGO) weight the
//! optimizer's cost model, and recognized loop pointer inductions may relax
//! the blocking cost gate. Safety stays binary — `earthcc verify
//! --alias prob` replays and independently re-checks every motion,
//! including the `ALP` re-derivation of each probability-justified one.
//! `earthcc lint --explain PLC002` (or any `IR`/`PAR`/`PLC`/`ALP`/`ESC`/
//! `DCM` code) prints the rule's documentation; `--explain all` lists
//! every rule.
//!
//! `--escape on` turns on the whole-program escape & node-affinity
//! analysis: heap regions proven node-local (or owner-confined) stop
//! compiling to split-phase communication entirely. `earthcc verify
//! --escape on` re-derives every recorded upgrade from the
//! pre-optimization IR (`ESC` codes) and additionally runs the
//! dead-communication checker over the optimized output (`DCM` codes).
//!
//! Compilation runs under the pass manager: every enabled pass (locality,
//! placement verification, race lint, optimization, IR validation) shares
//! one cached whole-program analysis, and `--timings` / `--report-json`
//! print the per-pass wall times and cache counters.
//!
//! Profile-guided optimization: `run --profile-out` executes the
//! instrumented build (pre-passes only, per-site trace recording) and
//! writes the profile as JSON; `run --profile-in` feeds such a profile
//! back into the optimizer and prints the `pgo:` accounting line;
//! `earthcc pgo` does both in one shot and compares static vs profiled.

use earthc::earth_commopt::{optimize_program, AliasMode, CommOptConfig, EscapeMode};
use earthc::earth_ir::{diag, pretty, Severity};
use earthc::earth_serve::client::Client;
use earthc::earth_serve::proto::{Arg, CompileOptions, Response};
use earthc::{earth_lint, Pipeline, PipelineReport, Profile, ProfileDb, Value};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  earthcc run    <file.ec> [--nodes N] [--no-opt] [--no-locality] [--verify-placement] [--alias binary|prob] [--escape on|off] [--workers N] [--timings] [--report-json] [--entry NAME] [--arg V]... [--profile-out FILE | --profile-in FILE]\n  earthcc pgo    <file.ec> [--nodes N] [--alias binary|prob] [--escape on|off] [--workers N] [--entry NAME] [--arg V]...\n  earthcc dump   <file.ec> [--optimized] [--alias binary|prob] [--escape on|off] [--fibers] [--func NAME]\n  earthcc stats  <file.ec> [--nodes N] [--alias binary|prob] [--escape on|off] [--entry NAME] [--arg V]...\n  earthcc lint   <file.ec> [--json]\n  earthcc lint   --explain <CODE|all>\n  earthcc verify <file.ec> [--json] [--alias binary|prob] [--escape on|off]\n  earthcc serve  [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--spill DIR] [--deadline-ms N]\n  earthcc client <compile|run|pgo|lint|stats|ping|shutdown> [file.ec] --addr HOST:PORT [--nodes N] [--entry NAME] [--arg V]... [--no-opt] [--no-locality] [--use-profile] [--deadline-ms N]\n<file.ec> may be `olden:<name>` to target an embedded Olden kernel (power, tsp, health, perimeter, voronoi)"
    );
    ExitCode::from(2)
}

/// The one-line PGO accounting summary from the `pgo-optimize` pass.
fn pgo_line(report: &PipelineReport) -> Option<String> {
    let p = report.pass("pgo-optimize")?;
    Some(format!(
        "pgo: sites_instrumented={} sites_matched={} decisions_flipped={}",
        p.get_counter("sites_instrumented").unwrap_or(0),
        p.get_counter("sites_matched").unwrap_or(0),
        p.get_counter("decisions_flipped").unwrap_or(0)
    ))
}

struct Opts {
    file: String,
    nodes: u16,
    optimize: bool,
    locality: bool,
    entry: String,
    args: Vec<Value>,
    func: Option<String>,
    dump_optimized: bool,
    dump_fibers: bool,
    verify: bool,
    json: bool,
    workers: Option<usize>,
    timings: bool,
    report_json: bool,
    profile_in: Option<String>,
    profile_out: Option<String>,
    addr: Option<String>,
    use_profile: bool,
    deadline_ms: Option<u64>,
    alias: AliasMode,
    escape: EscapeMode,
}

impl Opts {
    /// The optimizer configuration the parsed flags describe.
    fn commopt_cfg(&self) -> CommOptConfig {
        CommOptConfig {
            alias: self.alias,
            escape: self.escape,
            ..CommOptConfig::default()
        }
    }
}

fn parse_opts(rest: &[String], needs_file: bool) -> Result<Opts, String> {
    let mut o = Opts {
        file: String::new(),
        nodes: 1,
        optimize: true,
        locality: true,
        entry: "main".into(),
        args: Vec::new(),
        func: None,
        dump_optimized: false,
        dump_fibers: false,
        verify: false,
        json: false,
        workers: None,
        timings: false,
        report_json: false,
        profile_in: None,
        profile_out: None,
        addr: None,
        use_profile: false,
        deadline_ms: None,
        alias: AliasMode::Binary,
        escape: EscapeMode::Off,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                o.nodes = it
                    .next()
                    .ok_or("--nodes needs a value")?
                    .parse()
                    .map_err(|_| "--nodes needs an integer")?;
            }
            "--no-opt" => o.optimize = false,
            "--no-locality" => o.locality = false,
            "--optimized" => o.dump_optimized = true,
            "--fibers" => o.dump_fibers = true,
            "--verify-placement" => o.verify = true,
            "--json" => o.json = true,
            "--timings" => o.timings = true,
            "--report-json" => o.report_json = true,
            "--workers" => {
                o.workers = Some(
                    it.next()
                        .ok_or("--workers needs a value")?
                        .parse()
                        .map_err(|_| "--workers needs an integer")?,
                );
            }
            "--profile-in" => {
                o.profile_in = Some(it.next().ok_or("--profile-in needs a file")?.clone());
            }
            "--profile-out" => {
                o.profile_out = Some(it.next().ok_or("--profile-out needs a file")?.clone());
            }
            "--addr" => o.addr = Some(it.next().ok_or("--addr needs a value")?.clone()),
            "--use-profile" => o.use_profile = true,
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a value")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs an integer")?,
                );
            }
            "--alias" => {
                o.alias = match it.next().ok_or("--alias needs a value")?.as_str() {
                    "binary" => AliasMode::Binary,
                    "prob" => AliasMode::Prob,
                    other => {
                        return Err(format!("--alias must be `binary` or `prob`, got `{other}`"))
                    }
                };
            }
            "--escape" => {
                o.escape = match it.next().ok_or("--escape needs a value")?.as_str() {
                    "on" => EscapeMode::On,
                    "off" => EscapeMode::Off,
                    other => return Err(format!("--escape must be `on` or `off`, got `{other}`")),
                };
            }
            "--entry" => o.entry = it.next().ok_or("--entry needs a value")?.clone(),
            "--func" => o.func = Some(it.next().ok_or("--func needs a value")?.clone()),
            "--arg" => {
                let v = it.next().ok_or("--arg needs a value")?;
                let val = if v.contains('.') {
                    Value::Double(v.parse().map_err(|_| "bad double argument")?)
                } else {
                    Value::Int(v.parse().map_err(|_| "bad integer argument")?)
                };
                o.args.push(val);
            }
            other if !other.starts_with('-') && o.file.is_empty() => o.file = other.to_string(),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if needs_file && o.file.is_empty() {
        return Err("no input file".into());
    }
    if o.profile_in.is_some() && o.profile_out.is_some() {
        return Err("--profile-in and --profile-out are mutually exclusive".into());
    }
    Ok(o)
}

/// Prints the documentation for one diagnostic code (or lists them all),
/// sourced from the same registry the diagnostics are checked against.
fn explain(code: &str) -> ExitCode {
    use earthc::earth_ir::rules;
    if code == "all" {
        for r in rules::RULES {
            println!("{}  {}", r.code, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    match rules::lookup(code) {
        Some(r) => {
            println!("{} — {}", r.code, r.summary);
            println!();
            println!("{}", r.detail);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown diagnostic code `{code}` (try `--explain all`)");
            ExitCode::FAILURE
        }
    }
}

/// Reads one source file, or reports the single-line diagnostic the
/// CLI contract requires for unreadable paths. The pseudo-path
/// `olden:<name>` resolves to the embedded Olden kernel of that name, so
/// sweeps (e.g. CI's validator run) can target the benchmark suite
/// without materializing it on disk.
fn read_source(path: &str) -> Result<String, ExitCode> {
    if let Some(name) = path.strip_prefix("olden:") {
        return match earthc::earth_olden::by_name(name) {
            Some(b) => Ok(b.source.to_string()),
            None => {
                let known: Vec<&str> = earthc::earth_olden::suite()
                    .iter()
                    .map(|b| b.name)
                    .collect();
                eprintln!(
                    "error: unknown Olden kernel `{name}` (known: {})",
                    known.join(", ")
                );
                Err(ExitCode::FAILURE)
            }
        };
    }
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read `{path}`: {e}");
        ExitCode::FAILURE
    })
}

fn client_cmd(rest: &[String]) -> ExitCode {
    let Some((sub, rest)) = rest.split_first() else {
        return usage();
    };
    let needs_file = matches!(sub.as_str(), "compile" | "run" | "pgo" | "lint");
    let opts = match parse_opts(rest, needs_file) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let Some(addr) = opts.addr.clone() else {
        eprintln!("error: client needs --addr HOST:PORT");
        return ExitCode::FAILURE;
    };
    let source = if needs_file {
        match read_source(&opts.file) {
            Ok(s) => s,
            Err(code) => return code,
        }
    } else {
        String::new()
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to `{addr}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    client.deadline_ms = opts.deadline_ms;
    let copts = CompileOptions {
        optimize: opts.optimize,
        locality: opts.locality,
        use_profile: opts.use_profile,
    };
    let args: Vec<Arg> = opts
        .args
        .iter()
        .map(|v| match v {
            Value::Int(n) => Arg::Int(*n),
            Value::Double(x) => Arg::Double(*x),
            other => Arg::Int(format!("{other}").parse().unwrap_or(0)),
        })
        .collect();
    let outcome = match sub.as_str() {
        "compile" => client.compile(&source, copts).map(|resp| {
            if let Response::Compile {
                key, cached, ir, ..
            } = resp
            {
                println!("key:    {key}");
                println!("cached: {cached}");
                print!("{ir}");
            }
        }),
        "run" => client
            .run(&source, copts, &opts.entry, opts.nodes, args)
            .map(|resp| {
                if let Response::Run {
                    key,
                    cached,
                    ret,
                    time_ns,
                    stats,
                    output,
                    ..
                } = resp
                {
                    println!("result: {ret}");
                    println!("time:   {time_ns} ns");
                    println!("stats:  {stats}");
                    for line in &output {
                        println!("output: {line}");
                    }
                    println!("cached: {cached} key: {key}");
                }
            }),
        "pgo" => client
            .pgo(&source, &opts.entry, opts.nodes, args)
            .map(|resp| {
                if let Response::Pgo {
                    sites,
                    merged_sites,
                    invalidated,
                    ret,
                    ..
                } = resp
                {
                    println!("result: {ret}");
                    println!(
                        "pgo: sites={sites} merged_sites={merged_sites} invalidated={invalidated}"
                    );
                }
            }),
        "lint" => client.lint(&source).map(|resp| {
            if let Response::Lint {
                independent,
                diagnostics,
                ..
            } = resp
            {
                println!("independent: {independent}");
                println!("{diagnostics}");
            }
        }),
        "stats" => client.stats().map(|stats| print!("{}", stats.render())),
        "ping" => client.ping().map(|()| println!("pong")),
        "shutdown" => client
            .shutdown()
            .map(|()| println!("shutdown acknowledged")),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    match cmd.as_str() {
        "serve" => {
            return match earthc::serve::run_daemon(rest) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        "client" => return client_cmd(rest),
        "lint" => {
            // `lint --explain CODE` documents a diagnostic; no input file.
            if let Some(i) = rest.iter().position(|a| a == "--explain") {
                let Some(code) = rest.get(i + 1) else {
                    eprintln!("error: --explain needs a diagnostic code or `all`");
                    return usage();
                };
                return explain(code);
            }
        }
        _ => {}
    }
    let opts = match parse_opts(rest, true) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let src = match read_source(&opts.file) {
        Ok(s) => s,
        Err(code) => return code,
    };
    match cmd.as_str() {
        "run" => {
            let mut pipeline = Pipeline::new()
                .nodes(opts.nodes)
                .optimizer(opts.optimize.then(|| opts.commopt_cfg()))
                .verify(opts.verify)
                .locality(opts.locality)
                .entry(opts.entry.clone());
            if let Some(w) = opts.workers {
                pipeline = pipeline.workers(w);
            }
            if let Some(path) = &opts.profile_out {
                // Instrumented run: pre-passes only, site recording on.
                return match pipeline.instrument_source(&src, &opts.args) {
                    Ok((r, profile)) => {
                        if let Err(e) = std::fs::write(path, profile.to_json()) {
                            eprintln!("error: cannot write `{path}`: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("result: {}", r.ret);
                        println!("time:   {} ns", r.time_ns);
                        println!("stats:  {}", r.stats);
                        for line in &r.output {
                            println!("output: {line}");
                        }
                        println!("profile: {} sites -> {path}", profile.len());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        ExitCode::FAILURE
                    }
                };
            }
            if let Some(path) = &opts.profile_in {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let profile = match Profile::from_json(&text) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("error: bad profile `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                pipeline = pipeline.profile(Some(Arc::new(ProfileDb::new(profile))));
            }
            match pipeline.run_source_report(&src, &opts.args) {
                Ok((r, report)) => {
                    println!("result: {}", r.ret);
                    println!("time:   {} ns", r.time_ns);
                    println!("stats:  {}", r.stats);
                    for line in &r.output {
                        println!("output: {line}");
                    }
                    if let Some(line) = pgo_line(&report) {
                        println!("{line}");
                    }
                    if opts.timings {
                        print!("{}", report.render());
                    }
                    if opts.report_json {
                        println!("{}", report.to_json());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "pgo" => {
            let mut base = Pipeline::new()
                .nodes(opts.nodes)
                .locality(opts.locality)
                .entry(opts.entry.clone());
            if let Some(w) = opts.workers {
                base = base.workers(w);
            }
            let (instrumented, profile) = match base.instrument_source(&src, &opts.args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: instrumented run failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let static_build = base.clone().optimizer(Some(opts.commopt_cfg()));
            let profiled_build = static_build
                .clone()
                .profile(Some(Arc::new(ProfileDb::new(profile.clone()))));
            match (
                static_build.run_source(&src, &opts.args),
                profiled_build.run_source_report(&src, &opts.args),
            ) {
                (Ok(st), Ok((pg, report))) => {
                    assert_eq!(st.ret, pg.ret, "static and profiled builds disagree");
                    println!("result:       {}", st.ret);
                    println!(
                        "instrumented: {:>12} ns | {} sites profiled",
                        instrumented.time_ns,
                        profile.len()
                    );
                    println!("static:       {:>12} ns | {}", st.time_ns, st.stats);
                    println!("profiled:     {:>12} ns | {}", pg.time_ns, pg.stats);
                    println!(
                        "improvement:  {:.2}%  comm: {} -> {}",
                        100.0 * (st.time_ns as f64 - pg.time_ns as f64) / st.time_ns as f64,
                        st.stats.total_comm(),
                        pg.stats.total_comm()
                    );
                    if let Some(line) = pgo_line(&report) {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "dump" => {
            let mut prog = match earthc::compile_earth_c(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if opts.dump_optimized {
                optimize_program(&mut prog, &opts.commopt_cfg());
            }
            if opts.dump_fibers {
                let analysis = earthc::earth_analysis::analyze(&prog);
                for (fid, f) in prog.iter_functions() {
                    if let Some(name) = &opts.func {
                        if &f.name != name {
                            continue;
                        }
                    }
                    let report = earthc::earth_sim::build_ddg(f, analysis.function(fid));
                    println!("{}", earthc::earth_sim::render_fibers(f, &report));
                }
                return ExitCode::SUCCESS;
            }
            match &opts.func {
                Some(name) => match prog.function_by_name(name) {
                    Some(id) => println!("{}", pretty::print_function_default(&prog, id)),
                    None => {
                        eprintln!("error: no function `{name}`");
                        return ExitCode::FAILURE;
                    }
                },
                None => println!("{}", pretty::print_program(&prog)),
            }
            ExitCode::SUCCESS
        }
        "stats" => {
            let run = |optimize: bool| {
                Pipeline::new()
                    .nodes(opts.nodes)
                    .optimizer(optimize.then(|| opts.commopt_cfg()))
                    .locality(opts.locality)
                    .entry(opts.entry.clone())
                    .run_source(&src, &opts.args)
            };
            match (run(false), run(true)) {
                (Ok(simple), Ok(optimized)) => {
                    assert_eq!(simple.ret, optimized.ret, "builds disagree");
                    println!("result:    {}", simple.ret);
                    println!("simple:    {:>12} ns | {}", simple.time_ns, simple.stats);
                    println!(
                        "optimized: {:>12} ns | {}",
                        optimized.time_ns, optimized.stats
                    );
                    println!(
                        "improvement: {:.2}%  comm: {} -> {}",
                        100.0 * (simple.time_ns as f64 - optimized.time_ns as f64)
                            / simple.time_ns as f64,
                        simple.stats.total_comm(),
                        optimized.stats.total_comm()
                    );
                    ExitCode::SUCCESS
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "lint" | "--lint" => {
            let prog = match earthc::compile_earth_c(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = earth_lint::lint_program(&prog);
            if opts.json {
                println!("{}", diag::to_json_array(&report.diagnostics));
            } else {
                for v in &report.verdicts {
                    println!(
                        "{}: {} at {}: {}",
                        v.func,
                        v.construct.name(),
                        v.label,
                        if v.independent {
                            "provably independent"
                        } else {
                            "possibly racy"
                        }
                    );
                }
                if !report.diagnostics.is_empty() {
                    println!("{}", diag::render_all(&report.diagnostics));
                }
            }
            if report.all_independent() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "verify" | "--verify-placement" => {
            let mut prog = match earthc::compile_earth_c(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if opts.locality {
                earthc::earth_analysis::infer_locality(&mut prog);
            }
            let mut violations = earth_lint::verify_program(&prog, &opts.commopt_cfg());
            // Post-optimization dead-communication check: optimize a copy
            // under the same configuration and flag fetches whose results
            // are never consumed (DCM001/DCM002).
            let mut optimized = prog.clone();
            optimize_program(&mut optimized, &opts.commopt_cfg());
            violations.extend(earth_lint::dead_comm::check_program(&optimized));
            if opts.json {
                println!("{}", diag::to_json_array(&violations));
            } else if violations.is_empty() {
                println!("ok: every planned motion verified");
            } else {
                println!("{}", diag::render_all(&violations));
            }
            if violations.iter().any(|d| d.severity == Severity::Error) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
