//! The `earthd` backend: [`earth_serve::Backend`] implemented over the
//! [`Pipeline`], plus the daemon bootstrap shared by the `earthd`
//! binary and `earthcc serve`.
//!
//! This is the glue that gives the serving layer its cache-key
//! discipline. A key is the FNV-1a hash of every input that determines
//! the optimized artifact:
//!
//! - the exact source text,
//! - the compile options (optimizer on/off, locality on/off,
//!   profile-guided or not) and the optimizer configuration,
//! - the canonical JSON of the accumulated PGO profile (only when the
//!   request opts into `use_profile` — a profile-independent build must
//!   not churn its key when profiles merge),
//! - the toolchain fingerprint (crate version + protocol version), so a
//!   daemon restarted on a newer toolchain never trusts old spill
//!   files.
//!
//! A cache hit therefore *is* a proof that re-running the pipeline
//! would reproduce the artifact byte for byte, which is what lets the
//! daemon skip parsing, analysis, placement, and selection entirely.

use crate::{CommOptConfig, Pipeline, Profile, ProfileDb, Value};
use earth_serve::hash::Fnv1a;
use earth_serve::proto::{Arg, CompileOptions, PROTOCOL_VERSION};
use earth_serve::server::{Server, ServerConfig};
use earth_serve::{Artifact, Backend, CompileOutput, LintOutput, PgoOutput, RunOutput};
use std::sync::{Arc, Mutex};

/// The daemon's accumulated profile state: every `pgo` request merges
/// into one profile (profiles are commutative merges of site counters),
/// and the epoch counts merges for cache-invalidation tags.
struct ProfileState {
    profile: Option<Profile>,
    epoch: u64,
}

/// [`Backend`] over the full `earthc` [`Pipeline`].
///
/// Stateless except for the accumulated PGO profile; all compile state
/// lives in the serving layer's artifact cache.
pub struct PipelineBackend {
    state: Mutex<ProfileState>,
}

impl Default for PipelineBackend {
    fn default() -> Self {
        PipelineBackend::new()
    }
}

impl PipelineBackend {
    /// A backend with no accumulated profile.
    pub fn new() -> Self {
        PipelineBackend {
            state: Mutex::new(ProfileState {
                profile: None,
                epoch: 0,
            }),
        }
    }

    /// The pipeline a request's options describe. `entry`/`nodes` are
    /// per-run settings, not compile settings, so they are not here —
    /// and correspondingly not part of the cache key.
    fn pipeline(&self, opts: &CompileOptions) -> Pipeline {
        let mut p = Pipeline::new()
            .optimizer(opts.optimize.then(CommOptConfig::default))
            .locality(opts.locality);
        if opts.use_profile {
            let st = self.state.lock().expect("profile lock");
            if let Some(profile) = &st.profile {
                p = p.profile(Some(Arc::new(ProfileDb::new(profile.clone()))));
            }
        }
        p
    }
}

fn to_values(args: &[Arg]) -> Vec<Value> {
    args.iter()
        .map(|a| match a {
            Arg::Int(n) => Value::Int(*n),
            Arg::Double(x) => Value::Double(*x),
        })
        .collect()
}

impl Backend for PipelineBackend {
    type Exec = earth_sim::CompiledProgram;

    fn toolchain(&self) -> String {
        format!(
            "earthc/{} proto/{PROTOCOL_VERSION}",
            env!("CARGO_PKG_VERSION")
        )
    }

    fn cache_key(&self, source: &str, opts: &CompileOptions) -> u64 {
        let mut h = Fnv1a::new();
        h.str_field(&self.toolchain());
        h.str_field(source);
        h.field(&[
            opts.optimize as u8,
            opts.locality as u8,
            opts.use_profile as u8,
        ]);
        if opts.optimize {
            // The daemon always compiles with the default optimizer
            // configuration; fingerprint it anyway so a future knob
            // can't silently alias keys.
            h.str_field(&format!("{:?}", CommOptConfig::default()));
        }
        if opts.use_profile {
            let st = self.state.lock().expect("profile lock");
            if let Some(profile) = &st.profile {
                h.str_field(&profile.canonical().to_json());
            }
        }
        h.finish()
    }

    fn cache_tag(&self, opts: &CompileOptions) -> u64 {
        if !opts.use_profile {
            return 0;
        }
        let st = self.state.lock().expect("profile lock");
        if st.profile.is_some() {
            st.epoch
        } else {
            // No profile yet: the build is profile-independent.
            0
        }
    }

    fn compile(
        &self,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<CompileOutput<earth_sim::CompiledProgram>, String> {
        let pipeline = self.pipeline(opts);
        let mut prog = earth_frontend::compile(source).map_err(|e| format!("frontend: {e}"))?;
        let report = pipeline
            .apply_passes(&mut prog)
            .map_err(|e| e.to_string())?;
        let ir = earth_ir::pretty::print_program(&prog);
        let exec = earth_sim::compile(&prog, earth_sim::CodegenOptions::default())
            .map_err(|e| format!("codegen: {e}"))?;
        let timings = report
            .passes
            .iter()
            .map(|p| (p.name.to_string(), p.wall.as_nanos() as u64))
            .collect();
        let analyses = report.cache.misses;
        Ok(CompileOutput {
            artifact: Artifact {
                source: source.to_string(),
                opts: opts.clone(),
                ir,
                report: report.to_json(),
                exec: Some(exec),
            },
            timings,
            analyses,
        })
    }

    fn run(
        &self,
        artifact: &Artifact<earth_sim::CompiledProgram>,
        entry: &str,
        nodes: u16,
        args: &[Arg],
    ) -> Result<RunOutput, String> {
        // A spill-restored artifact lost its bytecode; rebuild it from
        // the stored source (same key inputs, so same result).
        let rebuilt;
        let exec = match &artifact.exec {
            Some(exec) => exec,
            None => {
                rebuilt = self.compile(&artifact.source, &artifact.opts)?;
                rebuilt.artifact.exec.as_ref().expect("compile sets exec")
            }
        };
        let entry_fn = exec
            .function_by_name(entry)
            .ok_or_else(|| format!("no function named `{entry}`"))?;
        let mc = earth_sim::MachineConfig {
            n_nodes: nodes,
            ..Default::default()
        };
        let mut machine = earth_sim::Machine::new(mc);
        let result = machine
            .run(exec, entry_fn, &to_values(args))
            .map_err(|e| format!("simulation: {e}"))?;
        Ok(RunOutput {
            ret: result.ret.to_string(),
            time_ns: result.time_ns,
            stats: result.stats.to_string(),
            output: result.output.clone(),
        })
    }

    fn pgo(
        &self,
        source: &str,
        entry: &str,
        nodes: u16,
        args: &[Arg],
    ) -> Result<PgoOutput, String> {
        let pipeline = Pipeline::new().nodes(nodes).entry(entry);
        let (result, measured) = pipeline
            .instrument_source(source, &to_values(args))
            .map_err(|e| format!("instrumented run: {e}"))?;
        let sites = measured.len() as u64;
        let mut st = self.state.lock().expect("profile lock");
        match &mut st.profile {
            Some(acc) => acc.merge(&measured),
            None => st.profile = Some(measured),
        }
        st.epoch += 1;
        let merged_sites = st.profile.as_ref().map(Profile::len).unwrap_or(0) as u64;
        Ok(PgoOutput {
            sites,
            merged_sites,
            ret: result.ret.to_string(),
        })
    }

    fn lint(&self, source: &str) -> Result<LintOutput, String> {
        let prog = earth_frontend::compile(source).map_err(|e| format!("frontend: {e}"))?;
        let report = earth_lint::lint_program(&prog);
        Ok(LintOutput {
            independent: report.all_independent(),
            diagnostics: earth_ir::diag::to_json_array(&report.diagnostics),
        })
    }
}

/// Parses daemon flags shared by `earthd` and `earthcc serve`:
/// `[--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
/// [--spill DIR] [--deadline-ms N]`.
///
/// # Errors
///
/// A single-line description of the offending flag.
pub fn parse_daemon_args(rest: &[String]) -> Result<(String, ServerConfig), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<usize, String> {
            it.next()
                .ok_or(format!("{flag} needs a value"))?
                .parse()
                .map_err(|_| format!("{flag} needs an integer"))
        };
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--workers" => config.workers = num("--workers")?,
            "--queue" => config.queue_capacity = num("--queue")?,
            "--cache" => config.cache_capacity = num("--cache")?,
            "--deadline-ms" => config.default_deadline_ms = Some(num("--deadline-ms")? as u64),
            "--spill" => {
                config.spill_dir = Some(it.next().ok_or("--spill needs a directory")?.into());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((addr, config))
}

/// Binds and runs the daemon until a `shutdown` request arrives. Prints
/// `earthd listening on ADDR` once bound (the CI smoke job and scripts
/// scrape the port from that line).
///
/// # Errors
///
/// A single-line description of the bind failure or bad flag.
pub fn run_daemon(rest: &[String]) -> Result<(), String> {
    let (addr, config) = parse_daemon_args(rest)?;
    let server = Server::bind(&addr, config, PipelineBackend::new())
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    println!("earthd listening on {}", server.local_addr());
    // The line above is a machine interface; make sure it is visible
    // before the (potentially long-lived) blocking run.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run();
    Ok(())
}
