//! # earthc — reproduction of *Communication Optimizations for Parallel C Programs*
//!
//! A full reimplementation of the system described by Yingchun Zhu and
//! Laurie J. Hendren (PLDI 1998): an optimizing compiler pipeline for the
//! EARTH-C parallel dialect of C that reduces communication overhead for
//! programs using dynamically-allocated data structures, evaluated on a
//! simulator of the EARTH-MANNA distributed-memory multithreaded machine.
//!
//! This crate is the facade tying the workspace together:
//!
//! | crate | role |
//! |---|---|
//! | [`earth_frontend`] | EARTH-C subset → SIMPLE IR (three-address, ≤ 1 remote op/stmt) |
//! | [`earth_ir`] | the SIMPLE intermediate representation |
//! | [`earth_analysis`] | regions/connection, read-write sets, locality |
//! | [`earth_commopt`] | **the paper**: possible-placement analysis + communication selection |
//! | [`earth_sim`] | EARTH-MANNA discrete-event simulator (Table-I cost model) |
//! | [`earth_olden`] | the five Olden benchmarks in EARTH-C |
//!
//! # Examples
//!
//! Compile, optimize, and run a program on a simulated 4-node machine:
//!
//! ```
//! use earthc::{compile_earth_c, Pipeline};
//!
//! let result = Pipeline::new()
//!     .nodes(4)
//!     .run_source(r#"
//!         struct Point { double x; double y; };
//!         double main() {
//!             Point *p;
//!             p = malloc_on(1, sizeof(Point));
//!             p->x = 3.0;
//!             p->y = 4.0;
//!             return sqrt(p->x * p->x + p->y * p->y);
//!         }
//!     "#, &[]).unwrap();
//! assert_eq!(result.ret, earthc::Value::Double(5.0));
//! # let _ = compile_earth_c;
//! ```

#![warn(missing_docs)]

pub use earth_analysis;
pub use earth_commopt;
pub use earth_frontend;
pub use earth_ir;
pub use earth_lint;
pub use earth_olden;
pub use earth_pass;
pub use earth_profile;
pub use earth_serve;
pub use earth_sim;

pub mod serve;

pub use earth_analysis::{AnalysisCache, CacheStats};
pub use earth_commopt::{CommOptConfig, OptReport};
pub use earth_frontend::FrontendError;
pub use earth_ir::Program;
pub use earth_pass::{PassManager, PipelineReport};
pub use earth_profile::{Profile, ProfileDb};
pub use earth_sim::{CostModel, RunResult, SimError, Value};

use std::fmt;
use std::sync::Arc;

/// Any failure in the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Lexing, parsing, or type checking failed.
    Frontend(FrontendError),
    /// The placement translation validator rejected the optimizer's motions
    /// (only with [`Pipeline::verify`] enabled).
    Verify(Vec<earth_ir::Diagnostic>),
    /// The race linter found a possibly-racy parallel construct (only with
    /// [`Pipeline::lint`] enabled in fatal mode).
    Lint(Vec<earth_ir::Diagnostic>),
    /// The IR validation pass rejected the pipeline's output — a compiler
    /// bug surfaced as diagnostics instead of a panic.
    InvalidIr(Vec<earth_ir::Diagnostic>),
    /// Code generation or simulation failed.
    Sim(SimError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "frontend: {e}"),
            PipelineError::Verify(ds) => {
                write!(
                    f,
                    "placement validation failed:\n{}",
                    earth_ir::diag::render_all(ds)
                )
            }
            PipelineError::Lint(ds) => {
                write!(f, "race lint failed:\n{}", earth_ir::diag::render_all(ds))
            }
            PipelineError::InvalidIr(ds) => {
                write!(
                    f,
                    "IR validation failed:\n{}",
                    earth_ir::diag::render_all(ds)
                )
            }
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<FrontendError> for PipelineError {
    fn from(e: FrontendError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

/// Compiles EARTH-C source to SIMPLE IR (no optimization).
///
/// # Errors
///
/// Returns a [`FrontendError`] for any lexical, syntactic, or type error.
pub fn compile_earth_c(src: &str) -> Result<Program, FrontendError> {
    earth_frontend::compile(src)
}

/// End-to-end pipeline builder: frontend → compilation passes (inlining,
/// field reordering, locality inference, placement verification, race
/// linting, communication optimization, IR validation) → threaded-code
/// generation → simulation.
///
/// The compilation phases run under a [`earth_pass::PassManager`] over one
/// shared [`AnalysisCache`]: however many passes consume the whole-program
/// analysis, it is computed once and invalidated precisely (whole-program
/// or per-function) when a pass mutates the IR. Per-pass wall time and
/// cache activity are surfaced through [`run_program_report`]
/// (`earthcc run --timings` / `--report-json`).
///
/// [`run_program_report`]: Pipeline::run_program_report
#[derive(Debug, Clone)]
pub struct Pipeline {
    nodes: u16,
    optimize: Option<CommOptConfig>,
    verify: bool,
    lint: bool,
    infer_locality: bool,
    inline: Option<earth_commopt::InlineConfig>,
    reorder_fields: bool,
    workers: Option<usize>,
    profile: Option<Arc<ProfileDb>>,
    entry: String,
    machine: earth_sim::MachineConfig,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// A pipeline with default settings: 1 node, full communication
    /// optimization, locality inference on, entry point `main`.
    pub fn new() -> Self {
        Pipeline {
            nodes: 1,
            optimize: Some(CommOptConfig::default()),
            verify: false,
            lint: false,
            infer_locality: true,
            inline: None,
            reorder_fields: false,
            workers: None,
            profile: None,
            entry: "main".into(),
            machine: earth_sim::MachineConfig::default(),
        }
    }

    /// Sets the number of EARTH nodes.
    pub fn nodes(mut self, n: u16) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the communication-optimizer configuration (`None` = the
    /// paper's unoptimized "simple" build).
    pub fn optimizer(mut self, cfg: Option<CommOptConfig>) -> Self {
        self.optimize = cfg;
        self
    }

    /// Enables or disables locality inference.
    pub fn locality(mut self, on: bool) -> Self {
        self.infer_locality = on;
        self
    }

    /// Runs the placement translation validator ([`earth_lint`]) over the
    /// motions the optimizer is about to perform; any violation aborts the
    /// pipeline with [`PipelineError::Verify`]. Off by default.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Runs the parallel-soundness race linter ([`earth_lint`]) as a
    /// pipeline pass. Verdicts are recorded on the [`PipelineReport`];
    /// possibly-racy constructs do not abort the run. Off by default.
    pub fn lint(mut self, on: bool) -> Self {
        self.lint = on;
        self
    }

    /// Sets the optimizer's per-function fan-out width (number of scoped
    /// worker threads). Defaults to [`earth_commopt::default_workers`] and
    /// is clamped through [`earth_commopt::clamp_workers`] — `0` and
    /// oversubscribed requests can't spawn a degenerate pool. The output
    /// is byte-identical for any width.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Feeds a measured execution profile into the optimizer: the
    /// communication optimization runs as a [`earth_pass::PgoPass`] with
    /// measured branch probabilities, trip counts, and execution counts
    /// replacing the static heuristics. Collect the profile with
    /// [`instrument_source`](Self::instrument_source) on the same
    /// pipeline configuration. `None` (the default) keeps the paper's
    /// static frequency model.
    pub fn profile(mut self, db: Option<Arc<ProfileDb>>) -> Self {
        self.profile = db;
        self
    }

    /// Enables local function inlining (the paper's Phase-I pass) with the
    /// given configuration; off by default.
    pub fn inlining(mut self, cfg: Option<earth_commopt::InlineConfig>) -> Self {
        self.inline = cfg;
        self
    }

    /// Enables struct field reordering (the paper's §7 extension: cluster
    /// remotely-accessed fields so partial block moves shrink); off by
    /// default.
    pub fn field_reordering(mut self, on: bool) -> Self {
        self.reorder_fields = on;
        self
    }

    /// Sets the entry function (default `main`).
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = name.into();
        self
    }

    /// Overrides the machine timing model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.machine.cost = cost;
        self
    }

    /// Builds the pass pipeline this configuration describes, in order:
    /// inline → field-reorder → locality → prob-alias → escape →
    /// verify-placement → race-lint → optimize → validate-ir (transform
    /// passes only when enabled; `prob-alias` only under
    /// [`AliasMode::Prob`](earth_commopt::AliasMode); `escape` only under
    /// [`EscapeMode::On`](earth_commopt::EscapeMode); with a
    /// [`profile`](Self::profile) set, optimize runs as `pgo-optimize`).
    pub fn pass_manager(&self) -> PassManager {
        let mut pm = PassManager::new();
        if let Some(icfg) = &self.inline {
            pm.register(earth_pass::InlinePass::new(icfg.clone()));
        }
        if self.reorder_fields {
            pm.register(earth_pass::FieldReorderPass);
        }
        if self.infer_locality {
            pm.register(earth_pass::LocalityPass);
        }
        if let Some(cfg) = &self.optimize {
            if cfg.alias == earth_commopt::AliasMode::Prob {
                // Survey pass: surfaces annotation/induction counts from the
                // shared cached analysis before selection consumes the facts.
                pm.register(earth_pass::ProbAliasPass);
            }
            if cfg.escape == earth_commopt::EscapeMode::On {
                // Survey pass: surfaces region/upgrade counts from the
                // shared cached analysis before the optimizer deletes the
                // corresponding communication.
                pm.register(earth_pass::EscapePass);
            }
            if self.verify {
                pm.register(earth_pass::VerifyPlacementPass::new(cfg.clone()));
            }
            if self.lint {
                pm.register(earth_pass::RaceLintPass::new());
            }
            let workers = earth_commopt::clamp_workers(
                self.workers.unwrap_or_else(earth_commopt::default_workers),
            );
            match &self.profile {
                Some(db) => {
                    pm.register(earth_pass::PgoPass::new(cfg.clone(), db.clone(), workers));
                }
                None => {
                    pm.register(earth_pass::OptimizePass::new(cfg.clone(), workers));
                }
            }
        } else if self.lint {
            pm.register(earth_pass::RaceLintPass::new());
        }
        pm.register(earth_pass::ValidateIrPass);
        pm
    }

    /// Runs the compilation passes (no code generation or simulation) over
    /// `prog` in place, sharing one analysis across all of them.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Verify`], [`PipelineError::Lint`], or
    /// [`PipelineError::InvalidIr`] when the corresponding pass rejects
    /// the program.
    pub fn apply_passes(&self, prog: &mut Program) -> Result<PipelineReport, PipelineError> {
        let mut cache = AnalysisCache::new();
        let mut pm = self.pass_manager();
        pm.run(prog, &mut cache).map_err(|e| match e.pass {
            "verify-placement" => PipelineError::Verify(e.diagnostics),
            "race-lint" => PipelineError::Lint(e.diagnostics),
            _ => PipelineError::InvalidIr(e.diagnostics),
        })
    }

    /// Runs the pipeline over an already-compiled program, returning the
    /// simulation result together with the per-pass instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates pass and simulator errors; see
    /// [`apply_passes`](Self::apply_passes) and [`earth_sim::Machine::run`].
    pub fn run_program_report(
        &self,
        mut prog: Program,
        args: &[Value],
    ) -> Result<(RunResult, PipelineReport), PipelineError> {
        let report = self.apply_passes(&mut prog)?;
        let (_, result) = self.simulate(&prog, earth_sim::CodegenOptions::default(), args)?;
        Ok((result, report))
    }

    /// Code generation + simulation of an already-lowered program.
    fn simulate(
        &self,
        prog: &Program,
        opts: earth_sim::CodegenOptions,
        args: &[Value],
    ) -> Result<(earth_sim::CompiledProgram, RunResult), PipelineError> {
        let compiled = earth_sim::compile(prog, opts).map_err(|e| SimError {
            time_ns: 0,
            message: e.to_string(),
        })?;
        let entry = compiled
            .function_by_name(&self.entry)
            .ok_or_else(|| SimError {
                time_ns: 0,
                message: format!("no function named `{}`", self.entry),
            })?;
        let mut mc = self.machine.clone();
        mc.n_nodes = self.nodes;
        let mut m = earth_sim::Machine::new(mc);
        let result = m.run(&compiled, entry, args)?;
        Ok((compiled, result))
    }

    /// Runs the *instrumented* build of an already-compiled program: the
    /// configured pre-passes (inlining, field reordering, locality) but
    /// **no** communication optimization, code generated with
    /// [`record_sites`](earth_sim::CodegenOptions::record_sites), and the
    /// run's per-site trace folded into a [`Profile`].
    ///
    /// Skipping the optimizer is what makes the profile portable: sites
    /// are recorded over the same pre-selection tree a later
    /// profile-guided compile (same pipeline settings plus
    /// [`profile`](Self::profile)) assigns sites over, so they resolve by
    /// construction.
    ///
    /// # Errors
    ///
    /// Propagates pass and simulator errors; see
    /// [`apply_passes`](Self::apply_passes) and [`earth_sim::Machine::run`].
    pub fn instrument_program(
        &self,
        mut prog: Program,
        args: &[Value],
    ) -> Result<(RunResult, Profile), PipelineError> {
        let mut instrumented = self.clone();
        instrumented.optimize = None;
        instrumented.verify = false;
        instrumented.profile = None;
        instrumented.apply_passes(&mut prog)?;
        let opts = earth_sim::CodegenOptions {
            record_sites: true,
            ..Default::default()
        };
        let (compiled, result) = instrumented.simulate(&prog, opts, args)?;
        let profile = Profile::from_trace(&compiled, &result.site_trace);
        Ok((result, profile))
    }

    /// Compiles EARTH-C source and runs the instrumented build; see
    /// [`instrument_program`](Self::instrument_program).
    ///
    /// # Errors
    ///
    /// Propagates frontend, pass, and simulator errors.
    pub fn instrument_source(
        &self,
        src: &str,
        args: &[Value],
    ) -> Result<(RunResult, Profile), PipelineError> {
        let prog = earth_frontend::compile(src)?;
        self.instrument_program(prog, args)
    }

    /// Runs the pipeline over an already-compiled program.
    ///
    /// # Errors
    ///
    /// Propagates pass and simulator errors; see
    /// [`earth_sim::Machine::run`].
    pub fn run_program(&self, prog: Program, args: &[Value]) -> Result<RunResult, PipelineError> {
        self.run_program_report(prog, args).map(|(r, _)| r)
    }

    /// Compiles EARTH-C source and runs it, returning the simulation
    /// result together with the per-pass instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates frontend, pass, and simulator errors.
    pub fn run_source_report(
        &self,
        src: &str,
        args: &[Value],
    ) -> Result<(RunResult, PipelineReport), PipelineError> {
        let prog = earth_frontend::compile(src)?;
        self.run_program_report(prog, args)
    }

    /// Compiles EARTH-C source and runs it.
    ///
    /// # Errors
    ///
    /// Propagates frontend, pass, and simulator errors.
    pub fn run_source(&self, src: &str, args: &[Value]) -> Result<RunResult, PipelineError> {
        self.run_source_report(src, args).map(|(r, _)| r)
    }
}
