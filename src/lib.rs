//! # earthc — reproduction of *Communication Optimizations for Parallel C Programs*
//!
//! A full reimplementation of the system described by Yingchun Zhu and
//! Laurie J. Hendren (PLDI 1998): an optimizing compiler pipeline for the
//! EARTH-C parallel dialect of C that reduces communication overhead for
//! programs using dynamically-allocated data structures, evaluated on a
//! simulator of the EARTH-MANNA distributed-memory multithreaded machine.
//!
//! This crate is the facade tying the workspace together:
//!
//! | crate | role |
//! |---|---|
//! | [`earth_frontend`] | EARTH-C subset → SIMPLE IR (three-address, ≤ 1 remote op/stmt) |
//! | [`earth_ir`] | the SIMPLE intermediate representation |
//! | [`earth_analysis`] | regions/connection, read-write sets, locality |
//! | [`earth_commopt`] | **the paper**: possible-placement analysis + communication selection |
//! | [`earth_sim`] | EARTH-MANNA discrete-event simulator (Table-I cost model) |
//! | [`earth_olden`] | the five Olden benchmarks in EARTH-C |
//!
//! # Examples
//!
//! Compile, optimize, and run a program on a simulated 4-node machine:
//!
//! ```
//! use earthc::{compile_earth_c, Pipeline};
//!
//! let result = Pipeline::new()
//!     .nodes(4)
//!     .run_source(r#"
//!         struct Point { double x; double y; };
//!         double main() {
//!             Point *p;
//!             p = malloc_on(1, sizeof(Point));
//!             p->x = 3.0;
//!             p->y = 4.0;
//!             return sqrt(p->x * p->x + p->y * p->y);
//!         }
//!     "#, &[]).unwrap();
//! assert_eq!(result.ret, earthc::Value::Double(5.0));
//! # let _ = compile_earth_c;
//! ```

#![warn(missing_docs)]

pub use earth_analysis;
pub use earth_commopt;
pub use earth_frontend;
pub use earth_ir;
pub use earth_lint;
pub use earth_olden;
pub use earth_sim;

pub use earth_commopt::{CommOptConfig, OptReport};
pub use earth_frontend::FrontendError;
pub use earth_ir::Program;
pub use earth_sim::{CostModel, RunResult, SimError, Value};

use std::fmt;

/// Any failure in the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Lexing, parsing, or type checking failed.
    Frontend(FrontendError),
    /// The placement translation validator rejected the optimizer's motions
    /// (only with [`Pipeline::verify`] enabled).
    Verify(Vec<earth_ir::Diagnostic>),
    /// Code generation or simulation failed.
    Sim(SimError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "frontend: {e}"),
            PipelineError::Verify(ds) => {
                write!(
                    f,
                    "placement validation failed:\n{}",
                    earth_ir::diag::render_all(ds)
                )
            }
            PipelineError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<FrontendError> for PipelineError {
    fn from(e: FrontendError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

/// Compiles EARTH-C source to SIMPLE IR (no optimization).
///
/// # Errors
///
/// Returns a [`FrontendError`] for any lexical, syntactic, or type error.
pub fn compile_earth_c(src: &str) -> Result<Program, FrontendError> {
    earth_frontend::compile(src)
}

/// End-to-end pipeline builder: frontend → (locality inference) →
/// communication optimization → threaded-code generation → simulation.
#[derive(Debug, Clone)]
pub struct Pipeline {
    nodes: u16,
    optimize: Option<CommOptConfig>,
    verify: bool,
    infer_locality: bool,
    inline: Option<earth_commopt::InlineConfig>,
    reorder_fields: bool,
    entry: String,
    machine: earth_sim::MachineConfig,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// A pipeline with default settings: 1 node, full communication
    /// optimization, locality inference on, entry point `main`.
    pub fn new() -> Self {
        Pipeline {
            nodes: 1,
            optimize: Some(CommOptConfig::default()),
            verify: false,
            infer_locality: true,
            inline: None,
            reorder_fields: false,
            entry: "main".into(),
            machine: earth_sim::MachineConfig::default(),
        }
    }

    /// Sets the number of EARTH nodes.
    pub fn nodes(mut self, n: u16) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the communication-optimizer configuration (`None` = the
    /// paper's unoptimized "simple" build).
    pub fn optimizer(mut self, cfg: Option<CommOptConfig>) -> Self {
        self.optimize = cfg;
        self
    }

    /// Enables or disables locality inference.
    pub fn locality(mut self, on: bool) -> Self {
        self.infer_locality = on;
        self
    }

    /// Runs the placement translation validator ([`earth_lint`]) over the
    /// motions the optimizer is about to perform; any violation aborts the
    /// pipeline with [`PipelineError::Verify`]. Off by default.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Enables local function inlining (the paper's Phase-I pass) with the
    /// given configuration; off by default.
    pub fn inlining(mut self, cfg: Option<earth_commopt::InlineConfig>) -> Self {
        self.inline = cfg;
        self
    }

    /// Enables struct field reordering (the paper's §7 extension: cluster
    /// remotely-accessed fields so partial block moves shrink); off by
    /// default.
    pub fn field_reordering(mut self, on: bool) -> Self {
        self.reorder_fields = on;
        self
    }

    /// Sets the entry function (default `main`).
    pub fn entry(mut self, name: impl Into<String>) -> Self {
        self.entry = name.into();
        self
    }

    /// Overrides the machine timing model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.machine.cost = cost;
        self
    }

    /// Runs the pipeline over an already-compiled program.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; see [`earth_sim::Machine::run`].
    pub fn run_program(
        &self,
        mut prog: Program,
        args: &[Value],
    ) -> Result<RunResult, PipelineError> {
        if let Some(icfg) = &self.inline {
            earth_commopt::inline_functions(&mut prog, icfg);
        }
        if self.reorder_fields {
            earth_commopt::reorder_fields(&mut prog);
        }
        if self.infer_locality {
            earth_analysis::infer_locality(&mut prog);
        }
        if let Some(cfg) = &self.optimize {
            if self.verify {
                let violations = earth_lint::verify_program(&prog, cfg);
                if !violations.is_empty() {
                    return Err(PipelineError::Verify(violations));
                }
            }
            earth_commopt::optimize_program(&mut prog, cfg);
        }
        let compiled =
            earth_sim::compile(&prog, earth_sim::CodegenOptions::default()).map_err(|e| {
                SimError {
                    time_ns: 0,
                    message: e.to_string(),
                }
            })?;
        let entry = compiled
            .function_by_name(&self.entry)
            .ok_or_else(|| SimError {
                time_ns: 0,
                message: format!("no function named `{}`", self.entry),
            })?;
        let mut mc = self.machine.clone();
        mc.n_nodes = self.nodes;
        let mut m = earth_sim::Machine::new(mc);
        Ok(m.run(&compiled, entry, args)?)
    }

    /// Compiles EARTH-C source and runs it.
    ///
    /// # Errors
    ///
    /// Propagates frontend and simulator errors.
    pub fn run_source(&self, src: &str, args: &[Value]) -> Result<RunResult, PipelineError> {
        let prog = earth_frontend::compile(src)?;
        self.run_program(prog, args)
    }
}
