//! End-to-end tests of the daemon over real TCP with a mock backend:
//! protocol round trips, cache single-flight under concurrency,
//! backpressure rejection, queued-deadline misses, profile
//! invalidation, and graceful shutdown.

use earth_serve::client::{Client, ClientError};
use earth_serve::hash::Fnv1a;
use earth_serve::proto::{Arg, CompileOptions, Response};
use earth_serve::server::{Server, ServerConfig, ServerHandle};
use earth_serve::{Artifact, Backend, CompileOutput, LintOutput, PgoOutput, RunOutput};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::Duration;

/// A backend that "compiles" by reversing the source, slowly enough to
/// observe queueing. Counts compiles so tests can assert single-flight.
struct MockBackend {
    compiles: AtomicU64,
    compile_delay: Duration,
    profile_epoch: AtomicU64,
}

impl MockBackend {
    fn new(compile_delay: Duration) -> Self {
        MockBackend {
            compiles: AtomicU64::new(0),
            compile_delay,
            profile_epoch: AtomicU64::new(0),
        }
    }
}

impl Backend for MockBackend {
    type Exec = String;

    fn toolchain(&self) -> String {
        "mock/1".into()
    }

    fn cache_key(&self, source: &str, opts: &CompileOptions) -> u64 {
        let mut h = Fnv1a::new();
        h.str_field(source).field(&[
            opts.optimize as u8,
            opts.locality as u8,
            opts.use_profile as u8,
        ]);
        if opts.use_profile {
            h.field(&self.profile_epoch.load(Ordering::SeqCst).to_le_bytes());
        }
        h.finish()
    }

    fn cache_tag(&self, opts: &CompileOptions) -> u64 {
        if opts.use_profile {
            self.profile_epoch.load(Ordering::SeqCst) + 1
        } else {
            0
        }
    }

    fn compile(
        &self,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<CompileOutput<String>, String> {
        if source.contains("#error") {
            return Err("mock: deliberate compile failure".into());
        }
        self.compiles.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.compile_delay);
        let ir: String = source.chars().rev().collect();
        Ok(CompileOutput {
            artifact: Artifact {
                source: source.to_string(),
                opts: opts.clone(),
                ir: ir.clone(),
                report: "{\"passes\":[]}".into(),
                exec: Some(ir),
            },
            timings: vec![("mock-pass".into(), 1_000)],
            analyses: 1,
        })
    }

    fn run(
        &self,
        artifact: &Artifact<String>,
        entry: &str,
        nodes: u16,
        args: &[Arg],
    ) -> Result<RunOutput, String> {
        let exec = artifact
            .exec
            .clone()
            .unwrap_or_else(|| artifact.source.chars().rev().collect());
        Ok(RunOutput {
            ret: format!("{entry}:{nodes}:{}", args.len()),
            time_ns: 42,
            stats: "mock".into(),
            output: vec![exec],
        })
    }

    fn pgo(&self, _: &str, _: &str, _: u16, _: &[Arg]) -> Result<PgoOutput, String> {
        let epoch = self.profile_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        Ok(PgoOutput {
            sites: 3,
            merged_sites: 3 * epoch,
            ret: "0".into(),
        })
    }

    fn lint(&self, source: &str) -> Result<LintOutput, String> {
        Ok(LintOutput {
            independent: !source.contains("dep"),
            diagnostics: "[]".into(),
        })
    }
}

fn start(
    config: ServerConfig,
    backend: MockBackend,
) -> (SocketAddr, ServerHandle<MockBackend>, JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config, backend).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

#[test]
fn compile_run_lint_round_trip() {
    let (addr, handle, join) = start(ServerConfig::default(), MockBackend::new(Duration::ZERO));
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();

    match client.compile("abc", CompileOptions::default()).unwrap() {
        Response::Compile { cached, ir, .. } => {
            assert!(!cached);
            assert_eq!(ir, "cba");
        }
        other => panic!("{other:?}"),
    }
    match client.compile("abc", CompileOptions::default()).unwrap() {
        Response::Compile { cached, ir, .. } => {
            assert!(cached, "second identical compile must hit the cache");
            assert_eq!(ir, "cba");
        }
        other => panic!("{other:?}"),
    }
    match client
        .run(
            "abc",
            CompileOptions::default(),
            "main",
            4,
            vec![Arg::Int(7)],
        )
        .unwrap()
    {
        Response::Run {
            cached,
            ret,
            output,
            ..
        } => {
            assert!(cached);
            assert_eq!(ret, "main:4:1");
            assert_eq!(output, vec!["cba".to_string()]);
        }
        other => panic!("{other:?}"),
    }
    match client.lint("no deps here... actually dep").unwrap() {
        Response::Lint { independent, .. } => assert!(!independent),
        other => panic!("{other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.endpoint("compile"), 2);
    assert_eq!(stats.endpoint("run"), 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(stats.analyses, 1, "cache hits must add zero analyses");
    assert!(stats
        .pass_walls
        .iter()
        .any(|(k, h)| k == "mock-pass" && h.count == 1));

    // Compile errors surface as single-line server errors.
    match client.compile("#error", CompileOptions::default()) {
        Err(ClientError::Server { error }) => assert!(error.contains("deliberate")),
        other => panic!("{other:?}"),
    }

    client.shutdown().unwrap();
    drop(handle);
    join.join().unwrap();
}

#[test]
fn concurrent_clients_single_flight() {
    let (addr, _handle, join) = start(
        ServerConfig {
            workers: 8,
            ..ServerConfig::default()
        },
        MockBackend::new(Duration::from_millis(40)),
    );
    let irs: Vec<String> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                match client
                    .compile("popular", CompileOptions::default())
                    .unwrap()
                {
                    Response::Compile { ir, .. } => ir,
                    other => panic!("{other:?}"),
                }
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for ir in &irs {
        assert_eq!(ir, "ralupop", "all clients must see identical artifacts");
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache.misses, 1,
        "popular key must compile exactly once"
    );
    assert_eq!(stats.cache.hits, 7);
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn full_queue_rejects_with_retry_hint() {
    let (addr, _handle, join) = start(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        MockBackend::new(Duration::from_millis(150)),
    );
    // Saturate: one job running, one queued, then a burst of distinct
    // sources from parallel connections until one is rejected.
    let threads: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.max_retries = 1; // surface the rejection
                client.compile(&format!("source-{i}"), CompileOptions::default())
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ClientError::Server { error }) if error.contains("queue full")))
        .count();
    assert!(rejected > 0, "expected at least one backpressure rejection");
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected as usize, rejected);
    assert_eq!(stats.queue_capacity, 1);

    // With retries enabled the same request eventually succeeds.
    let mut retrying = Client::connect(addr).unwrap();
    retrying.max_retries = 50;
    match retrying
        .compile("source-0", CompileOptions::default())
        .unwrap()
    {
        Response::Compile { ir, .. } => assert_eq!(ir, "0-ecruos"),
        other => panic!("{other:?}"),
    }
    retrying.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn queued_deadline_is_honored() {
    let (addr, _handle, join) = start(
        ServerConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServerConfig::default()
        },
        MockBackend::new(Duration::from_millis(120)),
    );
    // Occupy the worker so the deadline request waits in the queue.
    let blocker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.compile("slow", CompileOptions::default()).unwrap();
    });
    std::thread::sleep(Duration::from_millis(20));
    let mut client = Client::connect(addr).unwrap();
    client.deadline_ms = Some(1);
    match client.compile("impatient", CompileOptions::default()) {
        Err(ClientError::Server { error }) => assert!(error.contains("deadline")),
        other => panic!("{other:?}"),
    }
    blocker.join().unwrap();
    client.deadline_ms = None;
    let stats = client.stats().unwrap();
    assert_eq!(stats.deadline_misses, 1);
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn pgo_bumps_profile_epoch_and_invalidates() {
    let (addr, _handle, join) = start(ServerConfig::default(), MockBackend::new(Duration::ZERO));
    let mut client = Client::connect(addr).unwrap();
    let profiled = CompileOptions {
        use_profile: true,
        ..CompileOptions::default()
    };
    client.compile("prog", profiled.clone()).unwrap();
    client.compile("other", CompileOptions::default()).unwrap();
    match client.pgo("prog", "main", 2, vec![]).unwrap() {
        Response::Pgo {
            invalidated,
            sites,
            merged_sites,
            ..
        } => {
            assert_eq!(invalidated, 1, "only the profile-tagged artifact drops");
            assert_eq!((sites, merged_sites), (3, 3));
        }
        other => panic!("{other:?}"),
    }
    // Profile changed, so the profiled compile misses; the plain one
    // still hits.
    match client.compile("prog", profiled).unwrap() {
        Response::Compile { cached, .. } => assert!(!cached),
        other => panic!("{other:?}"),
    }
    match client.compile("other", CompileOptions::default()).unwrap() {
        Response::Compile { cached, .. } => assert!(cached),
        other => panic!("{other:?}"),
    }
    client.shutdown().unwrap();
    join.join().unwrap();
}

#[test]
fn spill_restores_after_eviction() {
    let dir = std::env::temp_dir().join(format!("earthd-test-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, _handle, join) = start(
        ServerConfig {
            cache_capacity: 1,
            spill_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
        MockBackend::new(Duration::ZERO),
    );
    let mut client = Client::connect(addr).unwrap();
    client.compile("first", CompileOptions::default()).unwrap();
    client.compile("second", CompileOptions::default()).unwrap(); // evicts "first" to disk
    match client.compile("first", CompileOptions::default()).unwrap() {
        Response::Compile { cached, ir, .. } => {
            assert!(
                cached,
                "spill restore must serve compile without recompiling"
            );
            assert_eq!(ir, "tsrif");
        }
        other => panic!("{other:?}"),
    }
    // A run on the spill-restored artifact recompiles internally
    // (exec was not persisted) but still answers correctly.
    match client
        .run("second", CompileOptions::default(), "main", 1, vec![])
        .unwrap()
    {
        Response::Run { output, .. } => assert_eq!(output, vec!["dnoces".to_string()]),
        other => panic!("{other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.cache.spill_writes >= 1);
    assert!(stats.cache.spill_hits >= 1);
    assert_eq!(stats.cache.misses, 2, "spill restores must not recompile");
    client.shutdown().unwrap();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn handle_shutdown_stops_the_daemon() {
    let (addr, handle, join) = start(ServerConfig::default(), MockBackend::new(Duration::ZERO));
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    handle.shutdown();
    join.join().unwrap();
    // New requests on the old connection now fail.
    assert!(client.ping().is_err());
}

#[test]
fn malformed_lines_get_an_error_response() {
    use std::io::{BufRead, BufReader, Write};
    let (addr, _handle, join) = start(ServerConfig::default(), MockBackend::new(Duration::ZERO));
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::from_json(line.trim_end()).unwrap() {
        Response::Error { id, error, .. } => {
            assert_eq!(id, 0);
            assert!(error.contains("bad request"));
        }
        other => panic!("{other:?}"),
    }
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.stats().unwrap().errors, 1);
    client.shutdown().unwrap();
    join.join().unwrap();
}
