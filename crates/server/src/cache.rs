//! Content-addressed artifact cache with single-flight compilation,
//! an LRU memory bound, and an optional on-disk spill directory.
//!
//! Keys are stable 64-bit content hashes (see [`crate::hash`]) over
//! everything that determines the artifact: source text, compile
//! options, profile, toolchain. The cache itself never computes keys —
//! the backend does — so it stays generic over the artifact type.
//!
//! Concurrency model: the first thread to miss on a key installs a
//! `Pending` marker and compiles *outside* the lock; every other thread
//! that wants the same key blocks on a condvar until the artifact is
//! ready (or the compile is abandoned, in which case one waiter takes
//! over). A popular key is therefore compiled exactly once no matter
//! how many clients stampede it.

use crate::hash::key_hex;
use crate::stats::CacheCounters;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

/// On-disk spill for evicted artifacts.
///
/// `encode` may return `None` for artifacts that cannot be usefully
/// persisted; those are evicted without a spill write. `decode`
/// returning `None` (corrupt or incompatible file) is treated as a
/// plain miss.
pub struct Spill<V> {
    /// Directory holding one `<key_hex>.json` file per spilled artifact.
    pub dir: PathBuf,
    /// Serializes an artifact for the spill file.
    pub encode: fn(&V) -> Option<String>,
    /// Restores an artifact from a spill file's contents.
    pub decode: fn(&str) -> Option<V>,
}

impl<V> Spill<V> {
    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.json", key_hex(key)))
    }
}

enum Entry<V> {
    /// A thread is compiling this key right now.
    Pending,
    /// The artifact is resident.
    Ready {
        value: Arc<V>,
        /// Invalidation tag: 0 = never invalidated by profile updates.
        tag: u64,
        /// LRU clock value of the last touch.
        last_used: u64,
    },
}

struct State<V> {
    entries: HashMap<u64, Entry<V>>,
    /// Monotonic LRU clock.
    tick: u64,
    counters: CacheCounters,
}

impl<V> State<V> {
    fn ready_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    fn pending_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e, Entry::Pending))
            .count()
    }

    /// Evicts least-recently-used `Ready` entries until at most
    /// `capacity` remain, spilling tag-0 artifacts to disk when a spill
    /// is configured.
    fn enforce_capacity(&mut self, capacity: usize, spill: Option<&Spill<V>>) {
        while self.ready_count() > capacity {
            let victim = self
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*k, *last_used)),
                    Entry::Pending => None,
                })
                .min_by_key(|&(_, t)| t)
                .map(|(k, _)| k);
            let Some(key) = victim else { break };
            if let Some(Entry::Ready { value, tag, .. }) = self.entries.remove(&key) {
                if tag == 0 {
                    if let Some(spill) = spill {
                        if let Some(text) = (spill.encode)(&value) {
                            if std::fs::write(spill.path(key), text).is_ok() {
                                self.counters.spill_writes += 1;
                            }
                        }
                    }
                }
                self.counters.evictions += 1;
            }
        }
    }
}

/// The result of a cache lookup.
pub enum Lookup<'a, V> {
    /// The artifact was resident (or became resident while we waited
    /// for another thread's compile of the same key).
    Hit(Arc<V>),
    /// The artifact was restored from the spill directory; it is now
    /// resident again.
    Spilled(Arc<V>),
    /// Nobody has this key: the caller owns the compile. It must call
    /// [`MissGuard::fulfill`] with the artifact, or drop the guard to
    /// abandon (on compile failure), which wakes any waiters.
    Miss(MissGuard<'a, V>),
}

/// Exclusive right to compile one key; see [`Lookup::Miss`].
pub struct MissGuard<'a, V> {
    cache: &'a ArtifactCache<V>,
    key: u64,
    done: bool,
}

impl<V> MissGuard<'_, V> {
    /// The key being compiled.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Installs the compiled artifact, enforces the LRU bound, and
    /// wakes all waiters.
    pub fn fulfill(mut self, value: Arc<V>, tag: u64) {
        self.done = true;
        let mut st = self.cache.state.lock().expect("cache lock");
        st.tick += 1;
        let now = st.tick;
        st.entries.insert(
            self.key,
            Entry::Ready {
                value,
                tag,
                last_used: now,
            },
        );
        st.enforce_capacity(self.cache.capacity, self.cache.spill.as_ref());
        self.cache.ready.notify_all();
    }
}

impl<V> Drop for MissGuard<'_, V> {
    fn drop(&mut self) {
        if !self.done {
            let mut st = self.cache.state.lock().expect("cache lock");
            if matches!(st.entries.get(&self.key), Some(Entry::Pending)) {
                st.entries.remove(&self.key);
            }
            self.cache.ready.notify_all();
        }
    }
}

/// The cache proper. See the module docs for the concurrency model.
pub struct ArtifactCache<V> {
    state: Mutex<State<V>>,
    ready: Condvar,
    capacity: usize,
    spill: Option<Spill<V>>,
}

impl<V> ArtifactCache<V> {
    /// A cache holding at most `capacity` resident artifacts (at least
    /// one), optionally spilling evictions to disk.
    pub fn new(capacity: usize, spill: Option<Spill<V>>) -> Self {
        if let Some(spill) = &spill {
            let _ = std::fs::create_dir_all(&spill.dir);
        }
        ArtifactCache {
            state: Mutex::new(State {
                entries: HashMap::new(),
                tick: 0,
                counters: CacheCounters::default(),
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            spill,
        }
    }

    /// Looks up `key`, blocking while another thread compiles it.
    pub fn lookup(&self, key: u64) -> Lookup<'_, V> {
        let mut st = self.state.lock().expect("cache lock");
        loop {
            st.tick += 1;
            let now = st.tick;
            match st.entries.get_mut(&key) {
                Some(Entry::Ready {
                    value, last_used, ..
                }) => {
                    *last_used = now;
                    let value = Arc::clone(value);
                    st.counters.hits += 1;
                    return Lookup::Hit(value);
                }
                Some(Entry::Pending) => {
                    st = self.ready.wait(st).expect("cache lock");
                }
                None => {
                    // Try the spill directory before compiling.
                    if let Some(spill) = &self.spill {
                        let restored = std::fs::read_to_string(spill.path(key))
                            .ok()
                            .and_then(|text| (spill.decode)(&text));
                        if let Some(v) = restored {
                            let value = Arc::new(v);
                            st.entries.insert(
                                key,
                                Entry::Ready {
                                    value: Arc::clone(&value),
                                    tag: 0,
                                    last_used: now,
                                },
                            );
                            st.counters.spill_hits += 1;
                            st.enforce_capacity(self.capacity, self.spill.as_ref());
                            return Lookup::Spilled(value);
                        }
                    }
                    st.counters.misses += 1;
                    st.entries.insert(key, Entry::Pending);
                    return Lookup::Miss(MissGuard {
                        cache: self,
                        key,
                        done: false,
                    });
                }
            }
        }
    }

    /// Drops every resident artifact whose tag is nonzero (i.e. every
    /// artifact that depended on the accumulated profile) and returns
    /// how many were dropped. Called after a profile update: the
    /// dropped entries' keys embed the old profile hash and would never
    /// be hit again.
    pub fn invalidate_tagged(&self) -> u64 {
        let mut st = self.state.lock().expect("cache lock");
        let stale: Vec<u64> = st
            .entries
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready { tag, .. } if *tag != 0 => Some(*k),
                _ => None,
            })
            .collect();
        let n = stale.len() as u64;
        for k in stale {
            st.entries.remove(&k);
        }
        st.counters.invalidations += n;
        n
    }

    /// A counters snapshot (entry/pending gauges computed live).
    pub fn counters(&self) -> CacheCounters {
        let st = self.state.lock().expect("cache lock");
        CacheCounters {
            entries: st.ready_count() as u64,
            pending: st.pending_count() as u64,
            ..st.counters
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn cache(capacity: usize) -> ArtifactCache<String> {
        ArtifactCache::new(capacity, None)
    }

    #[test]
    fn miss_then_hit() {
        let c = cache(4);
        match c.lookup(1) {
            Lookup::Miss(g) => g.fulfill(Arc::new("one".into()), 0),
            _ => panic!("expected miss"),
        }
        match c.lookup(1) {
            Lookup::Hit(v) => assert_eq!(*v, "one"),
            _ => panic!("expected hit"),
        }
        let k = c.counters();
        assert_eq!((k.hits, k.misses, k.entries), (1, 1, 1));
    }

    #[test]
    fn abandoned_miss_hands_over() {
        let c = cache(4);
        match c.lookup(1) {
            Lookup::Miss(g) => drop(g),
            _ => panic!("expected miss"),
        }
        // The next lookup gets a fresh miss, not a hang.
        assert!(matches!(c.lookup(1), Lookup::Miss(_)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let c = cache(2);
        for key in [1u64, 2, 3] {
            match c.lookup(key) {
                Lookup::Miss(g) => g.fulfill(Arc::new(key.to_string()), 0),
                _ => panic!("expected miss"),
            }
            if key == 2 {
                // Touch 1 so 2 becomes the LRU victim.
                assert!(matches!(c.lookup(1), Lookup::Hit(_)));
            }
        }
        assert!(matches!(c.lookup(1), Lookup::Hit(_)));
        assert!(matches!(c.lookup(3), Lookup::Hit(_)));
        assert!(matches!(c.lookup(2), Lookup::Miss(_)));
        assert_eq!(c.counters().evictions, 1);
    }

    #[test]
    fn single_flight_compiles_once() {
        let c = Arc::new(cache(4));
        let compiles = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                let compiles = Arc::clone(&compiles);
                thread::spawn(move || match c.lookup(42) {
                    Lookup::Hit(v) => (*v).clone(),
                    Lookup::Spilled(v) => (*v).clone(),
                    Lookup::Miss(g) => {
                        compiles.fetch_add(1, Ordering::SeqCst);
                        // Simulate a slow compile while others wait.
                        thread::sleep(std::time::Duration::from_millis(30));
                        g.fulfill(Arc::new("artifact".into()), 0);
                        "artifact".into()
                    }
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), "artifact");
        }
        assert_eq!(compiles.load(Ordering::SeqCst), 1);
        let k = c.counters();
        assert_eq!(k.misses, 1);
        assert_eq!(k.hits, 7);
    }

    #[test]
    fn invalidate_tagged_drops_only_tagged() {
        let c = cache(8);
        for (key, tag) in [(1u64, 0u64), (2, 5), (3, 5), (4, 0)] {
            match c.lookup(key) {
                Lookup::Miss(g) => g.fulfill(Arc::new(String::new()), tag),
                _ => panic!("expected miss"),
            }
        }
        assert_eq!(c.invalidate_tagged(), 2);
        assert!(matches!(c.lookup(1), Lookup::Hit(_)));
        assert!(matches!(c.lookup(2), Lookup::Miss(_)));
        assert_eq!(c.counters().invalidations, 2);
    }

    #[test]
    fn evictions_spill_and_restore() {
        let dir = std::env::temp_dir().join(format!("earth-serve-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c: ArtifactCache<String> = ArtifactCache::new(
            1,
            Some(Spill {
                dir: dir.clone(),
                encode: |v| Some(v.clone()),
                decode: |s| Some(s.to_string()),
            }),
        );
        match c.lookup(1) {
            Lookup::Miss(g) => g.fulfill(Arc::new("alpha".into()), 0),
            _ => panic!("expected miss"),
        }
        // Inserting key 2 evicts key 1 to disk.
        match c.lookup(2) {
            Lookup::Miss(g) => g.fulfill(Arc::new("beta".into()), 0),
            _ => panic!("expected miss"),
        }
        match c.lookup(1) {
            Lookup::Spilled(v) => assert_eq!(*v, "alpha"),
            _ => panic!("expected spill restore"),
        }
        let k = c.counters();
        assert_eq!(k.spill_writes, 2); // key 1, then key 2 evicted by the restore
        assert_eq!(k.spill_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
