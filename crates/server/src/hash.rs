//! Stable content hashing for artifact-cache keys.
//!
//! Cache keys must be identical across daemon restarts and across
//! machines (a key names *content*, not an allocation), so this is a
//! fixed, dependency-free FNV-1a implementation rather than
//! `std::hash`'s randomized `DefaultHasher`.

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over length-delimited fields.
///
/// [`Fnv1a::field`] hashes the field's length before its bytes, so
/// adjacent fields cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Folds one length-delimited field into the state.
    pub fn field(&mut self, bytes: &[u8]) -> &mut Self {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes)
    }

    /// Folds a string field (length-delimited).
    pub fn str_field(&mut self, s: &str) -> &mut Self {
        self.field(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Renders a key as the fixed-width hex form used on the wire and in
/// spill file names.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a [`key_hex`]-formatted key.
pub fn parse_key_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fields_do_not_alias() {
        let mut a = Fnv1a::new();
        a.str_field("ab").str_field("c");
        let mut b = Fnv1a::new();
        b.str_field("a").str_field("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_round_trips() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_key_hex(&key_hex(key)), Some(key));
        }
        assert_eq!(parse_key_hex("xyz"), None);
        assert_eq!(parse_key_hex("00"), None);
    }
}
