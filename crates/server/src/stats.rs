//! The daemon's observability surface: per-endpoint request counters,
//! cache counters, queue state, and per-pass wall-time histograms
//! aggregated from every cold compile's pipeline report.

use earth_ir::json::{self, Obj, ObjectExt as _, Value};
use std::collections::BTreeMap;

/// Number of histogram buckets (powers of two from 1 µs up).
pub const HIST_BUCKETS: usize = 16;

/// A fixed-bucket log₂ histogram of nanosecond durations.
///
/// Bucket `i` counts samples in `[2^(10+i), 2^(11+i))` ns — i.e. bucket
/// 0 is "about a microsecond", each following bucket doubles, and the
/// last bucket absorbs everything from ~33 ms up. Sub-microsecond
/// samples land in bucket 0.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples, in nanoseconds.
    pub total_ns: u64,
    /// Per-bucket sample counts.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// The bucket index a duration falls into.
    pub fn bucket_of(ns: u64) -> usize {
        if ns < 1 << 10 {
            return 0;
        }
        ((ns.ilog2() as usize) - 10).min(HIST_BUCKETS - 1)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|b| b.to_string()).collect();
        Obj::new()
            .u64("count", self.count)
            .u64("total_ns", self.total_ns)
            .raw("buckets", &format!("[{}]", buckets.join(",")))
            .finish()
    }

    fn from_value(v: &Value) -> Result<Histogram, json::JsonError> {
        let obj = v.as_object("histogram")?;
        let mut h = Histogram {
            count: obj.get_u64("count")?,
            total_ns: obj.get_u64("total_ns")?,
            buckets: [0; HIST_BUCKETS],
        };
        let raw = obj.get_array("buckets")?;
        if raw.len() != HIST_BUCKETS {
            return Err(json::JsonError::shape("wrong bucket count"));
        }
        for (i, b) in raw.iter().enumerate() {
            h.buckets[i] = b.as_u64("bucket")?;
        }
        Ok(h)
    }
}

/// Artifact-cache counters, as exposed by the `stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Requests served from a resident artifact.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Ready artifacts evicted by the LRU bound.
    pub evictions: u64,
    /// Artifacts dropped by explicit invalidation (profile updates).
    pub invalidations: u64,
    /// Evicted artifacts written to the spill directory.
    pub spill_writes: u64,
    /// Misses restored from the spill directory instead of compiling.
    pub spill_hits: u64,
    /// Resident artifacts right now.
    pub entries: u64,
    /// Keys currently being compiled (single-flight in progress).
    pub pending: u64,
}

impl CacheCounters {
    /// JSON object form.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("evictions", self.evictions)
            .u64("invalidations", self.invalidations)
            .u64("spill_writes", self.spill_writes)
            .u64("spill_hits", self.spill_hits)
            .u64("entries", self.entries)
            .u64("pending", self.pending)
            .finish()
    }

    fn from_value(v: &Value) -> Result<CacheCounters, json::JsonError> {
        let obj = v.as_object("cache")?;
        Ok(CacheCounters {
            hits: obj.get_u64("hits")?,
            misses: obj.get_u64("misses")?,
            evictions: obj.get_u64("evictions")?,
            invalidations: obj.get_u64("invalidations")?,
            spill_writes: obj.get_u64("spill_writes")?,
            spill_hits: obj.get_u64("spill_hits")?,
            entries: obj.get_u64("entries")?,
            pending: obj.get_u64("pending")?,
        })
    }
}

/// A full `stats` snapshot: uptime, per-endpoint request counts, queue
/// state, cache counters, and per-pass wall-time histograms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerStats {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Toolchain fingerprint (also part of every cache key).
    pub toolchain: String,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Jobs queued (not yet picked up) at snapshot time.
    pub queue_depth: u64,
    /// Queue bound; submissions beyond it are rejected with
    /// `retry_after_ms`.
    pub queue_capacity: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests dropped because their deadline passed while queued.
    pub deadline_misses: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Whole-program analyses performed by cold compiles (sum of the
    /// pass-cache miss counters over every `PipelineReport`). A cache
    /// hit adds zero here — that is the serving layer's whole point.
    pub analyses: u64,
    /// Per-endpoint request counts, sorted by endpoint name.
    pub requests: Vec<(String, u64)>,
    /// Artifact-cache counters.
    pub cache: CacheCounters,
    /// Per-pass wall-time histograms, sorted by pass name.
    pub pass_walls: Vec<(String, Histogram)>,
}

impl ServerStats {
    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|(_, n)| n).sum()
    }

    /// The count for one endpoint (0 when never called).
    pub fn endpoint(&self, name: &str) -> u64 {
        self.requests
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// JSON object form (the `stats` response payload).
    pub fn to_json(&self) -> String {
        let mut requests = String::from("{");
        for (i, (k, v)) in self.requests.iter().enumerate() {
            if i > 0 {
                requests.push(',');
            }
            json::push_string(&mut requests, k);
            requests.push(':');
            requests.push_str(&v.to_string());
        }
        requests.push('}');
        let mut walls = String::from("{");
        for (i, (k, h)) in self.pass_walls.iter().enumerate() {
            if i > 0 {
                walls.push(',');
            }
            json::push_string(&mut walls, k);
            walls.push(':');
            walls.push_str(&h.to_json());
        }
        walls.push('}');
        Obj::new()
            .u64("uptime_ms", self.uptime_ms)
            .str("toolchain", &self.toolchain)
            .u64("workers", self.workers)
            .u64("queue_depth", self.queue_depth)
            .u64("queue_capacity", self.queue_capacity)
            .u64("rejected", self.rejected)
            .u64("deadline_misses", self.deadline_misses)
            .u64("errors", self.errors)
            .u64("analyses", self.analyses)
            .raw("requests", &requests)
            .raw("cache", &self.cache.to_json())
            .raw("pass_walls", &walls)
            .finish()
    }

    /// Parses a snapshot back from [`ServerStats::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] on malformed or mis-shaped input.
    pub fn from_json(src: &str) -> Result<ServerStats, json::JsonError> {
        Self::from_value(&json::parse(src)?)
    }

    /// Parses a snapshot from an already-parsed [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] on mis-shaped input.
    pub fn from_value(v: &Value) -> Result<ServerStats, json::JsonError> {
        let obj = v.as_object("stats")?;
        let mut requests = BTreeMap::new();
        for (k, v) in obj
            .field("requests")
            .ok_or_else(|| json::JsonError::shape("missing `requests`"))?
            .as_object("requests")?
        {
            requests.insert(k.clone(), v.as_u64("request count")?);
        }
        let mut pass_walls = BTreeMap::new();
        for (k, v) in obj
            .field("pass_walls")
            .ok_or_else(|| json::JsonError::shape("missing `pass_walls`"))?
            .as_object("pass_walls")?
        {
            pass_walls.insert(k.clone(), Histogram::from_value(v)?);
        }
        Ok(ServerStats {
            uptime_ms: obj.get_u64("uptime_ms")?,
            toolchain: obj.get_str("toolchain")?,
            workers: obj.get_u64("workers")?,
            queue_depth: obj.get_u64("queue_depth")?,
            queue_capacity: obj.get_u64("queue_capacity")?,
            rejected: obj.get_u64("rejected")?,
            deadline_misses: obj.get_u64("deadline_misses")?,
            errors: obj.get_u64("errors")?,
            analyses: obj.get_u64("analyses")?,
            requests: requests.into_iter().collect(),
            cache: CacheCounters::from_value(
                obj.field("cache")
                    .ok_or_else(|| json::JsonError::shape("missing `cache`"))?,
            )?,
            pass_walls: pass_walls.into_iter().collect(),
        })
    }

    /// Human-readable rendering (the `earthcc client stats` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "uptime: {:.1}s | toolchain {} | workers {} | queue {}/{}\n",
            self.uptime_ms as f64 / 1000.0,
            self.toolchain,
            self.workers,
            self.queue_depth,
            self.queue_capacity
        ));
        out.push_str("requests:");
        for (k, v) in &self.requests {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push_str(&format!(
            "\nrejected={} deadline_misses={} errors={} analyses={}\n",
            self.rejected, self.deadline_misses, self.errors, self.analyses
        ));
        let c = &self.cache;
        out.push_str(&format!(
            "cache: hits={} misses={} evictions={} invalidations={} spill_writes={} spill_hits={} entries={} pending={}\n",
            c.hits, c.misses, c.evictions, c.invalidations, c.spill_writes, c.spill_hits,
            c.entries, c.pending
        ));
        for (name, h) in &self.pass_walls {
            out.push_str(&format!(
                "pass {name}: n={} mean={}ns buckets={:?}\n",
                h.count,
                h.mean_ns(),
                h.buckets
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_double() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1023), 0);
        assert_eq!(Histogram::bucket_of(1024), 0);
        assert_eq!(Histogram::bucket_of(2048), 1);
        assert_eq!(Histogram::bucket_of(1 << 20), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let mut h = Histogram::default();
        h.record(500);
        h.record(5_000_000);
        assert_eq!(h.count, 2);
        assert_eq!(h.total_ns, 5_000_500);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn stats_round_trip() {
        let mut h = Histogram::default();
        h.record(1_000);
        h.record(2_000_000);
        let s = ServerStats {
            uptime_ms: 1234,
            toolchain: "earthc/0.1.0 proto/1".into(),
            workers: 4,
            queue_depth: 1,
            queue_capacity: 64,
            rejected: 2,
            deadline_misses: 1,
            errors: 3,
            analyses: 7,
            requests: vec![("compile".into(), 10), ("stats".into(), 2)],
            cache: CacheCounters {
                hits: 8,
                misses: 2,
                evictions: 1,
                invalidations: 1,
                spill_writes: 1,
                spill_hits: 1,
                entries: 1,
                pending: 0,
            },
            pass_walls: vec![("optimize".into(), h)],
        };
        let enc = s.to_json();
        assert_eq!(ServerStats::from_json(&enc).unwrap(), s);
        assert_eq!(s.total_requests(), 12);
        assert_eq!(s.endpoint("compile"), 10);
        assert_eq!(s.endpoint("nope"), 0);
        assert!(s.render().contains("hits=8"));
    }
}
