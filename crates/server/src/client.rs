//! A blocking `earthd` client over one TCP connection.
//!
//! Requests are answered in order on the connection, so the client is a
//! simple write-line/read-line loop. Backpressure rejections
//! (`retry_after_ms`) are retried automatically with the server's
//! suggested backoff, up to [`Client::max_retries`] attempts.

use crate::proto::{Arg, CompileOptions, Request, RequestKind, Response};
use crate::stats::ServerStats;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What went wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The daemon sent something unintelligible.
    Protocol(String),
    /// The daemon answered with an error.
    Server {
        /// The daemon's single-line error message.
        error: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { error } => write!(f, "server error: {error}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking client. One request in flight at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Attempts per request when the daemon answers `retry_after_ms`
    /// (queue full). 1 disables retries.
    pub max_retries: u32,
    /// Deadline attached to every request (`None` = server default).
    pub deadline_ms: Option<u64>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
            max_retries: 8,
            deadline_ms: None,
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut line = req.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        let resp = Response::from_json(reply.trim_end())
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        // id 0 marks a response to an unparseable request line.
        if resp.id() != req.id && resp.id() != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {}",
                resp.id(),
                req.id
            )));
        }
        Ok(resp)
    }

    /// Sends one request, retrying on backpressure; a terminal server
    /// error becomes [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn request(&mut self, kind: RequestKind) -> Result<Response, ClientError> {
        let mut attempts = self.max_retries.max(1);
        loop {
            let req = Request {
                id: self.next_id,
                deadline_ms: self.deadline_ms,
                kind: kind.clone(),
            };
            self.next_id += 1;
            match self.roundtrip(&req)? {
                Response::Error {
                    error,
                    retry_after_ms: Some(ms),
                    ..
                } => {
                    attempts -= 1;
                    if attempts == 0 {
                        return Err(ClientError::Server { error });
                    }
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Response::Error { error, .. } => return Err(ClientError::Server { error }),
                resp => return Ok(resp),
            }
        }
    }

    /// `ping`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Ping)? {
            Response::Ok { .. } => Ok(()),
            other => Err(unexpected("ok", &other)),
        }
    }

    /// `shutdown` (the daemon acks, then stops).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)? {
            Response::Ok { .. } => Ok(()),
            other => Err(unexpected("ok", &other)),
        }
    }

    /// `stats`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(RequestKind::Stats)? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// `compile`. The response is always [`Response::Compile`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn compile(&mut self, source: &str, opts: CompileOptions) -> Result<Response, ClientError> {
        let resp = self.request(RequestKind::Compile {
            source: source.to_string(),
            opts,
        })?;
        match resp {
            Response::Compile { .. } => Ok(resp),
            other => Err(unexpected("compile", &other)),
        }
    }

    /// `run`. The response is always [`Response::Run`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn run(
        &mut self,
        source: &str,
        opts: CompileOptions,
        entry: &str,
        nodes: u16,
        args: Vec<Arg>,
    ) -> Result<Response, ClientError> {
        let resp = self.request(RequestKind::Run {
            source: source.to_string(),
            opts,
            entry: entry.to_string(),
            nodes,
            args,
        })?;
        match resp {
            Response::Run { .. } => Ok(resp),
            other => Err(unexpected("run", &other)),
        }
    }

    /// `pgo`. The response is always [`Response::Pgo`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn pgo(
        &mut self,
        source: &str,
        entry: &str,
        nodes: u16,
        args: Vec<Arg>,
    ) -> Result<Response, ClientError> {
        let resp = self.request(RequestKind::Pgo {
            source: source.to_string(),
            entry: entry.to_string(),
            nodes,
            args,
        })?;
        match resp {
            Response::Pgo { .. } => Ok(resp),
            other => Err(unexpected("pgo", &other)),
        }
    }

    /// `lint`. The response is always [`Response::Lint`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn lint(&mut self, source: &str) -> Result<Response, ClientError> {
        let resp = self.request(RequestKind::Lint {
            source: source.to_string(),
        })?;
        match resp {
            Response::Lint { .. } => Ok(resp),
            other => Err(unexpected("lint", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a `{wanted}` response, got {got:?}"))
}
