//! A bounded worker pool on `std::thread` with backpressure.
//!
//! Jobs beyond the queue bound are rejected immediately (the server
//! turns that into a `retry_after_ms` error) rather than queued without
//! limit — a daemon that accepts unbounded work converts overload into
//! latency for everyone. Shutdown is graceful: queued jobs drain before
//! the workers exit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after backing off.
    Full,
    /// The pool is shutting down.
    ShuttingDown,
}

struct Shared {
    queue: Mutex<PoolState>,
    /// Signals workers that a job arrived or shutdown began.
    work: Condvar,
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    rejected: u64,
}

/// The pool. Dropping it without [`WorkerPool::shutdown`] also drains
/// and joins.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) sharing a queue bounded
    /// at `queue_capacity` (at least one).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutting_down: false,
                rejected: 0,
            }),
            work: Condvar::new(),
        });
        let worker_count = workers.max(1);
        let workers: Vec<_> = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("earthd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(workers),
            worker_count,
            capacity: queue_capacity.max(1),
        }
    }

    /// Enqueues a job, or rejects it when the queue is full.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut st = self.shared.queue.lock().expect("pool lock");
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.jobs.len() >= self.capacity {
            st.rejected += 1;
            return Err(SubmitError::Full);
        }
        st.jobs.push_back(job);
        drop(st);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Jobs queued but not yet picked up.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("pool lock").jobs.len()
    }

    /// The queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Submissions rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.shared.queue.lock().expect("pool lock").rejected
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Drains the queue, stops the workers, and joins them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.queue.lock().expect("pool lock");
            st.shutting_down = true;
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = self.workers.lock().expect("pool lock").drain(..).collect();
        for w in handles {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.queue.lock().expect("pool lock");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                st = shared.work.wait(st).expect("pool lock");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(3, 16);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        drop(pool); // drains before joining
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn rejects_when_full() {
        let pool = WorkerPool::new(1, 2);
        // Block the single worker so the queue can fill.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap();
        // Worker is busy; two jobs fill the queue, the third is rejected.
        pool.submit(Box::new(|| {})).unwrap();
        pool.submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.submit(Box::new(|| {})), Err(SubmitError::Full));
        assert_eq!(pool.rejected(), 1);
        assert_eq!(pool.queue_depth(), 2);
        release_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_queue() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32);
        assert_eq!(pool.submit(Box::new(|| {})), Err(SubmitError::ShuttingDown));
    }
}
