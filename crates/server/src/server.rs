//! The `earthd` TCP server: thread-per-connection reads of
//! newline-delimited JSON requests, dispatched onto the bounded worker
//! pool, answered through the artifact cache.
//!
//! Request lifecycle:
//!
//! 1. A connection thread parses one request line.
//! 2. `stats`/`ping`/`shutdown` are answered inline (they must work
//!    even when the pool is saturated — that is when you need `stats`
//!    most).
//! 3. `compile`/`run`/`pgo`/`lint` are submitted to the pool. A full
//!    queue rejects immediately with `retry_after_ms`; an expired
//!    deadline is detected when the job is dequeued, before any work.
//! 4. The worker resolves the request through the artifact cache
//!    (single-flight: concurrent requests for one key compile once)
//!    and hands the response back to the connection thread, which is
//!    the only writer on its socket.

use crate::cache::{ArtifactCache, Lookup, Spill};
use crate::hash::key_hex;
use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{Request, RequestKind, Response};
use crate::stats::{Histogram, ServerStats};
use crate::{Artifact, Backend};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Backpressure hint sent with queue-full rejections.
const RETRY_AFTER_MS: u64 = 50;

/// Poll interval for the shutdown flag on otherwise-blocking reads.
const READ_POLL: Duration = Duration::from_millis(200);

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing compile/run/pgo/lint jobs.
    pub workers: usize,
    /// Queue bound; submissions beyond it are rejected with
    /// `retry_after_ms`.
    pub queue_capacity: usize,
    /// Resident-artifact bound for the LRU cache.
    pub cache_capacity: usize,
    /// Directory for evicted artifacts (`None` = evictions are final).
    pub spill_dir: Option<PathBuf>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            spill_dir: None,
            default_deadline_ms: None,
        }
    }
}

#[derive(Default)]
struct Metrics {
    requests: Mutex<BTreeMap<String, u64>>,
    errors: AtomicU64,
    deadline_misses: AtomicU64,
    analyses: AtomicU64,
    pass_walls: Mutex<BTreeMap<String, Histogram>>,
}

struct Inner<B: Backend> {
    backend: B,
    cache: ArtifactCache<Artifact<B::Exec>>,
    pool: WorkerPool,
    metrics: Metrics,
    shutdown: AtomicBool,
    started: Instant,
    addr: SocketAddr,
    default_deadline_ms: Option<u64>,
}

impl<B: Backend> Inner<B> {
    fn stats(&self) -> ServerStats {
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            toolchain: self.backend.toolchain(),
            workers: self.pool.workers() as u64,
            queue_depth: self.pool.queue_depth() as u64,
            queue_capacity: self.pool.capacity() as u64,
            rejected: self.pool.rejected(),
            deadline_misses: self.metrics.deadline_misses.load(Ordering::Relaxed),
            errors: self.metrics.errors.load(Ordering::Relaxed),
            analyses: self.metrics.analyses.load(Ordering::Relaxed),
            requests: self
                .metrics
                .requests
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            cache: self.cache.counters(),
            pass_walls: self
                .metrics
                .pass_walls
                .lock()
                .expect("metrics lock")
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Fetches (or cold-compiles, single-flight) the artifact for one
    /// `(source, opts)` pair. `cached` is true when no compile ran.
    #[allow(clippy::type_complexity)]
    fn acquire(
        &self,
        source: &str,
        opts: &crate::proto::CompileOptions,
    ) -> Result<(Arc<Artifact<B::Exec>>, u64, bool), String> {
        let key = self.backend.cache_key(source, opts);
        match self.cache.lookup(key) {
            Lookup::Hit(a) | Lookup::Spilled(a) => Ok((a, key, true)),
            Lookup::Miss(guard) => {
                let out = self.backend.compile(source, opts)?; // guard drop = abandon
                self.metrics
                    .analyses
                    .fetch_add(out.analyses, Ordering::Relaxed);
                {
                    let mut walls = self.metrics.pass_walls.lock().expect("metrics lock");
                    for (pass, ns) in &out.timings {
                        walls.entry(pass.clone()).or_default().record(*ns);
                    }
                }
                let artifact = Arc::new(out.artifact);
                guard.fulfill(Arc::clone(&artifact), self.backend.cache_tag(opts));
                Ok((artifact, key, false))
            }
        }
    }

    /// Executes one pooled request kind to completion.
    fn execute(&self, id: u64, kind: RequestKind) -> Response {
        let result = match kind {
            RequestKind::Compile { source, opts } => {
                self.acquire(&source, &opts)
                    .map(|(artifact, key, cached)| Response::Compile {
                        id,
                        key: key_hex(key),
                        cached,
                        ir: artifact.ir.clone(),
                        report: artifact.report.clone(),
                    })
            }
            RequestKind::Run {
                source,
                opts,
                entry,
                nodes,
                args,
            } => self
                .acquire(&source, &opts)
                .and_then(|(artifact, key, cached)| {
                    let run = self.backend.run(&artifact, &entry, nodes, &args)?;
                    Ok(Response::Run {
                        id,
                        key: key_hex(key),
                        cached,
                        ret: run.ret,
                        time_ns: run.time_ns,
                        stats: run.stats,
                        output: run.output,
                    })
                }),
            RequestKind::Pgo {
                source,
                entry,
                nodes,
                args,
            } => self
                .backend
                .pgo(&source, &entry, nodes, &args)
                .map(|out| Response::Pgo {
                    id,
                    sites: out.sites,
                    merged_sites: out.merged_sites,
                    invalidated: self.cache.invalidate_tagged(),
                    ret: out.ret,
                }),
            RequestKind::Lint { source } => self.backend.lint(&source).map(|out| Response::Lint {
                id,
                independent: out.independent,
                diagnostics: out.diagnostics,
            }),
            RequestKind::Stats | RequestKind::Ping | RequestKind::Shutdown => {
                unreachable!("handled inline")
            }
        };
        match result {
            Ok(resp) => resp,
            Err(error) => self.error(id, error, None),
        }
    }

    fn error(&self, id: u64, error: impl Into<String>, retry_after_ms: Option<u64>) -> Response {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        Response::Error {
            id,
            error: error.into(),
            retry_after_ms,
        }
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A handle for observing and stopping a server from another thread.
pub struct ServerHandle<B: Backend> {
    inner: Arc<Inner<B>>,
}

impl<B: Backend> ServerHandle<B> {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Requests a graceful shutdown (equivalent to a `shutdown`
    /// request on the wire).
    pub fn shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }
}

/// The daemon. [`Server::bind`], then [`Server::run`] on a dedicated
/// thread (it blocks until shutdown).
pub struct Server<B: Backend> {
    listener: TcpListener,
    inner: Arc<Inner<B>>,
}

impl<B: Backend> Server<B> {
    /// Binds the daemon and spawns its worker pool. Use port 0 to let
    /// the OS pick.
    ///
    /// # Errors
    ///
    /// Propagates socket-bind failures.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        backend: B,
    ) -> std::io::Result<Server<B>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let spill = config.spill_dir.map(|dir| Spill {
            dir,
            encode: |a: &Artifact<B::Exec>| Some(a.to_spill_json()),
            decode: |text| Artifact::from_spill_json(text),
        });
        let inner = Arc::new(Inner {
            backend,
            cache: ArtifactCache::new(config.cache_capacity, spill),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            addr,
            default_deadline_ms: config.default_deadline_ms,
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A handle usable from other threads while [`Server::run`] blocks.
    pub fn handle(&self) -> ServerHandle<B> {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serves until a `shutdown` request (or [`ServerHandle::shutdown`])
    /// arrives, then drains the worker pool and joins every connection.
    pub fn run(self) {
        let mut connections = Vec::new();
        for stream in self.listener.incoming() {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = Arc::clone(&self.inner);
            if let Ok(conn) = std::thread::Builder::new()
                .name("earthd-conn".into())
                .spawn(move || serve_connection(stream, &inner))
            {
                connections.push(conn);
            }
            // Reap finished connection threads so long-lived daemons
            // don't accumulate handles.
            connections.retain(|c| !c.is_finished());
        }
        self.inner.pool.shutdown();
        for conn in connections {
            let _ = conn.join();
        }
    }
}

fn serve_connection<B: Backend>(stream: TcpStream, inner: &Arc<Inner<B>>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => {
                if !line.trim().is_empty() {
                    // Final request without a trailing newline.
                    if !handle_line(inner, line.trim_end(), &mut writer) {
                        return;
                    }
                }
                return;
            }
            Ok(_) => {
                let keep_going = {
                    let trimmed = line.trim_end();
                    trimmed.is_empty() || handle_line(inner, trimmed, &mut writer)
                };
                line.clear();
                if !keep_going {
                    return;
                }
            }
            // Timeout while polling for the shutdown flag; any bytes
            // already read stay accumulated in `line`.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

/// Handles one request line; returns false when the connection should
/// close (write failure or shutdown).
fn handle_line<B: Backend>(inner: &Arc<Inner<B>>, line: &str, writer: &mut TcpStream) -> bool {
    let req = match Request::from_json(line) {
        Ok(req) => req,
        Err(e) => {
            let resp = inner.error(0, format!("bad request: {e}"), None);
            return write_response(writer, &resp);
        }
    };
    {
        let mut requests = inner.metrics.requests.lock().expect("metrics lock");
        *requests.entry(req.kind.endpoint().to_string()).or_insert(0) += 1;
    }
    let id = req.id;
    match req.kind {
        RequestKind::Ping => write_response(writer, &Response::Ok { id }),
        RequestKind::Stats => write_response(
            writer,
            &Response::Stats {
                id,
                stats: inner.stats(),
            },
        ),
        RequestKind::Shutdown => {
            let _ = write_response(writer, &Response::Ok { id });
            inner.begin_shutdown();
            false
        }
        kind => {
            let deadline = req
                .deadline_ms
                .or(inner.default_deadline_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let (tx, rx) = mpsc::channel::<Response>();
            let job_inner = Arc::clone(inner);
            let submitted = inner.pool.submit(Box::new(move || {
                let resp = match deadline {
                    Some(d) if Instant::now() > d => {
                        job_inner
                            .metrics
                            .deadline_misses
                            .fetch_add(1, Ordering::Relaxed);
                        job_inner.error(id, "deadline exceeded while queued", None)
                    }
                    _ => job_inner.execute(id, kind),
                };
                let _ = tx.send(resp);
            }));
            let resp = match submitted {
                Ok(()) => rx.recv().unwrap_or_else(|_| {
                    inner.error(id, "internal error: worker dropped the request", None)
                }),
                Err(SubmitError::Full) => inner.error(
                    id,
                    format!("queue full ({} jobs)", inner.pool.capacity()),
                    Some(RETRY_AFTER_MS),
                ),
                Err(SubmitError::ShuttingDown) => inner.error(id, "daemon is shutting down", None),
            };
            write_response(writer, &resp)
        }
    }
}

fn write_response(writer: &mut TcpStream, resp: &Response) -> bool {
    let mut line = resp.to_json();
    line.push('\n');
    writer.write_all(line.as_bytes()).is_ok() && writer.flush().is_ok()
}
