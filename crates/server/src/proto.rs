//! The `earthd` wire protocol: newline-delimited JSON.
//!
//! One request per line, one response per line, matching the repo's
//! serde-free JSON convention ([`earth_ir::json`]). Every request
//! carries a client-chosen `id` echoed in the response, a protocol
//! version, and an optional per-request deadline. Responses are either
//! `"ok":true` with a `kind`-specific payload, or `"ok":false` with an
//! `error` string and — for backpressure rejections — a
//! `retry_after_ms` hint.
//!
//! ```text
//! → {"v":1,"id":7,"cmd":"compile","source":"int main() {...}","opts":{...}}
//! ← {"id":7,"ok":true,"kind":"compile","key":"93ab...","cached":true,...}
//! ```

use crate::stats::ServerStats;
use earth_ir::json::{self, Obj, ObjectExt as _, Value};

/// Wire protocol version; requests with another version are rejected.
pub const PROTOCOL_VERSION: u64 = 1;

/// Compilation options carried by `compile`/`run` requests.
///
/// These (plus the source text, the daemon's toolchain fingerprint, and
/// the accumulated profile when `use_profile` is set) determine the
/// artifact-cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the communication optimizer (off = the paper's "simple"
    /// build).
    pub optimize: bool,
    /// Run locality inference.
    pub locality: bool,
    /// Feed the daemon's accumulated PGO profile into the optimizer.
    pub use_profile: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            optimize: true,
            locality: true,
            use_profile: false,
        }
    }
}

impl CompileOptions {
    fn to_json(&self) -> String {
        Obj::new()
            .bool("optimize", self.optimize)
            .bool("locality", self.locality)
            .bool("use_profile", self.use_profile)
            .finish()
    }

    fn from_value(v: &Value) -> Result<CompileOptions, json::JsonError> {
        let obj = v.as_object("opts")?;
        Ok(CompileOptions {
            optimize: obj.get_bool("optimize")?,
            locality: obj.get_bool("locality")?,
            use_profile: obj.get_bool("use_profile")?,
        })
    }
}

/// An entry-function argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// 64-bit integer argument.
    Int(i64),
    /// 64-bit float argument.
    Double(f64),
}

fn args_to_json(args: &[Arg]) -> String {
    let mut s = String::from("[");
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match a {
            Arg::Int(n) => s.push_str(&n.to_string()),
            Arg::Double(x) => s.push_str(&json::float(*x)),
        }
    }
    s.push(']');
    s
}

fn args_from_value(v: &Value) -> Result<Vec<Arg>, json::JsonError> {
    v.as_array("args")?
        .iter()
        .map(|item| match item {
            Value::Int(n) => Ok(Arg::Int(*n)),
            Value::Float(x) => Ok(Arg::Double(*x)),
            _ => Err(json::JsonError::shape("args must be numbers")),
        })
        .collect()
}

/// The request body, by endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Compile (or fetch from the artifact cache) one source text.
    Compile {
        /// EARTH-C source text.
        source: String,
        /// Compilation options (part of the cache key).
        opts: CompileOptions,
    },
    /// Compile (cached) and simulate.
    Run {
        /// EARTH-C source text.
        source: String,
        /// Compilation options (part of the cache key).
        opts: CompileOptions,
        /// Entry function name.
        entry: String,
        /// Simulated EARTH nodes.
        nodes: u16,
        /// Entry arguments.
        args: Vec<Arg>,
    },
    /// Instrumented run; merges the measured profile into the daemon's
    /// accumulated `ProfileDb`.
    Pgo {
        /// EARTH-C source text.
        source: String,
        /// Entry function name.
        entry: String,
        /// Simulated EARTH nodes.
        nodes: u16,
        /// Entry arguments.
        args: Vec<Arg>,
    },
    /// Parallel-soundness lint.
    Lint {
        /// EARTH-C source text.
        source: String,
    },
    /// Observability snapshot.
    Stats,
    /// Liveness check.
    Ping,
    /// Graceful daemon shutdown.
    Shutdown,
}

impl RequestKind {
    /// The endpoint name used in stats and dispatch.
    pub fn endpoint(&self) -> &'static str {
        match self {
            RequestKind::Compile { .. } => "compile",
            RequestKind::Run { .. } => "run",
            RequestKind::Pgo { .. } => "pgo",
            RequestKind::Lint { .. } => "lint",
            RequestKind::Stats => "stats",
            RequestKind::Ping => "ping",
            RequestKind::Shutdown => "shutdown",
        }
    }
}

/// One protocol request: id, optional deadline, body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: u64,
    /// Per-request deadline: the daemon answers `deadline exceeded`
    /// instead of starting work this many milliseconds after receipt.
    pub deadline_ms: Option<u64>,
    /// The endpoint payload.
    pub kind: RequestKind,
}

impl Request {
    /// Encodes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .u64("v", PROTOCOL_VERSION)
            .u64("id", self.id)
            .str("cmd", self.kind.endpoint());
        if let Some(d) = self.deadline_ms {
            o = o.u64("deadline_ms", d);
        }
        match &self.kind {
            RequestKind::Compile { source, opts } => o
                .str("source", source)
                .raw("opts", &opts.to_json())
                .finish(),
            RequestKind::Run {
                source,
                opts,
                entry,
                nodes,
                args,
            } => o
                .str("source", source)
                .raw("opts", &opts.to_json())
                .str("entry", entry)
                .u64("nodes", *nodes as u64)
                .raw("args", &args_to_json(args))
                .finish(),
            RequestKind::Pgo {
                source,
                entry,
                nodes,
                args,
            } => o
                .str("source", source)
                .str("entry", entry)
                .u64("nodes", *nodes as u64)
                .raw("args", &args_to_json(args))
                .finish(),
            RequestKind::Lint { source } => o.str("source", source).finish(),
            RequestKind::Stats | RequestKind::Ping | RequestKind::Shutdown => o.finish(),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] for malformed JSON, an unknown
    /// `cmd`, or a protocol-version mismatch.
    pub fn from_json(src: &str) -> Result<Request, json::JsonError> {
        let v = json::parse(src)?;
        let obj = v.as_object("request")?;
        let version = obj.get_u64("v")?;
        if version != PROTOCOL_VERSION {
            return Err(json::JsonError::shape(format!(
                "unsupported protocol version {version} (expected {PROTOCOL_VERSION})"
            )));
        }
        let id = obj.get_u64("id")?;
        let deadline_ms = match obj.field("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64("`deadline_ms`")?),
        };
        let cmd = obj.get_str("cmd")?;
        let entry_or_main = || -> Result<String, json::JsonError> {
            match obj.field("entry") {
                None | Some(Value::Null) => Ok("main".into()),
                Some(v) => Ok(v.as_str("`entry`")?.to_string()),
            }
        };
        let nodes = || -> Result<u16, json::JsonError> {
            match obj.field("nodes") {
                None | Some(Value::Null) => Ok(1),
                Some(v) => {
                    let n = v.as_u64("`nodes`")?;
                    u16::try_from(n).map_err(|_| json::JsonError::shape("`nodes` must fit u16"))
                }
            }
        };
        let args = || -> Result<Vec<Arg>, json::JsonError> {
            match obj.field("args") {
                None | Some(Value::Null) => Ok(Vec::new()),
                Some(v) => args_from_value(v),
            }
        };
        let kind = match cmd.as_str() {
            "compile" => RequestKind::Compile {
                source: obj.get_str("source")?,
                opts: CompileOptions::from_value(
                    obj.field("opts")
                        .ok_or_else(|| json::JsonError::shape("missing `opts`"))?,
                )?,
            },
            "run" => RequestKind::Run {
                source: obj.get_str("source")?,
                opts: CompileOptions::from_value(
                    obj.field("opts")
                        .ok_or_else(|| json::JsonError::shape("missing `opts`"))?,
                )?,
                entry: entry_or_main()?,
                nodes: nodes()?,
                args: args()?,
            },
            "pgo" => RequestKind::Pgo {
                source: obj.get_str("source")?,
                entry: entry_or_main()?,
                nodes: nodes()?,
                args: args()?,
            },
            "lint" => RequestKind::Lint {
                source: obj.get_str("source")?,
            },
            "stats" => RequestKind::Stats,
            "ping" => RequestKind::Ping,
            "shutdown" => RequestKind::Shutdown,
            other => {
                return Err(json::JsonError::shape(format!("unknown cmd `{other}`")));
            }
        };
        Ok(Request {
            id,
            deadline_ms,
            kind,
        })
    }
}

/// One protocol response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed. `retry_after_ms` is set for backpressure
    /// rejections: the queue was full, try again after that long.
    Error {
        /// Echo of the request id (0 when the request line itself was
        /// unparseable).
        id: u64,
        /// What went wrong.
        error: String,
        /// Backpressure hint, when the failure is transient.
        retry_after_ms: Option<u64>,
    },
    /// `compile` succeeded.
    Compile {
        /// Echo of the request id.
        id: u64,
        /// Content-address of the artifact (hex).
        key: String,
        /// Whether the artifact came from the cache.
        cached: bool,
        /// Optimized IR, pretty-printed (byte-stable).
        ir: String,
        /// The cold compile's `PipelineReport` as raw JSON.
        report: String,
    },
    /// `run` succeeded.
    Run {
        /// Echo of the request id.
        id: u64,
        /// Content-address of the artifact used (hex).
        key: String,
        /// Whether the artifact came from the cache.
        cached: bool,
        /// Entry return value, rendered.
        ret: String,
        /// Virtual completion time.
        time_ns: u64,
        /// Simulator operation counts, rendered.
        stats: String,
        /// Program output lines.
        output: Vec<String>,
    },
    /// `pgo` succeeded.
    Pgo {
        /// Echo of the request id.
        id: u64,
        /// Sites measured by this instrumented run.
        sites: u64,
        /// Sites in the daemon's accumulated profile after merging.
        merged_sites: u64,
        /// Cached artifacts invalidated because the profile changed.
        invalidated: u64,
        /// Instrumented-run return value, rendered.
        ret: String,
    },
    /// `lint` succeeded.
    Lint {
        /// Echo of the request id.
        id: u64,
        /// Whether every parallel construct is provably independent.
        independent: bool,
        /// Diagnostics as a raw JSON array ([`earth_ir::diag`] format).
        diagnostics: String,
    },
    /// `stats` snapshot.
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The snapshot.
        stats: ServerStats,
    },
    /// `ping` / `shutdown` acknowledged.
    Ok {
        /// Echo of the request id.
        id: u64,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Error { id, .. }
            | Response::Compile { id, .. }
            | Response::Run { id, .. }
            | Response::Pgo { id, .. }
            | Response::Lint { id, .. }
            | Response::Stats { id, .. }
            | Response::Ok { id } => *id,
        }
    }

    /// Encodes to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Error {
                id,
                error,
                retry_after_ms,
            } => {
                let mut o = Obj::new()
                    .u64("id", *id)
                    .bool("ok", false)
                    .str("error", error);
                if let Some(ms) = retry_after_ms {
                    o = o.u64("retry_after_ms", *ms);
                }
                o.finish()
            }
            Response::Compile {
                id,
                key,
                cached,
                ir,
                report,
            } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "compile")
                .str("key", key)
                .bool("cached", *cached)
                .str("ir", ir)
                .raw("report", report)
                .finish(),
            Response::Run {
                id,
                key,
                cached,
                ret,
                time_ns,
                stats,
                output,
            } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "run")
                .str("key", key)
                .bool("cached", *cached)
                .str("ret", ret)
                .u64("time_ns", *time_ns)
                .str("stats", stats)
                .str_array("output", output)
                .finish(),
            Response::Pgo {
                id,
                sites,
                merged_sites,
                invalidated,
                ret,
            } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "pgo")
                .u64("sites", *sites)
                .u64("merged_sites", *merged_sites)
                .u64("invalidated", *invalidated)
                .str("ret", ret)
                .finish(),
            Response::Lint {
                id,
                independent,
                diagnostics,
            } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "lint")
                .bool("independent", *independent)
                .raw("diagnostics", diagnostics)
                .finish(),
            Response::Stats { id, stats } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "stats")
                .raw("stats", &stats.to_json())
                .finish(),
            Response::Ok { id } => Obj::new()
                .u64("id", *id)
                .bool("ok", true)
                .str("kind", "ok")
                .finish(),
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a [`json::JsonError`] for malformed JSON or an unknown
    /// response kind.
    pub fn from_json(src: &str) -> Result<Response, json::JsonError> {
        let v = json::parse(src)?;
        let obj = v.as_object("response")?;
        let id = obj.get_u64("id")?;
        if !obj.get_bool("ok")? {
            return Ok(Response::Error {
                id,
                error: obj.get_str("error")?,
                retry_after_ms: match obj.field("retry_after_ms") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_u64("`retry_after_ms`")?),
                },
            });
        }
        let kind = obj.get_str("kind")?;
        let raw = |key: &str| -> Result<String, json::JsonError> {
            obj.field(key)
                .map(Value::render)
                .ok_or_else(|| json::JsonError::shape(format!("missing `{key}`")))
        };
        match kind.as_str() {
            "compile" => Ok(Response::Compile {
                id,
                key: obj.get_str("key")?,
                cached: obj.get_bool("cached")?,
                ir: obj.get_str("ir")?,
                report: raw("report")?,
            }),
            "run" => Ok(Response::Run {
                id,
                key: obj.get_str("key")?,
                cached: obj.get_bool("cached")?,
                ret: obj.get_str("ret")?,
                time_ns: obj.get_u64("time_ns")?,
                stats: obj.get_str("stats")?,
                output: obj
                    .get_array("output")?
                    .iter()
                    .map(|v| v.as_str("output line").map(str::to_string))
                    .collect::<Result<_, _>>()?,
            }),
            "pgo" => Ok(Response::Pgo {
                id,
                sites: obj.get_u64("sites")?,
                merged_sites: obj.get_u64("merged_sites")?,
                invalidated: obj.get_u64("invalidated")?,
                ret: obj.get_str("ret")?,
            }),
            "lint" => Ok(Response::Lint {
                id,
                independent: obj.get_bool("independent")?,
                diagnostics: raw("diagnostics")?,
            }),
            "stats" => Ok(Response::Stats {
                id,
                stats: ServerStats::from_value(
                    obj.field("stats")
                        .ok_or_else(|| json::JsonError::shape("missing `stats`"))?,
                )?,
            }),
            "ok" => Ok(Response::Ok { id }),
            other => Err(json::JsonError::shape(format!(
                "unknown response kind `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request {
                id: 1,
                deadline_ms: None,
                kind: RequestKind::Compile {
                    source: "int main() { return 0; }\n".into(),
                    opts: CompileOptions::default(),
                },
            },
            Request {
                id: 2,
                deadline_ms: Some(250),
                kind: RequestKind::Run {
                    source: "line1\nline2 \"quoted\"\t".into(),
                    opts: CompileOptions {
                        optimize: false,
                        locality: true,
                        use_profile: true,
                    },
                    entry: "main".into(),
                    nodes: 8,
                    args: vec![Arg::Int(-3), Arg::Double(2.5), Arg::Double(4.0)],
                },
            },
            Request {
                id: 3,
                deadline_ms: None,
                kind: RequestKind::Pgo {
                    source: "s".into(),
                    entry: "f".into(),
                    nodes: 2,
                    args: vec![],
                },
            },
            Request {
                id: 4,
                deadline_ms: None,
                kind: RequestKind::Lint { source: "s".into() },
            },
            Request {
                id: 5,
                deadline_ms: None,
                kind: RequestKind::Stats,
            },
            Request {
                id: 6,
                deadline_ms: Some(1),
                kind: RequestKind::Ping,
            },
            Request {
                id: 7,
                deadline_ms: None,
                kind: RequestKind::Shutdown,
            },
        ];
        for req in cases {
            let line = req.to_json();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Request::from_json(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Error {
                id: 1,
                error: "queue full".into(),
                retry_after_ms: Some(50),
            },
            Response::Error {
                id: 2,
                error: "frontend: parse error\nat line 3".into(),
                retry_after_ms: None,
            },
            Response::Compile {
                id: 3,
                key: "00ff00ff00ff00ff".into(),
                cached: true,
                ir: "double distance(Point* p)\n{ ... }\n".into(),
                report: "{\"passes\":[],\"total_wall_ns\":0,\"cache\":{\"hits\":0,\"misses\":0,\"function_recomputes\":0,\"invalidations\":0}}".into(),
            },
            Response::Run {
                id: 4,
                key: "0123456789abcdef".into(),
                cached: false,
                ret: "5".into(),
                time_ns: 123456,
                stats: "read-data 3 | ...".into(),
                output: vec!["a".into(), "b\nc".into()],
            },
            Response::Pgo {
                id: 5,
                sites: 12,
                merged_sites: 40,
                invalidated: 2,
                ret: "6".into(),
            },
            Response::Lint {
                id: 6,
                independent: false,
                diagnostics: "[]".into(),
            },
            Response::Stats {
                id: 7,
                stats: ServerStats::default(),
            },
            Response::Ok { id: 8 },
        ];
        for resp in cases {
            let line = resp.to_json();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(Response::from_json(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = Request {
            id: 1,
            deadline_ms: None,
            kind: RequestKind::Ping,
        }
        .to_json()
        .replace("\"v\":1", "\"v\":99");
        assert!(Request::from_json(&line).is_err());
    }

    #[test]
    fn entry_nodes_args_default() {
        let line = r#"{"v":1,"id":9,"cmd":"run","source":"s","opts":{"optimize":true,"locality":true,"use_profile":false}}"#;
        match Request::from_json(line).unwrap().kind {
            RequestKind::Run {
                entry, nodes, args, ..
            } => {
                assert_eq!(entry, "main");
                assert_eq!(nodes, 1);
                assert!(args.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
