#![warn(missing_docs)]
//! `earthd` serving layer: a concurrent compile-and-run TCP daemon with
//! a content-addressed artifact cache.
//!
//! This crate owns everything about *serving* — the newline-delimited
//! JSON protocol ([`proto`]), the bounded worker pool ([`pool`]), the
//! single-flight artifact cache ([`cache`]), observability ([`stats`]),
//! the TCP server loop ([`server`]), and a blocking client
//! ([`client`]) — but nothing about *compiling*. Compilation is behind
//! the [`Backend`] trait, implemented by the root `earthc` package over
//! its `Pipeline`; that keeps this crate's only dependency `earth-ir`
//! (for the shared JSON module) and avoids a dependency cycle with the
//! compiler it serves.
//!
//! The point of the cache: a repeated identical compile request — same
//! source, same options, same profile, same toolchain — is answered
//! from the cache with **zero** additional whole-program analyses, and
//! N clients stampeding one popular key trigger exactly one compile.

pub mod cache;
pub mod client;
pub mod hash;
pub mod pool;
pub mod proto;
pub mod server;
pub mod stats;

use earth_ir::json::{self, Obj, ObjectExt as _};
use proto::{Arg, CompileOptions};

/// A cached compilation artifact.
///
/// `exec` holds the backend's executable form (sim bytecode for
/// `earthc`); it is deliberately *not* persisted by the spill encoding,
/// so a spill-restored artifact answers `compile` requests directly
/// while `run` requests make the backend rebuild the executable from
/// the stored source.
pub struct Artifact<E> {
    /// The exact source text the artifact was compiled from.
    pub source: String,
    /// The compile options used.
    pub opts: CompileOptions,
    /// Optimized IR, pretty-printed. Byte-stable: concurrent clients
    /// compare these for equality.
    pub ir: String,
    /// The cold compile's `PipelineReport` as raw JSON.
    pub report: String,
    /// Executable form, absent after a spill round trip.
    pub exec: Option<E>,
}

impl<E> Artifact<E> {
    /// Spill-file encoding (everything except `exec`).
    pub fn to_spill_json(&self) -> String {
        Obj::new()
            .str("source", &self.source)
            .bool("optimize", self.opts.optimize)
            .bool("locality", self.opts.locality)
            .bool("use_profile", self.opts.use_profile)
            .str("ir", &self.ir)
            .raw("report", &self.report)
            .finish()
    }

    /// Restores an artifact (with `exec: None`) from
    /// [`Artifact::to_spill_json`] output. Returns `None` on any
    /// malformed input — a corrupt spill file is just a cache miss.
    pub fn from_spill_json(text: &str) -> Option<Artifact<E>> {
        let v = json::parse(text).ok()?;
        let obj = v.as_object("artifact").ok()?;
        Some(Artifact {
            source: obj.get_str("source").ok()?,
            opts: CompileOptions {
                optimize: obj.get_bool("optimize").ok()?,
                locality: obj.get_bool("locality").ok()?,
                use_profile: obj.get_bool("use_profile").ok()?,
            },
            ir: obj.get_str("ir").ok()?,
            report: obj.field("report").map(json::Value::render)?,
            exec: None,
        })
    }
}

/// What a cold compile produced, beyond the artifact itself.
pub struct CompileOutput<E> {
    /// The artifact to cache and serve.
    pub artifact: Artifact<E>,
    /// Per-pass wall times in nanoseconds, fed into the stats
    /// histograms.
    pub timings: Vec<(String, u64)>,
    /// Whole-program analyses this compile performed (the pipeline's
    /// analysis-cache miss count). The daemon sums these; cache hits
    /// add zero.
    pub analyses: u64,
}

/// Result of simulating an artifact.
pub struct RunOutput {
    /// Entry return value, rendered.
    pub ret: String,
    /// Virtual completion time.
    pub time_ns: u64,
    /// Simulator operation counts, rendered.
    pub stats: String,
    /// Program output lines.
    pub output: Vec<String>,
}

/// Result of an instrumented (PGO) run.
pub struct PgoOutput {
    /// Sites measured by this run.
    pub sites: u64,
    /// Sites in the accumulated profile after merging.
    pub merged_sites: u64,
    /// Instrumented-run return value, rendered.
    pub ret: String,
}

/// Result of the parallel-soundness lint.
pub struct LintOutput {
    /// Whether every parallel construct is provably independent.
    pub independent: bool,
    /// Diagnostics as a raw JSON array (`earth_ir::diag` format).
    pub diagnostics: String,
}

/// The compiler behind the daemon.
///
/// All methods take `&self` and are called concurrently from worker
/// threads; implementations guard their mutable state (the accumulated
/// PGO profile) internally. Errors are single-line strings sent
/// verbatim to the client.
pub trait Backend: Send + Sync + 'static {
    /// Executable artifact form (e.g. sim bytecode).
    type Exec: Send + Sync + 'static;

    /// Toolchain fingerprint. Part of every cache key, so a daemon
    /// restarted on a different toolchain never serves stale spill
    /// files.
    fn toolchain(&self) -> String;

    /// The content-address of `(source, opts)` under the current
    /// toolchain and (when `opts.use_profile`) accumulated profile.
    fn cache_key(&self, source: &str, opts: &CompileOptions) -> u64;

    /// Invalidation tag for an artifact compiled with `opts`: 0 when
    /// profile-independent, the current profile epoch otherwise.
    fn cache_tag(&self, opts: &CompileOptions) -> u64;

    /// Cold-compiles one source.
    ///
    /// # Errors
    ///
    /// A single-line description of the frontend/pipeline failure.
    fn compile(
        &self,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<CompileOutput<Self::Exec>, String>;

    /// Simulates an artifact (recompiling from `artifact.source` when
    /// `artifact.exec` is `None`, e.g. after a spill round trip).
    ///
    /// # Errors
    ///
    /// A single-line description of the failure.
    fn run(
        &self,
        artifact: &Artifact<Self::Exec>,
        entry: &str,
        nodes: u16,
        args: &[Arg],
    ) -> Result<RunOutput, String>;

    /// Runs instrumented and merges the measured profile into the
    /// accumulated one. The server invalidates profile-tagged cache
    /// entries afterwards.
    ///
    /// # Errors
    ///
    /// A single-line description of the failure.
    fn pgo(&self, source: &str, entry: &str, nodes: u16, args: &[Arg])
        -> Result<PgoOutput, String>;

    /// Lints one source.
    ///
    /// # Errors
    ///
    /// A single-line description of the failure.
    fn lint(&self, source: &str) -> Result<LintOutput, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_spill_round_trips_without_exec() {
        let art: Artifact<Vec<u8>> = Artifact {
            source: "int main() {\n\treturn 0;\n}\n".into(),
            opts: CompileOptions {
                optimize: true,
                locality: false,
                use_profile: false,
            },
            ir: "func main\n".into(),
            report: "{\"passes\":[]}".into(),
            exec: Some(vec![1, 2, 3]),
        };
        let text = art.to_spill_json();
        let back: Artifact<Vec<u8>> = Artifact::from_spill_json(&text).unwrap();
        assert_eq!(back.source, art.source);
        assert_eq!(back.opts, art.opts);
        assert_eq!(back.ir, art.ir);
        assert_eq!(back.report, art.report);
        assert!(back.exec.is_none());
        assert!(Artifact::<Vec<u8>>::from_spill_json("{}").is_none());
        assert!(Artifact::<Vec<u8>>::from_spill_json("not json").is_none());
    }
}
