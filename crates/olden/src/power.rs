//! The Olden `power` benchmark: power-system pricing optimization over a
//! multi-level tree (root → feeders → laterals → branches → leaves).
//!
//! The paper (Table II) uses 10 000 leaves: 10 feeders × 20 laterals ×
//! 5 branches × 10 leaves. Feeders are distributed round-robin across the
//! nodes; each feeder's whole subtree lives on the feeder's node, and the
//! per-feeder computation runs at the owner (`@OWNER_OF`). The per-node
//! computation reads several fields of a tree node, computes, and writes
//! results back — the pattern the paper's Figure 11(a) shows being
//! *blocked* by the communication optimizer.

/// EARTH-C source of the benchmark.
pub const SOURCE: &str = r#"
struct Leaf {
    Leaf* next;
    double pi_r;
    double pi_i;
    double w;
    double theta;
};

struct Branch {
    Branch* next;
    Leaf* leaves;
    double d_p;
    double d_q;
    double r;
    double x;
    double alpha;
    double beta;
};

struct Lateral {
    Lateral* next;
    Branch* branches;
    double d_p;
    double d_q;
    double r;
    double x;
    double alpha;
    double beta;
};

struct Feeder {
    Feeder* next;
    Lateral* laterals;
    double d_p;
    double d_q;
};

struct Root {
    Feeder* feeders;
    double theta_r;
    double theta_i;
    double last_p;
    double last_q;
};

Leaf* build_leaves(int n) {
    Leaf *head;
    Leaf *l;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        l = malloc(sizeof(Leaf));
        l->next = head;
        l->pi_r = 1.0;
        l->pi_i = 1.0;
        l->w = 1.0;
        l->theta = 0.0;
        head = l;
    }
    return head;
}

Branch* build_branches(int n, int leaves_per) {
    Branch *head;
    Branch *b;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        b = malloc(sizeof(Branch));
        b->next = head;
        b->leaves = build_leaves(leaves_per);
        b->d_p = 0.0;
        b->d_q = 0.0;
        b->r = 0.0001;
        b->x = 0.00002;
        b->alpha = 0.0;
        b->beta = 0.0;
        head = b;
    }
    return head;
}

Lateral* build_lateral(int branches_per, int leaves_per) {
    Lateral *l;
    l = malloc(sizeof(Lateral));
    l->next = NULL;
    l->branches = build_branches(branches_per, leaves_per);
    l->d_p = 0.0;
    l->d_q = 0.0;
    l->r = 0.000083;
    l->x = 0.00003;
    l->alpha = 0.0;
    l->beta = 0.0;
    return l;
}

Lateral* build_lateral_on(int node, int branches_per, int leaves_per) {
    return build_lateral(branches_per, leaves_per) @ node;
}

// Laterals are distributed round-robin over the nodes; each lateral's
// subtree (branches, leaves) is local to the lateral's node.
Lateral* build_laterals(int n, int branches_per, int leaves_per, int base) {
    Lateral *head;
    Lateral *l;
    int i;
    head = NULL;
    for (i = 0; i < n; i = i + 1) {
        l = build_lateral_on((base + i) % num_nodes(), branches_per, leaves_per);
        l->next = head;
        head = l;
    }
    return head;
}

Feeder* build_feeder(int laterals, int branches_per, int leaves_per, int base) {
    Feeder *f;
    f = malloc(sizeof(Feeder));
    f->next = NULL;
    f->laterals = build_laterals(laterals, branches_per, leaves_per, base);
    f->d_p = 0.0;
    f->d_q = 0.0;
    return f;
}

double compute_leaf(Leaf *l, double theta_r, double theta_i) {
    double pr;
    double pi;
    double new_w;
    pr = l->pi_r;
    pi = l->pi_i;
    new_w = 1.0 / sqrt(theta_r * pr + theta_i * pi + 0.25);
    l->w = new_w;
    l->theta = new_w * 0.5;
    return new_w;
}

double compute_branch(Branch *br, double theta_r, double theta_i) {
    Leaf *l;
    double p;
    double q;
    double a;
    double b;
    double r;
    double x;
    p = 0.0;
    q = 0.0;
    l = br->leaves;
    while (l != NULL) {
        p = p + compute_leaf(l, theta_r, theta_i);
        q = q + 0.5;
        l = l->next;
    }
    r = br->r;
    x = br->x;
    a = r * r + x * x;
    b = sqrt(a + p * p * 0.000001);
    br->d_p = p + r * b;
    br->d_q = q + x * b;
    br->alpha = a / (b + 1.0);
    br->beta = b / (a + 1.0);
    return br->d_p + br->d_q;
}

double compute_lateral(Lateral local *lat, double theta_r, double theta_i) {
    Branch *br;
    double p;
    double q;
    double a;
    double b;
    double r;
    double x;
    p = 0.0;
    q = 0.0;
    br = lat->branches;
    while (br != NULL) {
        p = p + compute_branch(br, theta_r, theta_i);
        q = q + 0.25;
        br = br->next;
    }
    r = lat->r;
    x = lat->x;
    a = r * r + x * x;
    b = sqrt(a + p * p * 0.000001);
    lat->d_p = p + r * b;
    lat->d_q = q + x * b;
    lat->alpha = a / (b + 1.0);
    lat->beta = b / (a + 1.0);
    return lat->d_p + lat->d_q;
}

double compute_feeder(Feeder *f, double theta_r, double theta_i) {
    Lateral *lat;
    double p;
    double dp;
    // Each lateral computes at its owner node, in parallel.
    forall (lat = f->laterals; lat != NULL; lat = lat->next) {
        compute_lateral(lat, theta_r, theta_i) @ OWNER_OF(lat);
    }
    p = 0.0;
    lat = f->laterals;
    while (lat != NULL) {
        dp = lat->d_p;
        p = p + dp;
        lat = lat->next;
    }
    f->d_p = p;
    f->d_q = p * 0.5;
    return p;
}

double main(int feeders, int laterals, int branches, int leaves, int iters) {
    Root *root;
    Feeder *f;
    Feeder *fl;
    int i;
    int it;
    double total;
    double theta_r;
    double theta_i;

    root = malloc(sizeof(Root));
    root->theta_r = 0.8;
    root->theta_i = 0.16;
    root->feeders = NULL;
    // Feeder headers live on node 0; their laterals are spread
    // round-robin so all nodes carry an equal share of the tree.
    for (i = 0; i < feeders; i = i + 1) {
        f = build_feeder(laterals, branches, leaves, i * laterals);
        f->next = root->feeders;
        root->feeders = f;
    }

    total = 0.0;
    for (it = 0; it < iters; it = it + 1) {
        theta_r = root->theta_r;
        theta_i = root->theta_i;
        // Parallel over feeders (each of which foralls over its
        // laterals at their owner nodes).
        forall (fl = root->feeders; fl != NULL; fl = fl->next) {
            compute_feeder(fl, theta_r, theta_i);
        }
        // Gather demands and adjust prices.
        total = 0.0;
        fl = root->feeders;
        while (fl != NULL) {
            total = total + fl->d_p;
            fl = fl->next;
        }
        root->last_p = total;
        root->theta_r = root->theta_r - 0.00002 * (total - 10000.0);
        root->theta_i = root->theta_i - 0.00001 * (total - 10000.0);
    }
    return total;
}
"#;

/// Arguments for a preset size: `(feeders, laterals, branches, leaves,
/// iterations)`; the paper's full size is 10 × 20 × 5 × 10 = 10 000 leaves.
pub fn args(preset: crate::Preset) -> Vec<earth_sim::Value> {
    use earth_sim::Value::Int;
    match preset {
        crate::Preset::Test => vec![Int(2), Int(2), Int(2), Int(3), Int(2)],
        crate::Preset::Small => vec![Int(4), Int(5), Int(3), Int(5), Int(3)],
        crate::Preset::Full => vec![Int(10), Int(20), Int(5), Int(10), Int(5)],
    }
}
