//! # earth-olden — the Olden benchmark suite in EARTH-C
//!
//! The five pointer-intensive benchmarks the paper evaluates (Table II),
//! rewritten in the EARTH-C subset of [`earth_frontend`]:
//!
//! | benchmark | structure | parallelism | paper's main win |
//! |---|---|---|---|
//! | [`power`] | k-ary tree (feeders→laterals→branches→leaves) | `forall` over feeders `@OWNER_OF` | blocking |
//! | [`perimeter`] | quadtree with parent pointers | recursive calls `@OWNER_OF` | blocking |
//! | [`tsp`] | binary tree + circular tour lists | `{^ ... ^}` over subtrees | redundancy elim + pipelining |
//! | [`health`] | 4-way village tree + patient lists | `{^ ... ^}` over children | pipelining + redundancy elim |
//! | [`voronoi`] | binary point tree + hull lists | `{^ ... ^}` over subtrees | redundancy elim + blocking |
//!
//! Each module exposes its EARTH-C `SOURCE` and preset arguments; this
//! crate adds the build/run harness used by the experiment drivers: the
//! *sequential* build (pure C, all accesses local), the *simple* build
//! (EARTH compile without communication optimization) and the *optimized*
//! build (with the paper's communication optimization).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod health;
pub mod perimeter;
pub mod power;
pub mod tsp;
pub mod voronoi;

use earth_commopt::{optimize_program, CommOptConfig, OptReport};
use earth_ir::Program;
use earth_sim::{CodegenOptions, Machine, MachineConfig, RunResult, SimError, Value};

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Tiny inputs for unit tests.
    Test,
    /// Small inputs for quick experiments.
    Small,
    /// The evaluation size (scaled from the paper's Table II to keep
    /// simulation times reasonable; see DESIGN.md).
    Full,
}

/// A benchmark of the suite.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Name as used in the paper ("power", "perimeter", ...).
    pub name: &'static str,
    /// EARTH-C source text.
    pub source: &'static str,
    /// One-line description (Table II).
    pub description: &'static str,
    /// Preset arguments for the `main` entry point.
    pub args: fn(Preset) -> Vec<Value>,
}

/// All five benchmarks, in the paper's order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "power",
            source: power::SOURCE,
            description: "Power system optimization over a variable k-nary tree",
            args: power::args,
        },
        Benchmark {
            name: "tsp",
            source: tsp::SOURCE,
            description: "Sub-optimal traveling-salesperson tour (closest-point heuristic)",
            args: tsp::args,
        },
        Benchmark {
            name: "health",
            source: health::SOURCE,
            description: "Colombian health-care simulation over a 4-way tree",
            args: health::args,
        },
        Benchmark {
            name: "perimeter",
            source: perimeter::SOURCE,
            description: "Perimeter of a quad-tree encoded raster image",
            args: perimeter::args,
        },
        Benchmark {
            name: "voronoi",
            source: voronoi::SOURCE,
            description:
                "Divide-and-conquer diagram merge over a binary point tree (hull substitute)",
            args: voronoi::args,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

/// Which compiler pipeline to use for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Build {
    /// Pure sequential C: one node, every access local, no EARTH
    /// operations (the paper's "Sequential C" column).
    Sequential,
    /// EARTH compile without communication optimization (the paper's
    /// "simple" version).
    Simple,
    /// EARTH compile with communication optimization under the given
    /// configuration (the paper's "optimized" version).
    Optimized(CommOptConfig),
}

/// Compiles a benchmark under the chosen build, returning the IR and the
/// optimizer's report (empty for non-optimized builds).
///
/// # Panics
///
/// Panics if the embedded benchmark source fails to compile — that is a
/// bug in this crate, covered by tests.
pub fn build_ir(bench: &Benchmark, build: &Build) -> (Program, OptReport) {
    let mut prog = earth_frontend::compile(bench.source)
        .unwrap_or_else(|e| panic!("benchmark `{}` failed to compile: {e}", bench.name));
    let report = match build {
        Build::Sequential | Build::Simple => OptReport::default(),
        Build::Optimized(cfg) => optimize_program(&mut prog, cfg),
    };
    (prog, report)
}

/// Compiles and runs a benchmark.
///
/// # Errors
///
/// Propagates simulator errors (which would indicate a bug in the
/// pipeline; all benchmarks are expected to run cleanly).
pub fn run(
    bench: &Benchmark,
    build: &Build,
    preset: Preset,
    n_nodes: u16,
) -> Result<RunResult, SimError> {
    let (prog, _report) = build_ir(bench, build);
    let opts = CodegenOptions {
        force_local: matches!(build, Build::Sequential),
        ..CodegenOptions::default()
    };
    let compiled = earth_sim::compile(&prog, opts).map_err(|e| SimError {
        time_ns: 0,
        message: e.to_string(),
    })?;
    let entry = compiled.function_by_name("main").ok_or_else(|| SimError {
        time_ns: 0,
        message: "benchmark has no main".into(),
    })?;
    let nodes = if matches!(build, Build::Sequential) {
        1
    } else {
        n_nodes
    };
    let mut m = Machine::new(MachineConfig::with_nodes(nodes));
    m.run(&compiled, entry, &(bench.args)(preset))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every benchmark must produce the *same result* under all three
    /// builds and any node count — the optimizer must preserve semantics
    /// and the simulation must be placement-independent.
    #[test]
    fn all_builds_agree_on_results() {
        for bench in suite() {
            let seq = run(&bench, &Build::Sequential, Preset::Test, 1).unwrap();
            let simple1 = run(&bench, &Build::Simple, Preset::Test, 1).unwrap();
            let simple4 = run(&bench, &Build::Simple, Preset::Test, 4).unwrap();
            let opt4 = run(
                &bench,
                &Build::Optimized(CommOptConfig::default()),
                Preset::Test,
                4,
            )
            .unwrap();
            assert_eq!(seq.ret, simple1.ret, "{}: seq vs simple/1", bench.name);
            assert_eq!(seq.ret, simple4.ret, "{}: seq vs simple/4", bench.name);
            assert_eq!(seq.ret, opt4.ret, "{}: seq vs optimized/4", bench.name);
        }
    }

    /// The optimizer must reduce the dynamic communication count for every
    /// benchmark (the claim of Figure 10).
    #[test]
    fn optimization_reduces_communication() {
        for bench in suite() {
            let simple = run(&bench, &Build::Simple, Preset::Test, 4).unwrap();
            let opt = run(
                &bench,
                &Build::Optimized(CommOptConfig::default()),
                Preset::Test,
                4,
            )
            .unwrap();
            assert!(
                opt.stats.total_comm() < simple.stats.total_comm(),
                "{}: opt {} !< simple {}",
                bench.name,
                opt.stats.total_comm(),
                simple.stats.total_comm()
            );
        }
    }

    /// The optimizer fires at least one transformation on each benchmark.
    #[test]
    fn optimizer_fires_on_each_benchmark() {
        for bench in suite() {
            let (_prog, report) = build_ir(&bench, &Build::Optimized(CommOptConfig::default()));
            let t = report.total();
            assert!(
                t.pipelined_reads + t.blocked_spans > 0,
                "{}: optimizer did nothing",
                bench.name
            );
        }
    }

    /// Benchmarks scale: more nodes must not *increase* the simple
    /// version's wall time dramatically for the parallel benchmarks (a
    /// smoke test of the distribution strategies).
    #[test]
    fn parallel_speedup_smoke() {
        for bench in suite() {
            let one = run(&bench, &Build::Simple, Preset::Small, 1).unwrap();
            let eight = run(&bench, &Build::Simple, Preset::Small, 8).unwrap();
            assert_eq!(one.ret, eight.ret, "{}", bench.name);
            // At `Small` sizes some benchmarks are latency-bound (true
            // remote ops at 8 nodes vs pseudo-remote at 1), so this only
            // guards against pathological distribution; real speedup
            // curves are measured at `Full` size by the Table III harness.
            assert!(
                (eight.time_ns as f64) < 2.0 * one.time_ns as f64,
                "{}: 8 nodes much slower than 1 ({} vs {})",
                bench.name,
                eight.time_ns,
                one.time_ns
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("power").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(suite().len(), 5);
    }
}

#[cfg(test)]
mod golden {
    use super::*;

    /// Pinned Test-preset results. These catch accidental changes to the
    /// benchmark workloads themselves (RNG sequence, tree shapes,
    /// algorithms) — any intentional change must update them consciously.
    #[test]
    fn test_preset_results_are_pinned() {
        let expected = [
            ("power", "31.537492545350723"),
            ("tsp", "26065.187281843177"),
            ("health", "8"),
            ("perimeter", "64"),
            ("voronoi", "2051.568604596591"),
        ];
        for (name, want) in expected {
            let b = by_name(name).unwrap();
            let r = run(&b, &Build::Sequential, Preset::Test, 1).unwrap();
            assert_eq!(r.ret.to_string(), want, "{name}");
        }
    }
}
