//! The Olden `tsp` benchmark: a sub-optimal traveling-salesperson tour via
//! divide-and-conquer over a binary tree of cities (closest-point
//! heuristic).
//!
//! Cities (random points) are stored in a balanced binary tree whose top
//! levels are spread across the nodes. A tour for a subtree is built by
//! solving the two halves in parallel (`{^ ... ^}` at the owners) and
//! *merging*: the root city is spliced into the concatenation of the two
//! sub-tours at the position that minimizes added tour length — the merge
//! walks one tour while repeatedly reading coordinates of candidate cities,
//! which is where the paper reports redundant-communication elimination and
//! pipelining paying off.
//!
//! Tours are circular doubly-linked lists threaded through the tree nodes
//! (`prev` / `tnext`), as in Olden.

/// EARTH-C source of the benchmark.
pub const SOURCE: &str = r#"
struct City {
    City* left;
    City* right;
    City* prev;
    City* tnext;
    double x;
    double y;
    int sz;
};

// Builds a balanced tree of n cities with *block* distribution: the
// subtree gets the contiguous node range [lo, lo+span); each half of the
// tree recursively gets half the range, so once span reaches 1 the whole
// remaining subtree is local to one node and only the top log2(P) merges
// cross node boundaries (the paper's "best data distribution strategy").
City* build(int n, int lo, int span) {
    City *c;
    int nl;
    int nr;
    int lspan;
    int rspan;
    if (n == 0) { return NULL; }
    c = malloc(sizeof(City));
    c->x = (rand() % 100000);
    c->y = (rand() % 100000);
    c->x = c->x / 100.0;
    c->y = c->y / 100.0;
    c->sz = n;
    c->prev = NULL;
    c->tnext = NULL;
    nl = (n - 1) / 2;
    nr = n - 1 - nl;
    if (span <= 1) {
        lspan = 1;
        rspan = 1;
        if (nl > 0) { c->left = build(nl, lo, 1); } else { c->left = NULL; }
        if (nr > 0) { c->right = build(nr, lo, 1); } else { c->right = NULL; }
        return c;
    }
    lspan = (span + 1) / 2;
    rspan = span - lspan;
    if (nl > 0) {
        c->left = build_at(nl, lo, lspan);
    } else {
        c->left = NULL;
    }
    if (nr > 0) {
        c->right = build_at(nr, lo + lspan, rspan);
    } else {
        c->right = NULL;
    }
    return c;
}

City* build_at(int n, int lo, int span) {
    return build(n, lo, span) @ lo;
}

double dist(double ax, double ay, double bx, double by) {
    return sqrt((ax - bx) * (ax - bx) + (ay - by) * (ay - by));
}

// Splices city c into tour t (circular list) at the position after the
// tour city minimizing the added length among the first few candidates
// (the closest-point heuristic examines a bounded neighborhood, as in
// Olden; the tour stays sub-optimal by construction); returns the head.
City* splice(City *t, City *c) {
    int scanned;
    City *p;
    City *best;
    City *nxt;
    double bestcost;
    double cost;
    double cx;
    double cy;
    double px;
    double py;
    double nx2;
    double ny2;
    int first;
    if (t == NULL) {
        c->tnext = c;
        c->prev = c;
        return c;
    }
    best = t;
    bestcost = 0.0;
    first = 1;
    scanned = 0;
    p = t;
    do {
        scanned = scanned + 1;
        nxt = p->tnext;
        // Written naively, as in Olden: the coordinate fields are re-read
        // for every distance term; the communication optimizer merges the
        // redundant reads and pipelines the rest.
        cost = dist(p->x, p->y, c->x, c->y)
             + dist(c->x, c->y, nxt->x, nxt->y)
             - dist(p->x, p->y, nxt->x, nxt->y);
        if (first == 1) {
            bestcost = cost;
            best = p;
            first = 0;
        } else {
            if (cost < bestcost) {
                bestcost = cost;
                best = p;
            }
        }
        p = p->tnext;
    } while (p != t && scanned < 48);
    nxt = best->tnext;
    best->tnext = c;
    c->prev = best;
    c->tnext = nxt;
    nxt->prev = c;
    return t;
}

// Concatenates two circular tours (a and b non-NULL).
City* conquer(City *a, City *b) {
    City *alast;
    City *blast;
    if (a == NULL) { return b; }
    if (b == NULL) { return a; }
    alast = a->prev;
    blast = b->prev;
    alast->tnext = b;
    b->prev = alast;
    blast->tnext = a;
    a->prev = blast;
    return a;
}

// Builds a tour over the subtree rooted at c; returns the tour head.
City* tsp(City *c) {
    City *l;
    City *r;
    City *t;
    int n;
    if (c == NULL) { return NULL; }
    n = c->sz;
    if (n < 12) {
        // Small subtree: solve sequentially.
        t = tsp_seq(c);
        return t;
    }
    {^
        l = tsp_at(c->left);
        r = tsp_at(c->right);
    ^}
    t = conquer(l, r);
    t = splice(t, c);
    return t;
}

City* tsp_seq(City *c) {
    City *l;
    City *r;
    City *t;
    if (c == NULL) { return NULL; }
    l = tsp_seq(c->left);
    r = tsp_seq(c->right);
    t = conquer(l, r);
    t = splice(t, c);
    return t;
}

City* tsp_at(City *c) {
    if (c == NULL) { return NULL; }
    return tsp(c) @ OWNER_OF(c);
}

double tour_length(City *t) {
    City *p;
    double len;
    City *nxt;
    if (t == NULL) { return 0.0; }
    len = 0.0;
    p = t;
    do {
        nxt = p->tnext;
        len = len + dist(p->x, p->y, nxt->x, nxt->y);
        p = nxt;
    } while (p != t);
    return len;
}

double main(int n) {
    City *root;
    City *tour;
    root = build(n, 0, num_nodes());
    tour = tsp(root);
    return tour_length(tour);
}
"#;

/// Arguments for a preset size: `(cities,)`; the paper uses 32 768
/// cities.
pub fn args(preset: crate::Preset) -> Vec<earth_sim::Value> {
    use earth_sim::Value::Int;
    match preset {
        crate::Preset::Test => vec![Int(64)],
        crate::Preset::Small => vec![Int(256)],
        crate::Preset::Full => vec![Int(2048)],
    }
}
