//! The Olden `voronoi` benchmark — substituted workload.
//!
//! **Substitution note (see DESIGN.md):** Olden's `voronoi` computes a
//! Voronoi diagram with the Guibas–Stolfi quad-edge divide-and-conquer.
//! Reproducing the full quad-edge algebra adds a large amount of geometry
//! code without adding new *communication* behaviour; what matters for the
//! paper's evaluation is the access pattern of the merge phase: points in
//! a binary tree distributed across nodes, recursive divide-and-conquer
//! with parallel halves, and a merge that "walks along the convex hull of
//! the two sub-diagrams, alternating between them in an irregular fashion".
//!
//! We therefore implement divide-and-conquer planar convex hull over the
//! same data organization: random points in a binary tree (top levels
//! spread across nodes), hulls as circular linked lists, and a merge that
//! walks both sub-hulls alternately to find the two tangents — the same
//! irregular alternating remote-read pattern, which redundancy elimination
//! and blocking accelerate, as the paper reports for voronoi.

/// EARTH-C source of the benchmark.
pub const SOURCE: &str = r#"
struct Pt {
    Pt* left;
    Pt* right;
    Pt* hnext;
    Pt* hprev;
    double x;
    double y;
    int sz;
};

// Builds a balanced binary tree of n random points, sorted by x by
// construction: the tree is built over an implicit x-interval. Block
// distribution: the subtree owns the contiguous node range [lo, lo+span);
// once span reaches 1 the remaining subtree is entirely local.
Pt* build(int n, double x0, double x1, int lo, int span) {
    Pt *p;
    int nl;
    int nr;
    int lspan;
    int rspan;
    double xm;
    double jitter;
    if (n == 0) { return NULL; }
    p = malloc(sizeof(Pt));
    xm = (x0 + x1) / 2.0;
    jitter = (rand() % 1000);
    p->x = xm;
    p->y = jitter / 10.0;
    p->sz = n;
    p->hnext = NULL;
    p->hprev = NULL;
    nl = (n - 1) / 2;
    nr = n - 1 - nl;
    if (span <= 1) {
        if (nl > 0) { p->left = build(nl, x0, xm, lo, 1); } else { p->left = NULL; }
        if (nr > 0) { p->right = build(nr, xm, x1, lo, 1); } else { p->right = NULL; }
        return p;
    }
    lspan = (span + 1) / 2;
    rspan = span - lspan;
    if (nl > 0) {
        p->left = build_at(nl, x0, xm, lo, lspan);
    } else {
        p->left = NULL;
    }
    if (nr > 0) {
        p->right = build_at(nr, xm, x1, lo + lspan, rspan);
    } else {
        p->right = NULL;
    }
    return p;
}

Pt* build_at(int n, double x0, double x1, int lo, int span) {
    return build(n, x0, x1, lo, span) @ lo;
}

// Cross product (b - a) x (c - a): > 0 means c is left of a->b.
double cross(double ax, double ay, double bx, double by, double cx, double cy) {
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

// Inserts point p into the circular hull list after q.
void link_after(Pt *q, Pt *p) {
    Pt *n;
    n = q->hnext;
    q->hnext = p;
    p->hprev = q;
    p->hnext = n;
    n->hprev = p;
}

// The rightmost point of hull h (hulls keep their head at the leftmost
// point; walk to find the rightmost).
Pt* rightmost(Pt *h) {
    Pt *p;
    Pt *best;
    best = h;
    p = h->hnext;
    while (p != h) {
        // Naive: best->x is re-read every iteration; the optimizer reuses
        // the already-fetched value until `best` changes.
        if (p->x > best->x) {
            best = p;
        }
        p = p->hnext;
    }
    return best;
}

// Merge phase: walks the right side of hull a and the left side of hull
// b, alternating, to find the upper tangent (and by symmetry the lower),
// then splices the hulls. Simplified tangent walk over circular lists.
Pt* merge_hulls(Pt *a, Pt *b) {
    Pt *ra;
    Pt *lb;
    Pt *u1;
    Pt *u2;
    Pt *l1;
    Pt *l2;
    Pt *cand;
    int moved;
    int guard;
    double c;
    if (a == NULL) { return b; }
    if (b == NULL) { return a; }
    ra = rightmost(a);
    lb = b;
    // Upper tangent: move u1 backwards on a, u2 forwards on b while a
    // point lies above the tangent line.
    u1 = ra;
    u2 = lb;
    moved = 1;
    guard = 0;
    while (moved == 1 && guard < 10000) {
        moved = 0;
        guard = guard + 1;
        // Naive, as in Olden's merge walk: each tangent test re-reads the
        // endpoint coordinates; redundancy elimination fetches them once
        // per step.
        cand = u1->hprev;
        c = cross(u1->x, u1->y, u2->x, u2->y, cand->x, cand->y);
        if (c > 0.0) {
            u1 = cand;
            moved = 1;
        }
        cand = u2->hnext;
        c = cross(u1->x, u1->y, u2->x, u2->y, cand->x, cand->y);
        if (c > 0.0) {
            u2 = cand;
            moved = 1;
        }
    }
    // Lower tangent: symmetric.
    l1 = ra;
    l2 = lb;
    moved = 1;
    guard = 0;
    while (moved == 1 && guard < 10000) {
        moved = 0;
        guard = guard + 1;
        cand = l1->hnext;
        c = cross(l1->x, l1->y, l2->x, l2->y, cand->x, cand->y);
        if (c < 0.0) {
            l1 = cand;
            moved = 1;
        }
        cand = l2->hprev;
        c = cross(l1->x, l1->y, l2->x, l2->y, cand->x, cand->y);
        if (c < 0.0) {
            l2 = cand;
            moved = 1;
        }
    }
    // Splice: a-side from l1 around to u1, then b-side from u2 around to
    // l2, closing the loop.
    u1->hnext = u2;
    u2->hprev = u1;
    l2->hnext = l1;
    l1->hprev = l2;
    return a;
}

// Computes the hull of the subtree rooted at t (divide and conquer; the
// two halves run in parallel at their owners).
Pt* hull(Pt *t) {
    Pt *l;
    Pt *r;
    Pt *m;
    int n;
    if (t == NULL) { return NULL; }
    n = t->sz;
    if (n < 32) {
        return hull_seq(t);
    }
    {^
        l = hull_at(t->left);
        r = hull_at(t->right);
    ^}
    t->hnext = t;
    t->hprev = t;
    m = merge_hulls(l, t);
    m = merge_hulls(m, r);
    return m;
}

Pt* hull_seq(Pt *t) {
    Pt *l;
    Pt *r;
    Pt *m;
    if (t == NULL) { return NULL; }
    l = hull_seq(t->left);
    r = hull_seq(t->right);
    t->hnext = t;
    t->hprev = t;
    m = merge_hulls(l, t);
    m = merge_hulls(m, r);
    return m;
}

Pt* hull_at(Pt *t) {
    if (t == NULL) { return NULL; }
    return hull(t) @ OWNER_OF(t);
}

// Hull size and perimeter as the checkable result.
double main(int n) {
    Pt *root;
    Pt *h;
    Pt *p;
    Pt *nx2;
    double len;
    double dx;
    double dy;
    int count;
    root = build(n, 0.0, 1000.0, 0, num_nodes());
    h = hull(root);
    if (h == NULL) { return 0.0; }
    len = 0.0;
    count = 0;
    p = h;
    do {
        nx2 = p->hnext;
        dx = p->x - nx2->x;
        dy = p->y - nx2->y;
        len = len + sqrt(dx * dx + dy * dy);
        count = count + 1;
        p = nx2;
    } while (p != h && count < n + 2);
    return len + count;
}
"#;

/// Arguments for a preset size: `(points,)`; the paper uses 32 768
/// points.
pub fn args(preset: crate::Preset) -> Vec<earth_sim::Value> {
    use earth_sim::Value::Int;
    match preset {
        crate::Preset::Test => vec![Int(64)],
        crate::Preset::Small => vec![Int(512)],
        crate::Preset::Full => vec![Int(4096)],
    }
}
