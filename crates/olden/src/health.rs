//! The Olden `health` benchmark: discrete-time simulation of the Colombian
//! health-care system over a 4-way tree of villages.
//!
//! Each village has four child villages and a hospital with a bounded
//! number of personnel. At every time step patients are generated at the
//! villages, assessed, treated if personnel and capability allow, or passed
//! up to the parent village. The tree is distributed so only the top-level
//! children cross node boundaries (the paper: "the 4-way tree is evenly
//! distributed among the processors and only top-level tree nodes have
//! their children spread among different processors").
//!
//! The hot function `check_patients_inside` reproduces the paper's Figure
//! 11(c): the repeated reads of `village->hosp.free_personnel` and the
//! list-node fields are candidates for redundancy elimination and
//! pipelining.

/// EARTH-C source of the benchmark.
pub const SOURCE: &str = r#"
struct Hosp {
    int free_personnel;
    int num_treated;
};

struct Patient {
    Patient* link;
    int hosp_visits;
    int time;
    int time_left;
};

struct Cell {
    Cell* forward;
    Patient* patient;
};

struct Village {
    Village* child0;
    Village* child1;
    Village* child2;
    Village* child3;
    Village* parent;
    Cell* waiting;
    Cell* inside;
    Cell* up;
    Hosp hosp;
    int id;
    int level;
    int treated_total;
};

// Builds the subtree rooted at (level, id). For the top `spread` levels
// the construction migrates to the child's home node, so each subtree —
// villages, and later its patients and lists — is local to its owner
// ("only top-level tree nodes have their children spread among different
// processors").
Village* build_village(int level, Village *parent, int id, int spread) {
    Village *v;
    if (level == 0) { return NULL; }
    v = malloc(sizeof(Village));
    v->parent = parent;
    v->id = id;
    v->level = level;
    v->waiting = NULL;
    v->inside = NULL;
    v->up = NULL;
    v->hosp.free_personnel = level * 2;
    v->hosp.num_treated = 0;
    v->treated_total = 0;
    v->child0 = build_child(level - 1, v, id * 4 + 1, spread - 1);
    v->child1 = build_child(level - 1, v, id * 4 + 2, spread - 1);
    v->child2 = build_child(level - 1, v, id * 4 + 3, spread - 1);
    v->child3 = build_child(level - 1, v, id * 4 + 4, spread - 1);
    return v;
}

Village* build_child(int level, Village *parent, int id, int spread) {
    int target;
    if (level == 0) { return NULL; }
    if (spread >= 0) {
        target = id % num_nodes();
        return build_village(level, parent, id, spread) @ target;
    }
    return build_village(level, parent, id, spread);
}

// Prepends patient p to list head, returning the new head.
Cell* put_list(Cell *head, Patient *p) {
    Cell *c;
    c = malloc(sizeof(Cell));
    c->forward = head;
    c->patient = p;
    return c;
}

// Removes the cell holding p from the list, returning the new head.
Cell* remove_list(Cell *head, Patient *p) {
    Cell *cur;
    Cell *prev;
    if (head == NULL) { return NULL; }
    if (head->patient == p) { return head->forward; }
    prev = head;
    cur = head->forward;
    while (cur != NULL) {
        if (cur->patient == p) {
            prev->forward = cur->forward;
            return head;
        }
        prev = cur;
        cur = cur->forward;
    }
    return head;
}

// Figure 11(c): hospital treatment step. Decrements each inside patient's
// remaining time; discharges the finished ones, freeing personnel. The
// repeated reads of village->hosp.free_personnel inside the loop are the
// redundancy-elimination target the paper's extract shows (comm6).
void check_patients_inside(Village *village) {
    Cell *list;
    Cell *fwd;
    Patient *p;
    int tl;
    list = village->inside;
    while (list != NULL) {
        p = list->patient;
        fwd = list->forward;
        tl = p->time_left;
        tl = tl - 1;
        p->time_left = tl;
        if (tl == 0) {
            village->hosp.free_personnel = village->hosp.free_personnel + 1;
            village->inside = remove_list(village->inside, p);
            village->hosp.num_treated = village->hosp.num_treated + 1;
            village->treated_total = village->treated_total + 1;
        }
        list = fwd;
    }
}

// Assess the waiting patients: admit while personnel are free; patients
// the village cannot treat are bumped to the parent. Written naively —
// village->hosp.free_personnel and village->level are re-read every
// iteration; the communication optimizer hoists and reuses them.
void check_patients_waiting(Village *village) {
    Cell *list;
    Cell *fwd;
    Patient *p;
    list = village->waiting;
    while (list != NULL) {
        p = list->patient;
        fwd = list->forward;
        if (village->hosp.free_personnel > 0) {
            // 10% of cases exceed this village's capability and are
            // bumped to the parent (unless at the root).
            if (p->hosp_visits % 10 == 9 && village->level < 9) {
                village->waiting = remove_list(village->waiting, p);
                village->up = put_list(village->up, p);
            } else {
                village->hosp.free_personnel = village->hosp.free_personnel - 1;
                p->time_left = 3;
                p->hosp_visits = p->hosp_visits + 1;
                village->waiting = remove_list(village->waiting, p);
                village->inside = put_list(village->inside, p);
            }
        }
        list = fwd;
    }
}

// Patients bumped up from child villages arrive in the parent's waiting
// list.
void collect_up(Village *village, Village *child) {
    Cell *list;
    Cell *fwd;
    Patient *p;
    if (child == NULL) { return; }
    list = child->up;
    while (list != NULL) {
        fwd = list->forward;
        p = list->patient;
        village->waiting = put_list(village->waiting, p);
        list = fwd;
    }
    child->up = NULL;
}

// One simulation step over the subtree; runs at the village's owner.
void sim_step(Village local *village, int step) {
    Village *c0;
    Village *c1;
    Village *c2;
    Village *c3;
    Patient *p;
    int leaf;
    c0 = village->child0;
    c1 = village->child1;
    c2 = village->child2;
    c3 = village->child3;
    leaf = 1;
    if (c0 != NULL) {
        leaf = 0;
        {^
            sim_step_at(c0, step);
            sim_step_at(c1, step);
            sim_step_at(c2, step);
            sim_step_at(c3, step);
        ^}
        collect_up(village, c0);
        collect_up(village, c1);
        collect_up(village, c2);
        collect_up(village, c3);
    }
    check_patients_inside(village);
    check_patients_waiting(village);
    if (leaf == 1) {
        // Leaf villages admit a new patient every step (Olden's health
        // keeps hospitals saturated; waiting lists grow when personnel
        // run out).
        p = malloc(sizeof(Patient));
        p->hosp_visits = village->id + step;
        p->time = 0;
        p->time_left = 0;
        p->link = NULL;
        village->waiting = put_list(village->waiting, p);
    }
}

void sim_step_at(Village *v, int step) {
    if (v == NULL) { return; }
    sim_step(v, step) @ OWNER_OF(v);
}

// Total patients treated over the whole tree.
int total_treated(Village *v) {
    int t;
    if (v == NULL) { return 0; }
    t = v->treated_total;
    t = t + total_treated(v->child0);
    t = t + total_treated(v->child1);
    t = t + total_treated(v->child2);
    t = t + total_treated(v->child3);
    return t;
}

int main(int levels, int steps, int spread) {
    Village *root;
    int s;
    int result;
    root = build_village(levels, NULL, 0, spread);
    for (s = 0; s < steps; s = s + 1) {
        sim_step(root, s);
    }
    result = total_treated(root);
    return result;
}
"#;

/// Arguments for a preset size: `(levels, steps, spread-levels)`; the
/// paper uses a 4-level tree and 600 iterations.
pub fn args(preset: crate::Preset) -> Vec<earth_sim::Value> {
    use earth_sim::Value::Int;
    match preset {
        crate::Preset::Test => vec![Int(2), Int(6), Int(1)],
        crate::Preset::Small => vec![Int(3), Int(30), Int(2)],
        crate::Preset::Full => vec![Int(4), Int(200), Int(2)],
    }
}
