//! The Olden `perimeter` benchmark: perimeter of a quad-tree-encoded
//! raster image.
//!
//! A disk image over a `2^depth × 2^depth` grid is encoded as a quadtree
//! (colors: white / black / grey). The perimeter pass walks the tree
//! bottom-up; for each black leaf it finds the adjacent quadrants through
//! parent pointers (`north`, `south`, `east`, `west` neighbor searches) and
//! accumulates the exposed edge length — the `R_sum_adjacent` pattern of
//! the paper's Figure 11(b), where the optimizer blocks the reads of a
//! quad node's color and child pointers.
//!
//! The top two levels of the tree are spread round-robin across nodes;
//! the four top-level quadrants are processed in a parallel sequence at
//! their owners.

/// Quadrant encoding: 0 = nw, 1 = ne, 2 = sw, 3 = se.
/// Colors: 0 = white, 1 = black, 2 = grey.
pub const SOURCE: &str = r#"
struct Quad {
    Quad* nw;
    Quad* ne;
    Quad* sw;
    Quad* se;
    Quad* parent;
    int color;
    int childtype;
    int size;
};

// Does the square [x, x+sz) x [y, y+sz) lie fully inside / outside the
// disk of radius r centered at (c, c)? 1 = inside, 0 = outside, 2 = both.
int classify(int x, int y, int sz, int c, int r) {
    int dx0; int dy0; int dx1; int dy1;
    int far; int near;
    int inside; int outside;
    int corner;
    // Distance^2 of the farthest and nearest corners from the center.
    dx0 = x - c;
    dx1 = x + sz - c;
    dy0 = y - c;
    dy1 = y + sz - c;
    far = 0;
    corner = dx0 * dx0 + dy0 * dy0;
    if (corner > far) { far = corner; }
    corner = dx1 * dx1 + dy0 * dy0;
    if (corner > far) { far = corner; }
    corner = dx0 * dx0 + dy1 * dy1;
    if (corner > far) { far = corner; }
    corner = dx1 * dx1 + dy1 * dy1;
    if (corner > far) { far = corner; }
    near = 0;
    if (dx0 > 0) { near = near + dx0 * dx0; }
    if (dx1 < 0) { near = near + dx1 * dx1; }
    if (dy0 > 0) { near = near + dy0 * dy0; }
    if (dy1 < 0) { near = near + dy1 * dy1; }
    inside = 0;
    outside = 0;
    if (far <= r * r) { inside = 1; }
    if (near > r * r) { outside = 1; }
    if (inside == 1) { return 1; }
    if (outside == 1) { return 0; }
    return 2;
}

// Builds the quadtree with block distribution: the subtree owns the node
// range [lo, lo+span); each quadrant gets a quarter of the range and the
// construction migrates to the quadrant's home node, so whole subtrees
// are local once span reaches 1.
Quad* build(int x, int y, int sz, int c, int r, Quad *parent, int ct, int lo, int span) {
    Quad *q;
    int cls;
    int half;
    q = malloc(sizeof(Quad));
    q->parent = parent;
    q->childtype = ct;
    q->size = sz;
    q->nw = NULL;
    q->ne = NULL;
    q->sw = NULL;
    q->se = NULL;
    cls = classify(x, y, sz, c, r);
    if (cls == 2 && sz > 1) {
        half = sz / 2;
        q->color = 2;
        q->nw = build_at(x, y + half, half, c, r, q, 0, lo + (0 * span) / 4, span);
        q->ne = build_at(x + half, y + half, half, c, r, q, 1, lo + (1 * span) / 4, span);
        q->sw = build_at(x, y, half, c, r, q, 2, lo + (2 * span) / 4, span);
        q->se = build_at(x + half, y, half, c, r, q, 3, lo + (3 * span) / 4, span);
    } else {
        if (cls == 2) {
            // 1x1 mixed cell: treat as black.
            q->color = 1;
        } else {
            q->color = cls;
        }
    }
    return q;
}

Quad* build_at(int x, int y, int sz, int c, int r, Quad *parent, int ct, int lo, int span) {
    int cspan;
    cspan = span / 4;
    if (cspan < 1) { cspan = 1; }
    if (span > 1) {
        return build(x, y, sz, c, r, parent, ct, lo, cspan) @ lo;
    }
    return build(x, y, sz, c, r, parent, ct, lo, 1);
}

// Neighbor of q in the given direction (0=N, 1=E, 2=S, 3=W), possibly a
// larger (leaf) quadrant; NULL at the image border.
Quad* neighbor(Quad *q, int dir) {
    Quad *p;
    Quad *m;
    int ct;
    p = q->parent;
    if (p == NULL) { return NULL; }
    ct = q->childtype;
    if (dir == 0) {
        if (ct == 2) { return p->nw; }
        if (ct == 3) { return p->ne; }
        m = neighbor(p, 0);
        if (m == NULL) { return NULL; }
        if (m->color != 2) { return m; }
        if (ct == 0) { return m->sw; }
        return m->se;
    }
    if (dir == 2) {
        if (ct == 0) { return p->sw; }
        if (ct == 1) { return p->se; }
        m = neighbor(p, 2);
        if (m == NULL) { return NULL; }
        if (m->color != 2) { return m; }
        if (ct == 2) { return m->nw; }
        return m->ne;
    }
    if (dir == 1) {
        if (ct == 0) { return p->ne; }
        if (ct == 2) { return p->se; }
        m = neighbor(p, 1);
        if (m == NULL) { return NULL; }
        if (m->color != 2) { return m; }
        if (ct == 1) { return m->nw; }
        return m->sw;
    }
    if (ct == 1) { return p->nw; }
    if (ct == 3) { return p->sw; }
    m = neighbor(p, 3);
    if (m == NULL) { return NULL; }
    if (m->color != 2) { return m; }
    if (ct == 0) { return m->ne; }
    return m->se;
}

// Sum of the border length contributed by the side `dir` of subtree `q`
// against neighbouring quadrant `adj` (Figure 11(b)'s R_sum_adjacent,
// specialised: count black cells of q's side facing a white/outside area).
int sum_adjacent(Quad *adj, int q1, int q2, int size) {
    Quad *p1;
    Quad *p2;
    int x;
    int y;
    if (adj == NULL) { return size; }
    // Naive double read of the color field, exactly as in the paper's
    // Figure 11(b) extract (temp_110 / temp_112 both load bcomm.color).
    if (adj->color == 2) {
        if (q1 == 0) { p1 = adj->nw; }
        if (q1 == 1) { p1 = adj->ne; }
        if (q1 == 2) { p1 = adj->sw; }
        if (q1 == 3) { p1 = adj->se; }
        if (q2 == 0) { p2 = adj->nw; }
        if (q2 == 1) { p2 = adj->ne; }
        if (q2 == 2) { p2 = adj->sw; }
        if (q2 == 3) { p2 = adj->se; }
        x = sum_adjacent(p1, q1, q2, size / 2);
        y = sum_adjacent(p2, q1, q2, size / 2);
        return x + y;
    }
    if (adj->color == 0) { return size; }
    return 0;
}

int perimeter(Quad *q, int size) {
    int total;
    int a;
    int b;
    int c2;
    int d;
    Quad *m;
    if (q->color == 2) {
        {^
            a = perimeter_at(q->nw, size / 2);
            b = perimeter_at(q->ne, size / 2);
            c2 = perimeter_at(q->sw, size / 2);
            d = perimeter_at(q->se, size / 2);
        ^}
        return a + b + c2 + d;
    }
    if (q->color == 0) { return 0; }
    total = 0;
    // North side faces the sw/se quadrants of the north neighbor.
    m = neighbor(q, 0);
    total = total + sum_adjacent(m, 2, 3, size);
    m = neighbor(q, 2);
    total = total + sum_adjacent(m, 0, 1, size);
    m = neighbor(q, 1);
    total = total + sum_adjacent(m, 0, 2, size);
    m = neighbor(q, 3);
    total = total + sum_adjacent(m, 1, 3, size);
    return total;
}

int perimeter_at(Quad *q, int size) {
    if (q == NULL) { return 0; }
    return perimeter(q, size) @ OWNER_OF(q);
}

int main(int depth) {
    // depth parameter only; distribution follows num_nodes().
    Quad *root;
    int sz;
    int res;
    sz = 1;
    while (depth > 0) {
        sz = sz * 2;
        depth = depth - 1;
    }
    root = build(0, 0, sz, sz / 2, sz / 2 - 1, NULL, 4, 0, num_nodes());
    res = perimeter(root, sz);
    return res;
}
"#;

/// Arguments for a preset size: `(depth,)`; the paper uses maximum tree
/// depth 11.
pub fn args(preset: crate::Preset) -> Vec<earth_sim::Value> {
    use earth_sim::Value::Int;
    match preset {
        crate::Preset::Test => vec![Int(4)],
        crate::Preset::Small => vec![Int(6)],
        crate::Preset::Full => vec![Int(9)],
    }
}
