//! Parallel-soundness linter.
//!
//! EARTH-C's `forall` and `{^ ... ^}` (ParSeq) constructs *assert* that
//! their iterations/arms are independent; the compiler is allowed to run
//! them concurrently without further checking. This linter verifies the
//! assertion conservatively and classifies every parallel construct as
//! *provably independent* or *possibly racy*:
//!
//! | code     | meaning                                                       |
//! |----------|---------------------------------------------------------------|
//! | `PAR000` | per-construct verdict (note severity)                         |
//! | `PAR001` | heap write in a `forall` body may conflict across iterations  |
//! | `PAR002` | loop-carried stack dependence in a `forall` body              |
//! | `PAR003` | heap accesses of two ParSeq arms may conflict                 |
//! | `PAR004` | stack variable accessed conflictingly by two ParSeq arms      |
//!
//! Stack variables: a variable written inside a `forall` body is harmless
//! when every path writes it before reading it (it is privatizable per
//! iteration); an upward-exposed read of a written variable is a
//! loop-carried dependence. `shared` variables accessed only through the
//! atomic operations (`writeto`/`addto`/`valueof`) are exempt — the EARTH
//! runtime serializes them.
//!
//! Heap: any write to a region that another (or the same) access in a
//! concurrent iteration/arm may touch — per connection analysis
//! ([`Regions::connected`](earth_analysis::Regions)) with field overlap —
//! is reported, **except** writes through pointers freshly `malloc`ed on
//! every path of the same body/arm (iteration-private objects). Call
//! effects are included through the interprocedural summaries baked into
//! the read/write sets.

use earth_analysis::{FunctionAnalysis, ProgramAnalysis};
use earth_ir::{
    Basic, Diagnostic, FieldId, Function, Label, Operand, Place, Program, Rvalue, Stmt, StmtKind,
    VarId,
};
use std::collections::BTreeSet;

/// Which parallel construct a verdict concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelConstruct {
    /// A `forall` loop.
    Forall,
    /// A parallel statement sequence `{^ ... ^}`.
    ParSeq,
}

impl ParallelConstruct {
    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            ParallelConstruct::Forall => "forall",
            ParallelConstruct::ParSeq => "parallel sequence",
        }
    }
}

/// The linter's conclusion about one parallel construct.
#[derive(Debug, Clone)]
pub struct ConstructVerdict {
    /// Name of the enclosing function.
    pub func: String,
    /// Label of the `forall` or ParSeq statement.
    pub label: Label,
    /// Which construct.
    pub construct: ParallelConstruct,
    /// `true` when no conflicting access was found.
    pub independent: bool,
}

/// Everything the linter found.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// One verdict per parallel construct, in traversal order.
    pub verdicts: Vec<ConstructVerdict>,
    /// Verdict notes and race warnings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` when every construct is provably independent.
    pub fn all_independent(&self) -> bool {
        self.verdicts.iter().all(|v| v.independent)
    }
}

/// Lints every function of `prog` against a precomputed (cached)
/// whole-program `analysis` (which must have been computed for `prog` as
/// passed here).
pub fn lint_program_with(prog: &Program, analysis: &ProgramAnalysis) -> LintReport {
    let mut report = LintReport::default();
    for (fid, f) in prog.iter_functions() {
        let fr = lint_function(f, analysis.function(fid));
        report.verdicts.extend(fr.verdicts);
        report
            .diagnostics
            .extend(fr.diagnostics.into_iter().map(|d| d.in_func(&f.name)));
    }
    report
}

/// Thin convenience wrapper around [`lint_program_with`] that computes the
/// analysis internally. Prefer the `_with` form inside the pass-manager
/// pipeline, where the analysis is shared through the cache.
pub fn lint_program(prog: &Program) -> LintReport {
    lint_program_with(prog, &earth_analysis::analyze(prog))
}

/// Lints one function with precomputed analysis results.
pub fn lint_function(func: &Function, fa: &FunctionAnalysis) -> LintReport {
    let mut linter = Linter {
        func,
        fa,
        report: LintReport::default(),
    };
    func.body.walk(&mut |s| match &s.kind {
        StmtKind::Forall { body, .. } => linter.check_forall(s.label, body),
        StmtKind::ParSeq(arms) => linter.check_parseq(s.label, arms),
        _ => {}
    });
    linter.report
}

struct Linter<'a> {
    func: &'a Function,
    fa: &'a FunctionAnalysis,
    report: LintReport,
}

impl Linter<'_> {
    fn check_forall(&mut self, label: Label, body: &Stmt) {
        let mut warnings = Vec::new();
        let acc = StackAccess::of(body);

        // Stack: upward-exposed reads of written variables carry values
        // between iterations.
        for &v in &acc.plain_writes {
            if first_access(body, v) == VarState::ReadFirst {
                warnings.push(
                    Diagnostic::warning(
                        "PAR002",
                        format!(
                            "`{}` is read before it is written inside this forall body: \
                             iterations are not independent",
                            self.func.var(v).name
                        ),
                    )
                    .with_label(label, "forall here")
                    .with_note(
                        "a variable must be written before any read on every path to be \
                         privatizable per iteration",
                    ),
                );
            }
        }

        // Heap: a write in the body conflicts with any connected access in
        // another iteration — including the same statement re-executed.
        warnings.extend(self.heap_conflicts(
            label,
            body,
            body,
            "PAR001",
            "across forall iterations",
        ));

        self.finish(label, ParallelConstruct::Forall, warnings);
    }

    fn check_parseq(&mut self, label: Label, arms: &[Stmt]) {
        let mut warnings = Vec::new();
        let accs: Vec<StackAccess> = arms.iter().map(StackAccess::of).collect();
        for i in 0..arms.len() {
            for j in 0..arms.len() {
                if i == j {
                    continue;
                }
                // Stack: arm i writes, arm j touches (either order; the pair
                // (i, j) with i < j covers write-write once).
                for &v in &accs[i].plain_writes {
                    let other = &accs[j];
                    let ww = other.plain_writes.contains(&v);
                    if (ww && i < j) || other.plain_reads.contains(&v) {
                        warnings.push(
                            Diagnostic::warning(
                                "PAR004",
                                format!(
                                    "`{}` is written by one arm of this parallel sequence \
                                     and {} by another",
                                    self.func.var(v).name,
                                    if ww { "written" } else { "read" }
                                ),
                            )
                            .with_label(label, "parallel sequence here")
                            .with_label(arms[i].label, "written in this arm")
                            .with_label(arms[j].label, "conflicting access in this arm"),
                        );
                    }
                }
                // Heap: writes of arm i vs. accesses of arm j.
                warnings.extend(self.heap_conflicts(
                    label,
                    &arms[i],
                    &arms[j],
                    "PAR003",
                    "between arms of this parallel sequence",
                ));
            }
        }
        self.finish(label, ParallelConstruct::ParSeq, warnings);
    }

    /// Reports heap writes of `writer` that may conflict with heap accesses
    /// of `other` running concurrently (`writer` and `other` may be the
    /// same statement: a forall body racing with itself).
    fn heap_conflicts(
        &self,
        at: Label,
        writer: &Stmt,
        other: &Stmt,
        code: &str,
        how: &str,
    ) -> Vec<Diagnostic> {
        let w_rw = self.fa.rw.get(writer.label);
        let o_rw = self.fa.rw.get(other.label);
        let mut out = Vec::new();
        let mut reported: BTreeSet<VarId> = BTreeSet::new();
        for hw in &w_rw.heap_writes {
            if reported.contains(&hw.base) || self.fresh_private(writer, hw.base) {
                continue;
            }
            let conflict = o_rw
                .heap_reads
                .iter()
                .chain(o_rw.heap_writes.iter())
                .find(|ha| {
                    fields_overlap(hw.field, ha.field)
                        && self.fa.regions.connected(hw.base, ha.base)
                        && !self.fresh_private(other, ha.base)
                });
            if let Some(ha) = conflict {
                reported.insert(hw.base);
                out.push(
                    Diagnostic::warning(
                        code,
                        format!(
                            "heap write via `{}` may conflict with the access via `{}` {}",
                            self.func.var(hw.base).name,
                            self.func.var(ha.base).name,
                            how
                        ),
                    )
                    .with_label(at, "parallel construct here")
                    .with_note(format!(
                        "connection analysis cannot separate the objects reachable \
                         from `{}` and `{}`",
                        self.func.var(hw.base).name,
                        self.func.var(ha.base).name
                    )),
                );
            }
        }
        out
    }

    /// A pointer is iteration-private when every path of `scope` assigns it
    /// a fresh `malloc` before any use: objects it reaches cannot be shared
    /// with concurrent iterations or arms.
    fn fresh_private(&self, scope: &Stmt, v: VarId) -> bool {
        let mut writes = 0usize;
        let mut all_malloc = true;
        scope.walk(&mut |s| {
            if let StmtKind::Basic(b) = &s.kind {
                let written = match b {
                    Basic::Assign {
                        dst: Place::Var(d), ..
                    } => *d == v,
                    Basic::Call { dst: Some(d), .. } => *d == v,
                    Basic::BlkMov { buf, dir, .. } => {
                        *buf == v && matches!(dir, earth_ir::BlkDir::RemoteToLocal)
                    }
                    Basic::AtomicWrite { var, .. } | Basic::AtomicAdd { var, .. } => *var == v,
                    _ => false,
                };
                if written {
                    writes += 1;
                    if !matches!(
                        b,
                        Basic::Assign {
                            src: Rvalue::Malloc { .. },
                            ..
                        }
                    ) {
                        all_malloc = false;
                    }
                }
            }
        });
        writes > 0 && all_malloc && first_access(scope, v) == VarState::MustWrite
    }

    fn finish(&mut self, label: Label, construct: ParallelConstruct, warnings: Vec<Diagnostic>) {
        let independent = warnings.is_empty();
        let verdict = if independent {
            Diagnostic::note(
                "PAR000",
                format!(
                    "{} at {}: provably independent (no conflicting accesses found)",
                    construct.name(),
                    label
                ),
            )
        } else {
            Diagnostic::note(
                "PAR000",
                format!(
                    "{} at {}: possibly racy ({} potential conflict(s))",
                    construct.name(),
                    label,
                    warnings.len()
                ),
            )
        }
        .with_label(label, "parallel construct");
        self.report.diagnostics.push(verdict);
        self.report.diagnostics.extend(warnings);
        self.report.verdicts.push(ConstructVerdict {
            func: self.func.name.clone(),
            label,
            construct,
            independent,
        });
    }
}

fn fields_overlap(a: Option<FieldId>, b: Option<FieldId>) -> bool {
    match (a, b) {
        (None, _) | (_, None) => true,
        (Some(x), Some(y)) => x == y,
    }
}

/// Non-atomic stack accesses of a subtree. Atomic operations on `shared`
/// variables are serialized by the runtime and tracked separately.
#[derive(Debug, Default)]
struct StackAccess {
    plain_reads: BTreeSet<VarId>,
    plain_writes: BTreeSet<VarId>,
}

impl StackAccess {
    fn of(s: &Stmt) -> Self {
        let mut acc = StackAccess::default();
        s.walk(&mut |st| {
            match &st.kind {
                StmtKind::Basic(b) => acc.basic(b),
                StmtKind::If { cond, .. }
                | StmtKind::While { cond, .. }
                | StmtKind::DoWhile { cond, .. }
                | StmtKind::Forall { cond, .. } => {
                    for v in cond.vars() {
                        acc.plain_reads.insert(v);
                    }
                }
                StmtKind::Switch { scrut, .. } => acc.read(*scrut),
                _ => {}
            };
        });
        acc
    }

    fn read(&mut self, o: Operand) {
        if let Operand::Var(v) = o {
            self.plain_reads.insert(v);
        }
    }

    fn basic(&mut self, b: &Basic) {
        for o in b.operands() {
            self.read(o);
        }
        match b {
            Basic::Assign { dst, src } => {
                match dst {
                    Place::Var(v) => {
                        self.plain_writes.insert(*v);
                    }
                    Place::Mem(m) => {
                        self.plain_reads.insert(m.base());
                    }
                }
                match src {
                    Rvalue::Load(m) => {
                        self.plain_reads.insert(m.base());
                    }
                    // valueof(&sv) is atomic: not a plain access.
                    Rvalue::ValueOf(_) => {}
                    _ => {}
                }
            }
            Basic::Call { dst, at, .. } => {
                if let Some(d) = dst {
                    self.plain_writes.insert(*d);
                }
                if let Some(earth_ir::AtTarget::OwnerOf(v)) = at {
                    self.plain_reads.insert(*v);
                }
            }
            Basic::BlkMov { ptr, buf, dir, .. } => {
                self.plain_reads.insert(*ptr);
                match dir {
                    earth_ir::BlkDir::RemoteToLocal => {
                        self.plain_writes.insert(*buf);
                    }
                    earth_ir::BlkDir::LocalToRemote => {
                        self.plain_reads.insert(*buf);
                    }
                }
            }
            // writeto/addto are atomic: target excluded from plain sets
            // (their value operand is covered by `operands()` above).
            Basic::AtomicWrite { .. } | Basic::AtomicAdd { .. } => {}
            Basic::Return(_) => {}
        }
    }
}

/// Must-write-before-read state of one variable over a statement subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    /// The subtree does not touch the variable.
    Untouched,
    /// Every path through the subtree writes the variable before reading it.
    MustWrite,
    /// Some path writes first, no path reads first (others leave it alone).
    MayWrite,
    /// Some path may read the variable before any write.
    ReadFirst,
}

/// Sequential composition: what happens first along one path.
fn seq(a: VarState, b: VarState) -> VarState {
    match a {
        VarState::Untouched => b,
        VarState::MustWrite | VarState::ReadFirst => a,
        VarState::MayWrite => match b {
            // The non-writing path falls through to b's first access.
            VarState::ReadFirst => VarState::ReadFirst,
            VarState::MustWrite => VarState::MustWrite,
            _ => VarState::MayWrite,
        },
    }
}

/// Branch join.
fn join(a: VarState, b: VarState) -> VarState {
    use VarState::*;
    match (a, b) {
        (ReadFirst, _) | (_, ReadFirst) => ReadFirst,
        (MustWrite, MustWrite) => MustWrite,
        (Untouched, Untouched) => Untouched,
        _ => MayWrite,
    }
}

/// May the subtree read `v` before writing it (state over the tree)?
fn first_access(s: &Stmt, v: VarId) -> VarState {
    match &s.kind {
        StmtKind::Basic(b) => {
            let mut acc = StackAccess::default();
            acc.basic(b);
            // Reads happen before the write within one three-address stmt.
            if acc.plain_reads.contains(&v) {
                VarState::ReadFirst
            } else if acc.plain_writes.contains(&v) {
                VarState::MustWrite
            } else {
                VarState::Untouched
            }
        }
        StmtKind::Seq(ss) => ss
            .iter()
            .fold(VarState::Untouched, |st, c| seq(st, first_access(c, v))),
        StmtKind::ParSeq(ss) => ss
            .iter()
            .map(|c| first_access(c, v))
            .fold(VarState::Untouched, join),
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            if cond.vars().any(|cv| cv == v) {
                return VarState::ReadFirst;
            }
            join(first_access(then_s, v), first_access(else_s, v))
        }
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => {
            if scrut.as_var() == Some(v) {
                return VarState::ReadFirst;
            }
            cases
                .iter()
                .map(|(_, c)| first_access(c, v))
                .fold(first_access(default, v), join)
        }
        StmtKind::While { cond, body } => {
            if cond.vars().any(|cv| cv == v) {
                return VarState::ReadFirst;
            }
            // Zero-trip possibility demotes a guaranteed write.
            match first_access(body, v) {
                VarState::MustWrite | VarState::MayWrite => VarState::MayWrite,
                other => other,
            }
        }
        StmtKind::DoWhile { body, cond } => {
            let b = first_access(body, v);
            if b == VarState::Untouched && cond.vars().any(|cv| cv == v) {
                VarState::ReadFirst
            } else if b == VarState::MustWrite {
                b
            } else if b == VarState::MayWrite && cond.vars().any(|cv| cv == v) {
                VarState::ReadFirst
            } else {
                b
            }
        }
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => {
            let st = first_access(init, v);
            if st == VarState::ReadFirst || st == VarState::MustWrite {
                return st;
            }
            if cond.vars().any(|cv| cv == v) {
                return VarState::ReadFirst;
            }
            let inner = join(first_access(body, v), first_access(step, v));
            match seq(st, inner) {
                VarState::MustWrite => VarState::MayWrite, // zero-trip
                other => other,
            }
        }
    }
}
