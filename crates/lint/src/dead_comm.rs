//! Dead-communication checker.
//!
//! Runs over **post-optimization** IR and flags split-phase fetches whose
//! results are provably wasted. The optimizer only issues a communication
//! temporary to cover at least one original access, so either finding in
//! optimizer output indicates a selection/transformation bug; on
//! hand-edited programs they are genuine waste:
//!
//! | code     | meaning                                                    |
//! |----------|------------------------------------------------------------|
//! | `DCM001` | communication result is never used                         |
//! | `DCM002` | duplicate communication on an already-synced handle        |
//!
//! `DCM002` is deliberately confined to one maximal straight-line run of
//! basic statements inside a single `Seq`: a comm temporary re-assigned in
//! the next loop iteration (the pipelining pattern, where the preheader
//! issue and the in-loop re-issue are in different runs) is *not* a
//! duplicate — the previous value was consumed by the iteration in between.

use earth_ir::{
    Basic, Diagnostic, Function, Label, Place, Program, Rvalue, Stmt, StmtKind, VarId, VarOrigin,
};
use std::collections::{BTreeMap, BTreeSet};

/// Variables a basic statement reads (operands, dereference bases, blkmov
/// endpoints, call/atomic inputs, owner anchors).
fn reads_of(b: &Basic) -> Vec<VarId> {
    let mut out: Vec<VarId> = b.operands().iter().filter_map(|o| o.as_var()).collect();
    match b {
        Basic::Assign { dst, src } => {
            if let Place::Mem(m) = dst {
                out.push(m.base());
            }
            match src {
                Rvalue::Load(m) => out.push(m.base()),
                Rvalue::ValueOf(v) => out.push(*v),
                _ => {}
            }
        }
        Basic::Call {
            at: Some(earth_ir::AtTarget::OwnerOf(v)),
            ..
        } => out.push(*v),
        Basic::BlkMov { ptr, buf, .. } => {
            out.push(*ptr);
            out.push(*buf);
        }
        Basic::AtomicAdd { var, .. } => out.push(*var),
        _ => {}
    }
    out
}

/// The communication temporary this statement (re)fetches into, if any.
fn comm_dst(b: &Basic, f: &Function) -> Option<VarId> {
    let dst = match b {
        Basic::Assign {
            dst: Place::Var(v), ..
        } => *v,
        Basic::Call { dst: Some(v), .. } => *v,
        _ => return None,
    };
    (f.var(dst).origin == VarOrigin::CommTemp).then_some(dst)
}

/// Checks one function; diagnostics carry the labels of the offending
/// statements.
pub fn check_function(f: &Function) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // DCM001 — a comm temporary assigned somewhere but read nowhere.
    let mut read: BTreeSet<VarId> = BTreeSet::new();
    let mut assigned: BTreeMap<VarId, Label> = BTreeMap::new();
    f.body.walk(&mut |s: &Stmt| match &s.kind {
        StmtKind::Basic(b) => {
            read.extend(reads_of(b));
            if let Some(v) = comm_dst(b, f) {
                assigned.entry(v).or_insert(s.label);
            }
        }
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::DoWhile { cond, .. } => read.extend(cond.vars()),
        StmtKind::Switch { scrut, .. } => read.extend(scrut.as_var()),
        _ => {}
    });
    for (v, label) in &assigned {
        if !read.contains(v) {
            diags.push(
                Diagnostic::error(
                    "DCM001",
                    format!(
                        "communication result `{}` is fetched but never used",
                        f.var(*v).name
                    ),
                )
                .with_label(*label, "dead fetch issued here")
                .with_note("the split-phase read (and its sync) is pure waste"),
            );
        }
    }

    // DCM002 — duplicate fetch into an unconsumed handle, per straight-line
    // run.
    scan_runs(&f.body, f, &mut diags);
    diags
}

/// Walks the tree; inside each `Seq`, scans maximal runs of basic
/// statements for re-fetches into an unconsumed comm temporary.
fn scan_runs(s: &Stmt, f: &Function, diags: &mut Vec<Diagnostic>) {
    match &s.kind {
        StmtKind::Seq(ss) => {
            let mut pending: BTreeMap<VarId, Label> = BTreeMap::new();
            for c in ss {
                if let StmtKind::Basic(b) = &c.kind {
                    for r in reads_of(b) {
                        pending.remove(&r);
                    }
                    if let Some(v) = comm_dst(b, f) {
                        if let Some(prev) = pending.insert(v, c.label) {
                            diags.push(
                                Diagnostic::error(
                                    "DCM002",
                                    format!(
                                        "communication handle `{}` re-fetched while the \
                                         previous fetch was never consumed",
                                        f.var(v).name
                                    ),
                                )
                                .with_label(prev, "first fetch (never consumed)")
                                .with_label(c.label, "duplicate fetch here")
                                .with_note("the first sync on this handle was wasted"),
                            );
                        }
                    }
                } else {
                    // Control flow ends the straight-line run.
                    pending.clear();
                    scan_runs(c, f, diags);
                }
            }
        }
        StmtKind::Basic(_) => {}
        StmtKind::If { then_s, else_s, .. } => {
            scan_runs(then_s, f, diags);
            scan_runs(else_s, f, diags);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (_, c) in cases {
                scan_runs(c, f, diags);
            }
            scan_runs(default, f, diags);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            scan_runs(body, f, diags);
        }
        StmtKind::ParSeq(ss) => {
            for c in ss {
                scan_runs(c, f, diags);
            }
        }
        StmtKind::Forall {
            init, step, body, ..
        } => {
            scan_runs(init, f, diags);
            scan_runs(step, f, diags);
            scan_runs(body, f, diags);
        }
    }
}

/// Checks every function of a (post-optimization) program.
pub fn check_program(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (_, f) in prog.iter_functions() {
        out.extend(check_function(f).into_iter().map(|d| d.in_func(&f.name)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_commopt::{optimize_program, CommOptConfig};
    use earth_ir::{pretty, FieldId, MemRef, Operand};

    const DISTANCE: &str = r#"
        struct Point { double x; double y; };
        double distance(Point *p) {
            double d;
            d = sqrt(p->x * p->x + p->y * p->y);
            return d;
        }
    "#;

    /// The optimizer's own output is dead-communication free.
    #[test]
    fn optimizer_output_is_clean() {
        let mut prog = earth_frontend::compile(DISTANCE).unwrap();
        optimize_program(&mut prog, &CommOptConfig::default());
        assert!(check_program(&prog).is_empty());
    }

    /// Hand-deleting the use of a comm temporary leaves a dead fetch.
    #[test]
    fn unused_fetch_is_dcm001() {
        let mut prog = earth_frontend::compile(DISTANCE).unwrap();
        optimize_program(&mut prog, &CommOptConfig::default());
        let fid = prog.function_by_name("distance").unwrap();
        let mut f = prog.function(fid).clone();
        // Rewrite every *use* of comm1 to use comm2 instead: comm1's fetch
        // is now dead.
        let comm1 = f.var_by_name("comm1").unwrap();
        let comm2 = f.var_by_name("comm2").unwrap();
        let redirect = |o: &mut Operand| {
            if *o == Operand::Var(comm1) {
                *o = Operand::Var(comm2);
            }
        };
        f.body.walk_mut(&mut |s: &mut Stmt| {
            if let StmtKind::Basic(Basic::Assign { dst, src }) = &mut s.kind {
                if *dst == Place::Var(comm1) {
                    return; // keep the fetch itself
                }
                match src {
                    Rvalue::Use(a) | Rvalue::Unary(_, a) => redirect(a),
                    Rvalue::Binary(_, a, b) => {
                        redirect(a);
                        redirect(b);
                    }
                    Rvalue::Builtin { args, .. } => args.iter_mut().for_each(redirect),
                    _ => {}
                }
            }
        });
        let diags = check_function(&f);
        assert_eq!(
            diags.len(),
            1,
            "{}",
            pretty::print_function_default(&prog, fid)
        );
        assert_eq!(diags[0].code, "DCM001");
        assert!(diags[0].message.contains("comm1"), "{}", diags[0].message);
    }

    /// Re-fetching into an unconsumed handle inside one straight-line run
    /// is DCM002.
    #[test]
    fn duplicate_fetch_is_dcm002() {
        let mut prog = earth_frontend::compile(DISTANCE).unwrap();
        optimize_program(&mut prog, &CommOptConfig::default());
        let fid = prog.function_by_name("distance").unwrap();
        let mut f = prog.function(fid).clone();
        let comm1 = f.var_by_name("comm1").unwrap();
        let p = f.var_by_name("p").unwrap();
        // Duplicate the fetch right after the original one.
        let mut fetch_label = None;
        f.body.walk(&mut |s: &Stmt| {
            if let StmtKind::Basic(Basic::Assign { dst, .. }) = &s.kind {
                if *dst == Place::Var(comm1) && fetch_label.is_none() {
                    fetch_label = Some(s.label);
                }
            }
        });
        let fetch_label = fetch_label.expect("comm1 fetch");
        let dup = Stmt {
            label: f.fresh_label(),
            kind: StmtKind::Basic(Basic::Assign {
                dst: Place::Var(comm1),
                src: Rvalue::Load(MemRef::Deref {
                    base: p,
                    field: FieldId(0),
                }),
            }),
        };
        f.body.walk_mut(&mut |s: &mut Stmt| {
            if let StmtKind::Seq(ss) = &mut s.kind {
                if let Some(i) = ss.iter().position(|c| c.label == fetch_label) {
                    ss.insert(i + 1, dup.clone());
                }
            }
        });
        let diags = check_function(&f);
        assert!(
            diags.iter().any(|d| d.code == "DCM002"),
            "{:?}",
            diags.iter().map(|d| &d.code).collect::<Vec<_>>()
        );
    }

    /// The loop-pipelining pattern (preheader fetch + in-loop re-fetch with
    /// a consuming use in between) is not flagged: the fetches live in
    /// different straight-line runs.
    #[test]
    fn loop_pipelining_is_not_a_duplicate() {
        let mut prog = earth_frontend::compile(
            r#"
            struct N { N* next; double v; };
            double sum(N *head) {
                N *p;
                double acc;
                acc = 0.0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        )
        .unwrap();
        optimize_program(&mut prog, &CommOptConfig::default());
        assert!(
            check_program(&prog).is_empty(),
            "{}",
            pretty::print_program(&prog)
        );
    }
}
