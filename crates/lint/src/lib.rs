//! # earth-lint — translation validator and parallel-soundness linter
//!
//! Static checks layered on top of the communication-optimization pipeline
//! of the Zhu & Hendren (PLDI 1998) reproduction:
//!
//! * [`verify`] — the **placement translation validator**: replays
//!   communication selection for every function and independently
//!   re-derives, from the pre-optimization IR and the
//!   [`MotionLog`](earth_commopt::MotionLog), that no statement between a
//!   moved operation's new and original placement invalidates it
//!   (diagnostic codes `PLC001`–`PLC005`), and that every
//!   probability-justified motion of prob-alias mode rests on a
//!   re-derivable induction and binary-safe window (`ALP001`–`ALP003`),
//!   and that every escape-analysis locality upgrade of `--escape on`
//!   re-derives from a fresh whole-program escape/affinity run on the
//!   pre-optimization IR (`ESC001`–`ESC003`);
//! * [`races`] — the **parallel-soundness linter**: classifies every
//!   `forall` and parallel sequence as *provably independent* or *possibly
//!   racy* (codes `PAR000`–`PAR004`);
//! * [`dead_comm`] — the **dead-communication checker**: runs on
//!   *post-optimization* IR and flags split-phase fetches whose results
//!   are never consumed (`DCM001`–`DCM002`).
//!
//! Both produce [`earth_ir::Diagnostic`]s, renderable as pretty terminal
//! output or machine-readable JSON.
//!
//! # Examples
//!
//! ```
//! let prog = earth_frontend::compile(r#"
//!     struct Point { double x; double y; };
//!     double distance(Point *p) {
//!         double d;
//!         d = sqrt(p->x * p->x + p->y * p->y);
//!         return d;
//!     }
//! "#).unwrap();
//! let cfg = earth_commopt::CommOptConfig::default();
//! // The optimizer's own motions validate cleanly...
//! assert!(earth_lint::verify_program(&prog, &cfg).is_empty());
//! // ... and a sequential function has no parallel constructs to lint.
//! assert!(earth_lint::lint_program(&prog).verdicts.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dead_comm;
pub mod races;
pub mod verify;

pub use races::{
    lint_function, lint_program, lint_program_with, ConstructVerdict, LintReport, ParallelConstruct,
};
pub use verify::{verify_escapes, verify_motions};

use earth_analysis::{EscapeAnalysis, ProbFacts, ProgramAnalysis};
use earth_commopt::{
    analyze_placement, analyze_placement_with, select, select_with, AliasMode, CommOptConfig,
    EscapeMode, FuncProfile,
};
use earth_ir::{Diagnostic, Program};

/// Every diagnostic code a checker in this crate can emit. Cross-checked
/// against the [`earth_ir::rules`] registry by the validator test suite,
/// so `earthcc lint --explain` can never lack an entry.
pub const EMITTED_CODES: &[&str] = &[
    "ALP001", "ALP002", "ALP003", "DCM001", "DCM002", "ESC001", "ESC002", "ESC003", "PAR000",
    "PAR001", "PAR002", "PAR003", "PAR004", "PLC001", "PLC002", "PLC003", "PLC004", "PLC005",
];

/// Replays communication selection for every function of the
/// **unoptimized** `prog` against a precomputed (cached) `analysis` and
/// validates the resulting motion logs.
///
/// Returns every violation found; an empty vector certifies that all the
/// motions the optimizer would perform under `cfg` are translation-safe.
/// `analysis` must have been computed for `prog` as it is passed here.
pub fn verify_program_with(
    prog: &Program,
    cfg: &CommOptConfig,
    analysis: &ProgramAnalysis,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Independent re-derivation for `--escape on`: a fresh whole-program
    // escape/affinity run on the pre-optimization IR, never the
    // optimizer's own instance.
    let escape = match cfg.escape {
        EscapeMode::Off => None,
        EscapeMode::On => Some(EscapeAnalysis::compute(prog, &analysis.summaries)),
    };
    for (fid, f) in prog.iter_functions() {
        let fa = analysis.function(fid);
        // `select` adds temporaries to its function; the body (and thus
        // every original label) is untouched until `apply_plan`.
        let mut func = f.clone();
        let escapes = match &escape {
            Some(esc) => esc.apply(fid, &mut func),
            None => Vec::new(),
        };
        let plan = match cfg.alias {
            AliasMode::Binary => {
                let placement = analyze_placement(&func, fa, &cfg.freq);
                select(prog, &mut func, fa, &placement, cfg)
            }
            AliasMode::Prob => {
                // Replay with the same heuristic facts the optimizer used
                // (the replay is profile-less, matching `verify_program`'s
                // existing contract), so the motion log being validated is
                // the one prob-alias mode actually produces.
                let facts = ProbFacts::compute(&func, fa, None);
                let placement = analyze_placement_with(
                    &func,
                    fa,
                    &cfg.freq,
                    None::<&FuncProfile>,
                    Some(&facts),
                );
                select_with(prog, &mut func, fa, &placement, cfg, None, Some(&facts))
            }
        };
        out.extend(
            verify::verify_motions(&func, fa, &plan.motion)
                .into_iter()
                .map(|d| d.in_func(&f.name)),
        );
        if let Some(esc) = &escape {
            out.extend(
                verify::verify_escapes(prog, fid, &escapes, esc)
                    .into_iter()
                    .map(|d| d.in_func(&f.name)),
            );
        }
    }
    out
}

/// Convenience wrapper around [`verify_program_with`] that computes the
/// whole-program analysis itself. Prefer the `_with` form inside the
/// pass-manager pipeline, where the analysis is shared through the cache.
pub fn verify_program(prog: &Program, cfg: &CommOptConfig) -> Vec<Diagnostic> {
    verify_program_with(prog, cfg, &earth_analysis::analyze(prog))
}
