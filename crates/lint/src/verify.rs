//! Placement translation validator.
//!
//! Given the **pre-optimization** function, its analysis results, and the
//! [`MotionLog`] selection produced, this module independently re-derives the
//! safety of every motion. The transformer keeps original statement labels,
//! so the log's `from_labels`/`to_label` identify statements of the
//! unoptimized body.
//!
//! For every motion the validator computes the *window*: the set of basic
//! statements that may execute between the new placement point and the
//! original access sites (for read motions) or between the original stores
//! and the delayed flush (for block write-backs). Statements whose accesses
//! were themselves rewritten by the plan are exempt — after transformation
//! they touch only local temporaries and buffers. Every other statement in
//! the window must neither redefine the base pointer nor access the remote
//! region in a conflicting way:
//!
//! | code     | meaning                                                      |
//! |----------|--------------------------------------------------------------|
//! | `PLC001` | base pointer redefined between a read's issue and its use    |
//! | `PLC002` | connected region written between a read's issue and its use  |
//! | `PLC003` | base pointer redefined before a buffered write-back flushed  |
//! | `PLC004` | connected region accessed while writes were still buffered   |
//! | `PLC005` | malformed motion entry (unknown or empty label sets)         |
//!
//! Motions carrying a probabilistic justification (prob-alias mode's
//! induction relaxation) are additionally checked against the invariant
//! that **probabilities weight cost, never safety**: the claimed induction
//! is re-derived by running the recognizer on the pre-optimization body,
//! and a justified motion whose window the *binary* rules reject is
//! hard-rejected no matter how favourable the probability:
//!
//! | code     | meaning                                                      |
//! |----------|--------------------------------------------------------------|
//! | `ALP001` | justification names an induction the recognizer cannot re-derive |
//! | `ALP002` | probability-justified motion with a binary-detectable conflict in its window |
//! | `ALP003` | justification probability outside `[0, 1]`                   |
//!
//! Escape-upgrade justifications (`--escape on`) are re-derived by
//! [`verify_escapes`] against a fresh whole-program escape/affinity run on
//! the pre-optimization IR:
//!
//! | code     | meaning                                                      |
//! |----------|--------------------------------------------------------------|
//! | `ESC001` | escape justification the analysis cannot re-derive           |
//! | `ESC002` | demoted access reachable from a shared region                |
//! | `ESC003` | owner-confined claim with mismatched owner binding           |
//!
//! The window computation walks the structured statement tree in execution
//! order. Loops already crossed by an active window contribute their whole
//! subtree (a later iteration may execute any of it between issue and use);
//! branches of a conditional are pruned path-sensitively (a branch that
//! contains no covered access and leads to no later one cannot lie on an
//! issue-to-use path); `ParSeq` arms run concurrently with an active window
//! and are included wholesale.

use earth_analysis::{
    affinity, find_pointer_inductions, AccessKind, EscapeAnalysis, EscapeJustification,
    EscapeVerdict, FunctionAnalysis, PointerInduction,
};
use earth_commopt::{Motion, MotionKind, MotionLog, ProbJustification};
use earth_ir::{Diagnostic, FuncId, Function, Label, Program, Stmt, StmtKind};
use std::collections::BTreeSet;

/// Validates every motion in `log` against the pre-optimization `func`.
///
/// Returns one diagnostic per violation; an empty vector means every motion
/// has been independently re-derived as safe.
pub fn verify_motions(func: &Function, fa: &FunctionAnalysis, log: &MotionLog) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let valid: BTreeSet<Label> = func.body.labels().into_iter().collect();
    // Labels rewritten by the plan: after transformation these statements
    // access only communication temporaries and block buffers.
    let rewritten: BTreeSet<Label> = log
        .iter()
        .flat_map(|m| m.from_labels.iter().copied())
        .collect();
    // Independent re-derivation of every induction claim: recognized on
    // the pre-optimization body, lazily, only if some motion is justified.
    let inductions: Vec<PointerInduction> = if log.iter().any(|m| m.justification.is_some()) {
        find_pointer_inductions(func, fa)
    } else {
        Vec::new()
    };

    for m in log {
        if let Some(j) = &m.justification {
            check_justification(func, &inductions, m, j, &mut diags);
        }
        if m.from_labels.is_empty()
            || !valid.contains(&m.to_label)
            || m.from_labels.iter().any(|l| !valid.contains(l))
        {
            diags.push(
                Diagnostic::error(
                    "PLC005",
                    format!("malformed motion: {} (unknown or empty labels)", m),
                )
                .with_label(m.to_label, "anchor of this motion"),
            );
            continue;
        }
        let window = match m.kind {
            MotionKind::PipelinedRead | MotionKind::RedundantReuse | MotionKind::BlockRead => {
                window_labels(
                    &func.body,
                    &[m.to_label].into(),
                    m.before,
                    &m.from_labels,
                    false,
                )
            }
            MotionKind::BlockWriteback => window_labels(
                &func.body,
                &m.from_labels,
                false,
                &[m.to_label].into(),
                m.before,
            ),
        };
        let before = diags.len();
        for &l in window.difference(&rewritten) {
            check_label(func, fa, m, l, &mut diags);
        }
        if m.justification.is_some() && diags.len() > before {
            // The binary rules rejected this window: the probability that
            // unlocked the motion cannot override them.
            diags.push(
                Diagnostic::error(
                    "ALP002",
                    format!(
                        "probability-justified motion for `{}` has a conflict in its \
                         window that the binary rules detect; probabilities may weight \
                         cost, never safety",
                        func.var(m.base).name
                    ),
                )
                .with_label(m.to_label, "motion anchored here")
                .with_note(format!("motion: {m}")),
            );
        }
    }
    diags
}

/// Independently re-derives every escape-upgrade justification recorded
/// for function `fid` against the **pre-optimization** program (`ESC`
/// codes).
///
/// `rederived` must be the whole-program escape analysis re-computed from
/// the unoptimized `prog` — never the optimizer's own instance. The checks
/// are layered so each failure mode gets its own code:
///
/// * `ESC003` — an owner-confined parameter claim whose recorded index
///   does not name the claimed variable, or whose owner-binding rule does
///   not re-derive at every call site;
/// * `ESC002` — a node-local claim whose heap region the re-derived
///   region analysis finds tainted (shared);
/// * `ESC001` — any other claim the re-run does not reproduce exactly
///   (variable, verdict, and parameter evidence all have to match).
pub fn verify_escapes(
    prog: &Program,
    fid: FuncId,
    claims: &[EscapeJustification],
    rederived: &EscapeAnalysis,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let func = prog.function(fid);
    for c in claims {
        let before = diags.len();
        if c.verdict == EscapeVerdict::OwnerConfined {
            if let Some(i) = c.param_index {
                let names_var = func.params.get(i) == Some(&c.var);
                if !names_var || !affinity::param_owner_bound(prog, rederived.affinity(), fid, i) {
                    diags.push(
                        Diagnostic::error(
                            "ESC003",
                            format!(
                                "owner-confined upgrade of `{}` claims parameter {i} is \
                                 owner-bound at every call site, but the binding rule \
                                 does not re-derive",
                                c.var_name
                            ),
                        )
                        .with_note(format!("claim: {c}"))
                        .with_note(
                            "every call site must place the call @ OWNER_OF(arg) or \
                             pass an already-local pointer to an unplaced call",
                        ),
                    );
                }
            }
        }
        if c.verdict == EscapeVerdict::NodeLocal && !rederived.region_is_node_local(fid, c.var) {
            diags.push(
                Diagnostic::error(
                    "ESC002",
                    format!(
                        "upgrade claims the heap region of `{}` is node-local, but the \
                         re-derived region analysis finds it shared",
                        c.var_name
                    ),
                )
                .with_note(format!("claim: {c}"))
                .with_note(
                    "the region escapes through malloc_on, a placed call boundary, a \
                     parallel construct, or a shared global",
                ),
            );
        }
        // Only reach for the catch-all when no specific rule already
        // rejected this claim — each hand-broken shape maps to one code.
        if diags.len() == before && !rederived.upgrades_for(fid).contains(c) {
            diags.push(
                Diagnostic::error(
                    "ESC001",
                    format!(
                        "recorded escape upgrade of `{}` ({}) cannot be re-derived from \
                         the pre-optimization IR",
                        c.var_name, c.verdict
                    ),
                )
                .with_note(format!("claim: {c}"))
                .with_note(
                    "an escape upgrade must be independently re-derivable; a \
                     fabricated upgrade silently deletes real communication",
                ),
            );
        }
    }
    diags
}

/// Re-derives a motion's probabilistic justification (`ALP` codes).
///
/// The induction claim must be reproducible by
/// [`find_pointer_inductions`] on the **pre-optimization** body — same
/// loop, same pointer, same link field, same unique advance statement —
/// and the recorded probability must be a probability.
fn check_justification(
    func: &Function,
    inductions: &[PointerInduction],
    m: &Motion,
    j: &ProbJustification,
    diags: &mut Vec<Diagnostic>,
) {
    let base_name = &func.var(m.base).name;
    if !(0.0..=1.0).contains(&j.prob) {
        diags.push(
            Diagnostic::error(
                "ALP003",
                format!(
                    "induction justification for `{base_name}` carries probability \
                     {} outside [0, 1]",
                    j.prob
                ),
            )
            .with_label(j.loop_label, "claimed loop")
            .with_note(format!("motion: {m}")),
        );
    }
    let confirmed = inductions.iter().any(|i| {
        i.loop_label == j.loop_label
            && i.var == m.base
            && i.field == j.field
            && i.advance_label == j.advance_label
    });
    if !confirmed {
        diags.push(
            Diagnostic::error(
                "ALP001",
                format!(
                    "motion claims `{base_name}` is a pointer induction of loop {} \
                     (advance at {}, link field f{}), but the recognizer finds no \
                     such induction in the pre-optimization body",
                    j.loop_label, j.advance_label, j.field.0
                ),
            )
            .with_label(j.loop_label, "claimed loop")
            .with_note(format!("motion: {m}"))
            .with_note(
                "an induction justification must be independently re-derivable; \
                 a cost relaxation with a fabricated basis is rejected outright",
            ),
        );
    }
}

/// Applies the kill predicates for motion `m` at window label `l`.
fn check_label(
    func: &Function,
    fa: &FunctionAnalysis,
    m: &Motion,
    l: Label,
    diags: &mut Vec<Diagnostic>,
) {
    let base_name = &func.var(m.base).name;
    match m.kind {
        MotionKind::PipelinedRead | MotionKind::RedundantReuse | MotionKind::BlockRead => {
            if fa.var_written(m.base, l) {
                diags.push(
                    Diagnostic::error(
                        "PLC001",
                        format!(
                            "base pointer `{base_name}` is redefined between the hoisted \
                             read at {} and a covered use",
                            m.to_label
                        ),
                    )
                    .with_label(l, "redefinition here")
                    .with_label(m.to_label, "read issued here")
                    .with_note(format!("motion: {m}")),
                );
            }
            if fa.heap_conflict(m.base, m.field, l, AccessKind::Write) {
                diags.push(
                    Diagnostic::error(
                        "PLC002",
                        format!(
                            "region reachable from `{base_name}` may be written between \
                             the hoisted read at {} and a covered use",
                            m.to_label
                        ),
                    )
                    .with_label(l, "conflicting write here")
                    .with_label(m.to_label, "read issued here")
                    .with_note(format!("motion: {m}")),
                );
            }
        }
        MotionKind::BlockWriteback => {
            if fa.var_written(m.base, l) {
                diags.push(
                    Diagnostic::error(
                        "PLC003",
                        format!(
                            "base pointer `{base_name}` is redefined before the buffered \
                             writes are flushed at {}",
                            m.to_label
                        ),
                    )
                    .with_label(l, "redefinition here")
                    .with_label(m.to_label, "write-back anchored here")
                    .with_note(format!("motion: {m}")),
                );
            }
            if fa.heap_conflict(m.base, None, l, AccessKind::ReadOrWrite) {
                diags.push(
                    Diagnostic::error(
                        "PLC004",
                        format!(
                            "region reachable from `{base_name}` may be accessed while \
                             its writes are buffered (flush at {})",
                            m.to_label
                        ),
                    )
                    .with_label(l, "conflicting access here")
                    .with_label(m.to_label, "write-back anchored here")
                    .with_note(format!("motion: {m}")),
                );
            }
        }
    }
}

/// Computes the window between `starts` and `ends` over the structured body.
///
/// Activation happens at the first start label (before its statement when
/// `start_before`, after it otherwise); the window closes once every end has
/// been seen (before the end node when `end_before` — the write-back flush
/// precedes its anchor — after it otherwise).
fn window_labels(
    body: &Stmt,
    starts: &BTreeSet<Label>,
    start_before: bool,
    ends: &BTreeSet<Label>,
    end_before: bool,
) -> BTreeSet<Label> {
    let mut c = Collector {
        starts: starts.clone(),
        start_before,
        ends: ends.clone(),
        end_before,
        active: false,
        out: BTreeSet::new(),
    };
    c.walk(body);
    c.out
}

struct Collector {
    starts: BTreeSet<Label>,
    start_before: bool,
    /// Ends not yet reached.
    ends: BTreeSet<Label>,
    end_before: bool,
    active: bool,
    out: BTreeSet<Label>,
}

impl Collector {
    fn has_start(&self, s: &Stmt) -> bool {
        let mut found = false;
        s.walk(&mut |st| {
            if self.starts.contains(&st.label) {
                found = true;
            }
        });
        found
    }

    /// Includes every basic statement of the subtree in the window and
    /// consumes any ends inside it (used for loops crossed while active and
    /// for `ParSeq` arms concurrent with the window).
    fn add_all(&mut self, s: &Stmt) {
        s.walk(&mut |st| {
            if matches!(st.kind, StmtKind::Basic(_)) {
                self.out.insert(st.label);
            }
        });
        for l in s.labels() {
            self.ends.remove(&l);
        }
        if self.active && self.ends.is_empty() {
            self.active = false;
        }
    }

    fn walk(&mut self, s: &Stmt) {
        if self.ends.is_empty() {
            self.active = false;
            return;
        }
        if self.starts.contains(&s.label) && self.start_before {
            self.active = true;
        }
        if self.ends.contains(&s.label) && self.end_before {
            // The window closes just before this node (write-back flush).
            self.ends.remove(&s.label);
            if self.ends.is_empty() {
                self.active = false;
                return;
            }
        }
        let is_compound_start = self.starts.contains(&s.label) && !self.start_before;
        match &s.kind {
            StmtKind::Basic(_) => {
                if self.active {
                    self.out.insert(s.label);
                }
                if self.ends.remove(&s.label) && self.ends.is_empty() {
                    self.active = false;
                }
                if self.starts.contains(&s.label) && !self.start_before {
                    self.active = true;
                }
                return;
            }
            StmtKind::Seq(ss) => {
                for c in ss {
                    self.walk(c);
                }
            }
            StmtKind::ParSeq(ss) => {
                if self.active {
                    // All arms run concurrently with the open window.
                    for c in ss {
                        self.add_all(c);
                    }
                } else if self.has_start(s) {
                    // Arms not holding the start run concurrently with the
                    // issue point: include them wholesale.
                    let holds: Vec<bool> = ss.iter().map(|c| self.has_start(c)).collect();
                    for (c, h) in ss.iter().zip(holds) {
                        if h {
                            self.walk(c);
                        } else {
                            self.add_all(c);
                        }
                    }
                } else {
                    for c in ss {
                        self.walk(c);
                    }
                }
            }
            StmtKind::If { then_s, else_s, .. } => {
                self.branches(&[then_s, else_s]);
            }
            StmtKind::Switch { cases, default, .. } => {
                let mut branches: Vec<&Stmt> = cases.iter().map(|(_, s)| s).collect();
                branches.push(default);
                self.branches(&branches);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
                if self.active {
                    // A later iteration may execute any statement of the
                    // loop between issue and use: take the whole subtree.
                    self.add_all(s);
                } else {
                    self.walk(body);
                }
            }
            StmtKind::Forall {
                init, step, body, ..
            } => {
                if self.active {
                    self.add_all(s);
                } else {
                    self.walk(init);
                    self.walk(body);
                    self.walk(step);
                }
            }
        }
        if is_compound_start {
            self.active = true;
            if self.ends.is_empty() {
                self.active = false;
            }
        }
    }

    /// Path-sensitive handling of conditional branches.
    fn branches(&mut self, branches: &[&Stmt]) {
        if self.active {
            // Branches are mutually exclusive: a statement in one branch is
            // never between the issue point and a use in a sibling branch.
            // Walk each branch with its own end set (plus any ends past the
            // conditional, which every branch leads to).
            let mut inside: BTreeSet<Label> = BTreeSet::new();
            for b in branches {
                b.walk(&mut |st| {
                    if self.ends.contains(&st.label) {
                        inside.insert(st.label);
                    }
                });
            }
            let outside: BTreeSet<Label> = self.ends.difference(&inside).copied().collect();
            let downstream = !outside.is_empty();
            for b in branches {
                let mut b_ends: BTreeSet<Label> = BTreeSet::new();
                b.walk(&mut |st| {
                    if inside.contains(&st.label) {
                        b_ends.insert(st.label);
                    }
                });
                if b_ends.is_empty() && !downstream {
                    continue;
                }
                self.ends = b_ends.union(&outside).copied().collect();
                self.active = true;
                self.walk(b);
            }
            self.active = !outside.is_empty();
            self.ends = outside;
        } else if branches.iter().any(|b| self.has_start(b)) {
            // The issue point sits in one branch; sibling branches are
            // alternative paths that never see the issued operation.
            let holds: Vec<bool> = branches.iter().map(|b| self.has_start(b)).collect();
            for (b, h) in branches.iter().zip(holds) {
                if h {
                    self.walk(b);
                } else {
                    for l in b.labels() {
                        self.ends.remove(&l);
                    }
                }
            }
        } else {
            for b in branches {
                self.walk(b);
            }
        }
    }
}
