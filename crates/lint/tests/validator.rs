//! Translation-validator integration tests: the optimizer's own motions on
//! every example program and Olden benchmark must verify cleanly, while
//! hand-written unsound motions must be caught.

use earth_commopt::{CommOptConfig, Motion, MotionKind, MotionLog};
use earth_ir::{diag, FieldId, Label};
use earth_lint::{verify_motions, verify_program};

fn compile(src: &str) -> earth_ir::Program {
    earth_frontend::compile(src).expect("test source compiles")
}

#[test]
fn example_programs_verify_cleanly() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("programs directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ec") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = compile(&src);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(
            violations.is_empty(),
            "{}: {}",
            path.display(),
            diag::render_all(&violations)
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the example programs, found {checked}"
    );
}

#[test]
fn olden_suite_verifies_cleanly() {
    for bench in earth_olden::suite() {
        let prog = compile(bench.source);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(
            violations.is_empty(),
            "{}: {}",
            bench.name,
            diag::render_all(&violations)
        );
        // The conservative build must validate too.
        let cfg = CommOptConfig {
            speculative_remote_ok: false,
            ..CommOptConfig::default()
        };
        let violations = verify_program(&prog, &cfg);
        assert!(violations.is_empty(), "{} (conservative)", bench.name);
    }
}

#[test]
fn paper_figures_verify_cleanly() {
    for src in [
        // Figure 3: distance.
        r#"
        struct Point { double x; double y; };
        double distance(Point *p) {
            double d;
            d = sqrt(p->x * p->x + p->y * p->y);
            return d;
        }
        "#,
        // Figure 4: scale_point (blocking with write-back).
        r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        void scale_point(Point *p, double k) {
            p->x = scale(p->x, k);
            p->y = scale(p->y, k);
        }
        "#,
        // Figure 8: closest-point loop (pipelining + blocking + reuse).
        r#"
        struct Point { Point* next; double x; double y; };
        double f(double ax, double ay, double bx, double by) {
            return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
        }
        double closest(Point *head, Point *t, double epsilon) {
            Point *p;
            Point *close;
            double ax; double ay; double bx; double by;
            double dist; double cx; double tx; double diffx;
            double cy; double ty; double diffy;
            close = head;
            p = head;
            while (p != NULL) {
                ax = p->x;
                ay = p->y;
                bx = t->x;
                by = t->y;
                dist = f(ax, ay, bx, by);
                if (dist < epsilon) { close = p; }
                p = p->next;
            }
            cx = close->x;
            tx = t->x;
            diffx = cx - tx;
            cy = close->y;
            ty = t->y;
            diffy = cy - ty;
            return diffx * diffx + diffy * diffy;
        }
        "#,
    ] {
        let prog = compile(src);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(violations.is_empty(), "{}", diag::render_all(&violations));
    }
}

/// Finds the labels of the (ordered) remote loads of `field` via `base` in
/// function `name`, plus the analysis for the function.
fn loads_of(
    prog: &earth_ir::Program,
    name: &str,
    base: &str,
    field: FieldId,
) -> (Vec<Label>, earth_analysis::FunctionAnalysis) {
    let fid = prog.function_by_name(name).unwrap();
    let f = prog.function(fid);
    let b = f.var_by_name(base).unwrap();
    let labels = f
        .basic_stmts()
        .iter()
        .filter(|(_, s)| {
            s.deref_access()
                .is_some_and(|a| a.base == b && a.field == Some(field) && !a.is_write)
        })
        .map(|(l, _)| *l)
        .collect();
    let analysis = earth_analysis::analyze(prog);
    (labels, analysis.function(fid).clone())
}

#[test]
fn unsound_motion_across_aliased_write_is_caught() {
    // `q->x = 0.0` kills a read of `p->x` hoisted across it (q aliases p).
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p) {
            P *q;
            double a; double b;
            q = p;
            a = p->x;
            q->x = 0.0;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    assert_eq!(loads.len(), 2);
    let log = MotionLog {
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "deliberately unsound test motion".into(),
        }],
    };
    let violations = verify_motions(f, &fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC002"),
        "expected PLC002, got: {}",
        diag::render_all(&violations)
    );
    // The diagnostic names the offending statement (the aliased store).
    let plc2 = violations.iter().find(|d| d.code == "PLC002").unwrap();
    assert!(!plc2.labels.is_empty());
}

#[test]
fn unsound_motion_across_base_redefinition_is_caught() {
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p, P *r) {
            double a; double b;
            a = p->x;
            p = r;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    assert_eq!(loads.len(), 2);
    let log = MotionLog {
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::RedundantReuse,
            reason: "deliberately unsound test motion".into(),
        }],
    };
    let violations = verify_motions(f, &fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC001"),
        "expected PLC001, got: {}",
        diag::render_all(&violations)
    );
}

#[test]
fn unsound_writeback_across_aliased_read_is_caught() {
    // An aliased read between the buffered store and the delayed flush
    // would observe the stale pre-span value.
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p) {
            P *q;
            double a;
            q = p;
            p->x = 1.0;
            a = q->y;
            p->y = 2.0;
            return a;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let p = f.var_by_name("p").unwrap();
    let stores: Vec<Label> = f
        .basic_stmts()
        .iter()
        .filter(|(_, s)| s.deref_access().is_some_and(|a| a.base == p && a.is_write))
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(stores.len(), 2);
    let analysis = earth_analysis::analyze(&prog);
    let log = MotionLog {
        motions: vec![Motion {
            base: p,
            base_name: "p".into(),
            field: None,
            from_labels: stores.iter().copied().collect(),
            to_label: stores[1],
            before: false,
            kind: MotionKind::BlockWriteback,
            reason: "deliberately unsound test motion".into(),
        }],
    };
    let violations = verify_motions(f, analysis.function(fid), &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC004"),
        "expected PLC004, got: {}",
        diag::render_all(&violations)
    );
}

#[test]
fn malformed_motion_is_caught() {
    let prog = compile(
        r#"
        struct P { double x; };
        double f(P *p) { return p->x; }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let log = MotionLog {
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [Label(999)].into(),
            to_label: Label(998),
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "labels do not exist".into(),
        }],
    };
    let violations = verify_motions(f, analysis.function(fid), &log);
    assert!(violations.iter().any(|d| d.code == "PLC005"));
}

#[test]
fn violations_round_trip_through_json() {
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p, P *r) {
            double a; double b;
            a = p->x;
            p = r;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    let log = MotionLog {
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "deliberately unsound test motion".into(),
        }],
    };
    let violations: Vec<_> = verify_motions(f, &fa, &log)
        .into_iter()
        .map(|d| d.in_func("f"))
        .collect();
    assert!(!violations.is_empty());
    let json = diag::to_json_array(&violations);
    let parsed = diag::from_json_array(&json).expect("valid JSON");
    assert_eq!(parsed, violations);
}
