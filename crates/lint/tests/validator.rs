//! Translation-validator integration tests: the optimizer's own motions on
//! every example program and Olden benchmark must verify cleanly, while
//! hand-written unsound motions must be caught.

use earth_analysis::find_pointer_inductions;
use earth_commopt::{CommOptConfig, Motion, MotionKind, MotionLog, ProbJustification};
use earth_ir::{diag, FieldId, Label, StmtKind};
use earth_lint::{verify_motions, verify_program};

fn compile(src: &str) -> earth_ir::Program {
    earth_frontend::compile(src).expect("test source compiles")
}

#[test]
fn example_programs_verify_cleanly() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("programs directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ec") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = compile(&src);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(
            violations.is_empty(),
            "{}: {}",
            path.display(),
            diag::render_all(&violations)
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the example programs, found {checked}"
    );
}

#[test]
fn olden_suite_verifies_cleanly() {
    for bench in earth_olden::suite() {
        let prog = compile(bench.source);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(
            violations.is_empty(),
            "{}: {}",
            bench.name,
            diag::render_all(&violations)
        );
        // The conservative build must validate too.
        let cfg = CommOptConfig {
            speculative_remote_ok: false,
            ..CommOptConfig::default()
        };
        let violations = verify_program(&prog, &cfg);
        assert!(violations.is_empty(), "{} (conservative)", bench.name);
    }
}

#[test]
fn paper_figures_verify_cleanly() {
    for src in [
        // Figure 3: distance.
        r#"
        struct Point { double x; double y; };
        double distance(Point *p) {
            double d;
            d = sqrt(p->x * p->x + p->y * p->y);
            return d;
        }
        "#,
        // Figure 4: scale_point (blocking with write-back).
        r#"
        struct Point { double x; double y; };
        double scale(double v, double k) { return v * k; }
        void scale_point(Point *p, double k) {
            p->x = scale(p->x, k);
            p->y = scale(p->y, k);
        }
        "#,
        // Figure 8: closest-point loop (pipelining + blocking + reuse).
        r#"
        struct Point { Point* next; double x; double y; };
        double f(double ax, double ay, double bx, double by) {
            return (ax - bx) * (ax - bx) + (ay - by) * (ay - by);
        }
        double closest(Point *head, Point *t, double epsilon) {
            Point *p;
            Point *close;
            double ax; double ay; double bx; double by;
            double dist; double cx; double tx; double diffx;
            double cy; double ty; double diffy;
            close = head;
            p = head;
            while (p != NULL) {
                ax = p->x;
                ay = p->y;
                bx = t->x;
                by = t->y;
                dist = f(ax, ay, bx, by);
                if (dist < epsilon) { close = p; }
                p = p->next;
            }
            cx = close->x;
            tx = t->x;
            diffx = cx - tx;
            cy = close->y;
            ty = t->y;
            diffy = cy - ty;
            return diffx * diffx + diffy * diffy;
        }
        "#,
    ] {
        let prog = compile(src);
        let violations = verify_program(&prog, &CommOptConfig::default());
        assert!(violations.is_empty(), "{}", diag::render_all(&violations));
    }
}

/// Finds the labels of the (ordered) remote loads of `field` via `base` in
/// function `name`, plus the analysis for the function.
fn loads_of(
    prog: &earth_ir::Program,
    name: &str,
    base: &str,
    field: FieldId,
) -> (Vec<Label>, earth_analysis::FunctionAnalysis) {
    let fid = prog.function_by_name(name).unwrap();
    let f = prog.function(fid);
    let b = f.var_by_name(base).unwrap();
    let labels = f
        .basic_stmts()
        .iter()
        .filter(|(_, s)| {
            s.deref_access()
                .is_some_and(|a| a.base == b && a.field == Some(field) && !a.is_write)
        })
        .map(|(l, _)| *l)
        .collect();
    let analysis = earth_analysis::analyze(prog);
    (labels, analysis.function(fid).clone())
}

#[test]
fn unsound_motion_across_aliased_write_is_caught() {
    // `q->x = 0.0` kills a read of `p->x` hoisted across it (q aliases p).
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p) {
            P *q;
            double a; double b;
            q = p;
            a = p->x;
            q->x = 0.0;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    assert_eq!(loads.len(), 2);
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "deliberately unsound test motion".into(),
            justification: None,
        }],
    };
    let violations = verify_motions(f, &fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC002"),
        "expected PLC002, got: {}",
        diag::render_all(&violations)
    );
    // The diagnostic names the offending statement (the aliased store).
    let plc2 = violations.iter().find(|d| d.code == "PLC002").unwrap();
    assert!(!plc2.labels.is_empty());
}

#[test]
fn unsound_motion_across_base_redefinition_is_caught() {
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p, P *r) {
            double a; double b;
            a = p->x;
            p = r;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    assert_eq!(loads.len(), 2);
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::RedundantReuse,
            reason: "deliberately unsound test motion".into(),
            justification: None,
        }],
    };
    let violations = verify_motions(f, &fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC001"),
        "expected PLC001, got: {}",
        diag::render_all(&violations)
    );
}

#[test]
fn unsound_writeback_across_aliased_read_is_caught() {
    // An aliased read between the buffered store and the delayed flush
    // would observe the stale pre-span value.
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p) {
            P *q;
            double a;
            q = p;
            p->x = 1.0;
            a = q->y;
            p->y = 2.0;
            return a;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let p = f.var_by_name("p").unwrap();
    let stores: Vec<Label> = f
        .basic_stmts()
        .iter()
        .filter(|(_, s)| s.deref_access().is_some_and(|a| a.base == p && a.is_write))
        .map(|(l, _)| *l)
        .collect();
    assert_eq!(stores.len(), 2);
    let analysis = earth_analysis::analyze(&prog);
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: p,
            base_name: "p".into(),
            field: None,
            from_labels: stores.iter().copied().collect(),
            to_label: stores[1],
            before: false,
            kind: MotionKind::BlockWriteback,
            reason: "deliberately unsound test motion".into(),
            justification: None,
        }],
    };
    let violations = verify_motions(f, analysis.function(fid), &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC004"),
        "expected PLC004, got: {}",
        diag::render_all(&violations)
    );
}

#[test]
fn malformed_motion_is_caught() {
    let prog = compile(
        r#"
        struct P { double x; };
        double f(P *p) { return p->x; }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [Label(999)].into(),
            to_label: Label(998),
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "labels do not exist".into(),
            justification: None,
        }],
    };
    let violations = verify_motions(f, analysis.function(fid), &log);
    assert!(violations.iter().any(|d| d.code == "PLC005"));
}

/// Label of the first `while` loop in `f`.
fn while_label(f: &earth_ir::Function) -> Label {
    let mut found = None;
    f.body.walk(&mut |s: &earth_ir::Stmt| {
        if matches!(s.kind, StmtKind::While { .. }) && found.is_none() {
            found = Some(s.label);
        }
    });
    found.expect("a while loop")
}

#[test]
fn fabricated_induction_justification_is_caught() {
    // `p` is reassigned from a non-field source inside the loop, so the
    // recognizer derives no induction — a motion claiming one is rejected.
    let prog = compile(
        r#"
        struct node { node* next; double v; };
        double sum(node *head, node *q) {
            node *p;
            double acc;
            acc = 0.0;
            p = head;
            while (p != NULL) {
                acc = acc + p->v;
                p = q;
            }
            return acc;
        }
        "#,
    );
    let fid = prog.function_by_name("sum").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let fa = analysis.function(fid);
    assert!(find_pointer_inductions(f, fa).is_empty());
    let (loads, _) = loads_of(&prog, "sum", "p", FieldId(1));
    assert_eq!(loads.len(), 1);
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: None,
            from_labels: [loads[0]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::BlockRead,
            reason: "fabricated induction justification".into(),
            justification: Some(ProbJustification {
                loop_label: while_label(f),
                advance_label: loads[0],
                field: FieldId(0),
                prob: 0.9,
            }),
        }],
    };
    let violations = verify_motions(f, fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "ALP001"),
        "expected ALP001, got: {}",
        diag::render_all(&violations)
    );
    // The probability itself is fine and the window is empty: only the
    // fabricated claim is flagged.
    assert!(!violations
        .iter()
        .any(|d| d.code == "ALP002" || d.code == "ALP003"));
}

#[test]
fn probability_cannot_justify_a_binary_conflict() {
    // The induction claim is *genuine* (the recognizer re-derives it), but
    // the motion's window contains an aliased store the binary rules
    // reject — the probability cannot override them.
    let prog = compile(
        r#"
        struct node { node* next; double v; };
        double sum(node *head) {
            node *p;
            node *q;
            double acc;
            acc = 0.0;
            p = head;
            q = head;
            while (p != NULL) {
                q->v = acc;
                acc = acc + p->v;
                p = p->next;
            }
            return acc;
        }
        "#,
    );
    let fid = prog.function_by_name("sum").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let fa = analysis.function(fid);
    let inds = find_pointer_inductions(f, fa);
    assert_eq!(inds.len(), 1, "p is a genuine induction");
    let ind = inds[0];
    let (loads, _) = loads_of(&prog, "sum", "p", FieldId(1));
    assert_eq!(loads.len(), 1);
    let q = f.var_by_name("q").unwrap();
    let store = f
        .basic_stmts()
        .iter()
        .find(|(_, s)| s.deref_access().is_some_and(|a| a.base == q && a.is_write))
        .map(|(l, _)| *l)
        .expect("the q->v store");
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: None,
            from_labels: [loads[0]].into(),
            to_label: store,
            before: true,
            kind: MotionKind::BlockRead,
            reason: "hoisted across an aliased store".into(),
            justification: Some(ProbJustification {
                loop_label: ind.loop_label,
                advance_label: ind.advance_label,
                field: ind.field,
                prob: 0.97,
            }),
        }],
    };
    let violations = verify_motions(f, fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "PLC002"),
        "expected PLC002, got: {}",
        diag::render_all(&violations)
    );
    assert!(
        violations.iter().any(|d| d.code == "ALP002"),
        "expected ALP002, got: {}",
        diag::render_all(&violations)
    );
    assert!(!violations
        .iter()
        .any(|d| d.code == "ALP001" || d.code == "ALP003"));
}

#[test]
fn out_of_range_probability_is_caught() {
    let prog = compile(
        r#"
        struct node { node* next; double v; };
        double sum(node *head) {
            node *p;
            double acc;
            acc = 0.0;
            p = head;
            while (p != NULL) {
                acc = acc + p->v;
                p = p->next;
            }
            return acc;
        }
        "#,
    );
    let fid = prog.function_by_name("sum").unwrap();
    let f = prog.function(fid);
    let analysis = earth_analysis::analyze(&prog);
    let fa = analysis.function(fid);
    let inds = find_pointer_inductions(f, fa);
    assert_eq!(inds.len(), 1);
    let ind = inds[0];
    let (loads, _) = loads_of(&prog, "sum", "p", FieldId(1));
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: None,
            from_labels: [loads[0]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::BlockRead,
            reason: "probability is not a probability".into(),
            justification: Some(ProbJustification {
                loop_label: ind.loop_label,
                advance_label: ind.advance_label,
                field: ind.field,
                prob: 1.5,
            }),
        }],
    };
    let violations = verify_motions(f, fa, &log);
    assert!(
        violations.iter().any(|d| d.code == "ALP003"),
        "expected ALP003, got: {}",
        diag::render_all(&violations)
    );
    // The induction claim itself is genuine.
    assert!(!violations.iter().any(|d| d.code == "ALP001"));
}

#[test]
fn prob_alias_motions_verify_cleanly() {
    // The optimizer's own prob-alias motions — induction-justified blkmovs
    // included — must pass the validator on every example and Olden kernel.
    let cfg = CommOptConfig {
        alias: earth_commopt::AliasMode::Prob,
        ..CommOptConfig::default()
    };
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    for entry in std::fs::read_dir(dir).expect("programs directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("ec") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let prog = compile(&src);
        let violations = verify_program(&prog, &cfg);
        assert!(
            violations.is_empty(),
            "{}: {}",
            path.display(),
            diag::render_all(&violations)
        );
    }
    for bench in earth_olden::suite() {
        let prog = compile(bench.source);
        let violations = verify_program(&prog, &cfg);
        assert!(
            violations.is_empty(),
            "{} (prob): {}",
            bench.name,
            diag::render_all(&violations)
        );
    }
}

#[test]
fn every_emittable_code_is_documented() {
    // Cross-check: each code this crate can emit resolves in the registry
    // behind `earthcc lint --explain`. `EMITTED_CODES` is the crate's own
    // declaration of what it can produce; keep it in sync with the
    // checkers.
    for code in earth_lint::EMITTED_CODES {
        let doc = earth_ir::rules::lookup(code);
        assert!(doc.is_some(), "{code} missing from earth_ir::rules");
        assert!(!doc.unwrap().summary.is_empty());
    }
    for family in ["PLC", "ALP", "PAR", "ESC", "DCM"] {
        assert!(
            earth_lint::EMITTED_CODES
                .iter()
                .any(|c| c.starts_with(family)),
            "family {family} absent from EMITTED_CODES"
        );
    }
}

#[test]
fn violations_round_trip_through_json() {
    let prog = compile(
        r#"
        struct P { double x; double y; };
        double f(P *p, P *r) {
            double a; double b;
            a = p->x;
            p = r;
            b = p->x;
            return a + b;
        }
        "#,
    );
    let fid = prog.function_by_name("f").unwrap();
    let f = prog.function(fid);
    let (loads, fa) = loads_of(&prog, "f", "p", FieldId(0));
    let log = MotionLog {
        escapes: vec![],
        motions: vec![Motion {
            base: f.var_by_name("p").unwrap(),
            base_name: "p".into(),
            field: Some(FieldId(0)),
            from_labels: [loads[1]].into(),
            to_label: loads[0],
            before: true,
            kind: MotionKind::PipelinedRead,
            reason: "deliberately unsound test motion".into(),
            justification: None,
        }],
    };
    let violations: Vec<_> = verify_motions(f, &fa, &log)
        .into_iter()
        .map(|d| d.in_func("f"))
        .collect();
    assert!(!violations.is_empty());
    let json = diag::to_json_array(&violations);
    let parsed = diag::from_json_array(&json).expect("valid JSON");
    assert_eq!(parsed, violations);
}

// ---------------------------------------------------------------------------
// Escape-upgrade re-derivation (ESC001–ESC003)
// ---------------------------------------------------------------------------

/// A program with one genuine owner-confined upgrade (`sum`'s parameter,
/// owner-bound at its only call site) and one region that must stay shared
/// (`n`, allocated with `malloc_on`).
const OWNED: &str = r#"
    struct N { N* next; double v; };
    double sum(N *c) {
        double acc;
        acc = c->v;
        return acc;
    }
    double main() {
        N *n;
        double r;
        n = malloc_on(1, sizeof(N));
        n->v = 3.0;
        r = sum(n) @ OWNER_OF(n);
        return r;
    }
"#;

#[test]
fn genuine_escape_claims_verify_cleanly() {
    use earth_analysis::EscapeAnalysis;
    use earth_lint::verify_escapes;
    let prog = compile(OWNED);
    let analysis = earth_analysis::analyze(&prog);
    let esc = EscapeAnalysis::compute(&prog, &analysis.summaries);
    let sum = prog.function_by_name("sum").unwrap();
    let claims = esc.upgrades_for(sum);
    assert!(!claims.is_empty(), "sum's parameter must upgrade");
    assert!(verify_escapes(&prog, sum, claims, &esc).is_empty());
}

#[test]
fn fabricated_escape_claim_is_esc001() {
    use earth_analysis::{EscapeAnalysis, EscapeJustification, EscapeVerdict};
    use earth_lint::verify_escapes;
    let prog = compile(OWNED);
    let analysis = earth_analysis::analyze(&prog);
    let esc = EscapeAnalysis::compute(&prog, &analysis.summaries);
    let main = prog.function_by_name("main").unwrap();
    // `n` escapes through malloc_on and never upgrades; claiming an
    // owner-confined upgrade (without parameter evidence) is a fabrication
    // caught by the catch-all re-derivation.
    let n = prog.function(main).var_by_name("n").unwrap();
    let claim = EscapeJustification {
        var: n,
        var_name: "n".into(),
        verdict: EscapeVerdict::OwnerConfined,
        param_index: None,
    };
    let diags = verify_escapes(&prog, main, &[claim], &esc);
    assert_eq!(diags.len(), 1, "{}", diag::render_all(&diags));
    assert_eq!(diags[0].code, "ESC001");
}

#[test]
fn shared_region_claimed_node_local_is_esc002() {
    use earth_analysis::{EscapeAnalysis, EscapeVerdict};
    use earth_lint::verify_escapes;
    let prog = compile(OWNED);
    let analysis = earth_analysis::analyze(&prog);
    let esc = EscapeAnalysis::compute(&prog, &analysis.summaries);
    let sum = prog.function_by_name("sum").unwrap();
    // Take the genuine owner-confined claim and inflate its verdict to
    // node-local: the parameter's region reaches main's malloc_on.
    let mut claim = esc.upgrades_for(sum)[0].clone();
    claim.verdict = EscapeVerdict::NodeLocal;
    claim.param_index = None;
    let diags = verify_escapes(&prog, sum, &[claim], &esc);
    assert_eq!(diags.len(), 1, "{}", diag::render_all(&diags));
    assert_eq!(diags[0].code, "ESC002");
}

#[test]
fn wrong_owner_binding_is_esc003() {
    use earth_analysis::EscapeAnalysis;
    use earth_lint::verify_escapes;
    let prog = compile(OWNED);
    let analysis = earth_analysis::analyze(&prog);
    let esc = EscapeAnalysis::compute(&prog, &analysis.summaries);
    let sum = prog.function_by_name("sum").unwrap();
    // Point the parameter evidence at an index that does not name the
    // claimed variable: the owner-binding rule cannot re-derive.
    let mut claim = esc.upgrades_for(sum)[0].clone();
    claim.param_index = Some(7);
    let diags = verify_escapes(&prog, sum, &[claim], &esc);
    assert_eq!(diags.len(), 1, "{}", diag::render_all(&diags));
    assert_eq!(diags[0].code, "ESC003");
}

#[test]
fn escape_mode_replay_verifies_cleanly_everywhere() {
    use earth_commopt::EscapeMode;
    // Zero ESC diagnostics across the example programs and the Olden
    // suite, alone and combined with prob-alias.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut sources: Vec<(String, String)> = Vec::new();
    for entry in std::fs::read_dir(dir).expect("programs directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("ec") {
            sources.push((
                path.display().to_string(),
                std::fs::read_to_string(&path).unwrap(),
            ));
        }
    }
    for bench in earth_olden::suite() {
        sources.push((format!("olden:{}", bench.name), bench.source.to_string()));
    }
    for (name, src) in sources {
        let prog = compile(&src);
        for alias in [
            earth_commopt::AliasMode::Binary,
            earth_commopt::AliasMode::Prob,
        ] {
            let cfg = CommOptConfig {
                escape: EscapeMode::On,
                alias,
                ..CommOptConfig::default()
            };
            let violations = verify_program(&prog, &cfg);
            assert!(
                violations.is_empty(),
                "{name} ({alias:?}): {}",
                diag::render_all(&violations)
            );
        }
    }
}
