//! Parallel-soundness linter integration tests.

use earth_ir::diag;
use earth_lint::{lint_program, ParallelConstruct};

fn compile(src: &str) -> earth_ir::Program {
    earth_frontend::compile(src).expect("test source compiles")
}

#[test]
fn count_forall_is_provably_independent() {
    // The paper's Figure 1(a): the shared counter is accessed atomically,
    // every other written variable is iteration-private.
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../programs/count.ec"
    ))
    .unwrap();
    let report = lint_program(&compile(&src));
    let forall = report
        .verdicts
        .iter()
        .find(|v| v.construct == ParallelConstruct::Forall && v.func == "count")
        .expect("count has a forall");
    assert!(
        forall.independent,
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn treesum_parseq_is_provably_independent() {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../programs/treesum.ec"
    ))
    .unwrap();
    let report = lint_program(&compile(&src));
    let parseq = report
        .verdicts
        .iter()
        .find(|v| v.construct == ParallelConstruct::ParSeq && v.func == "sum")
        .expect("sum has a parallel sequence");
    assert!(
        parseq.independent,
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn seeded_racy_forall_is_flagged() {
    // `s = s + p->v` reads `s` before writing it: a loop-carried
    // dependence across concurrent iterations.
    let report = lint_program(&compile(
        r#"
        struct node { node* next; int v; };
        int sum(node *head) {
            node *p;
            int s;
            s = 0;
            forall (p = head; p != NULL; p = p->next) {
                s = s + p->v;
            }
            return s;
        }
        "#,
    ));
    assert!(report.diagnostics.iter().any(|d| d.code == "PAR002"));
    let forall = report
        .verdicts
        .iter()
        .find(|v| v.construct == ParallelConstruct::Forall)
        .unwrap();
    assert!(!forall.independent);
}

#[test]
fn seeded_racy_heap_write_is_flagged() {
    // Every iteration writes through the shared cursor's region.
    let report = lint_program(&compile(
        r#"
        struct node { node* next; int v; };
        void clear(node *head) {
            node *p;
            forall (p = head; p != NULL; p = p->next) {
                p->v = 0;
            }
        }
        "#,
    ));
    assert!(
        report.diagnostics.iter().any(|d| d.code == "PAR001"),
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn write_before_read_temporary_is_private() {
    // `t` is written before it is read on every path: privatizable.
    let report = lint_program(&compile(
        r#"
        struct node { node* next; int v; };
        int scan(node *head) {
            node *p;
            int t;
            shared int acc;
            writeto(&acc, 0);
            forall (p = head; p != NULL; p = p->next) {
                t = p->v;
                if (t > 0) {
                    addto(&acc, t);
                }
            }
            return valueof(&acc);
        }
        "#,
    ));
    let forall = report
        .verdicts
        .iter()
        .find(|v| v.construct == ParallelConstruct::Forall)
        .unwrap();
    assert!(
        forall.independent,
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn parseq_stack_conflict_is_flagged() {
    let report = lint_program(&compile(
        r#"
        struct P { int v; };
        int pick(int a, int b) { return a + b; }
        int f(int a, int b) {
            int x;
            {^
                x = pick(a, a);
                x = pick(b, b);
            ^}
            return x;
        }
        "#,
    ));
    assert!(
        report.diagnostics.iter().any(|d| d.code == "PAR004"),
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn parseq_heap_conflict_is_flagged() {
    let report = lint_program(&compile(
        r#"
        struct P { int v; int w; };
        void poke(P *p) { p->v = 1; }
        int peek(P *p) { return p->v; }
        int f(P *p) {
            int a;
            {^
                poke(p);
                a = peek(p);
            ^}
            return a;
        }
        "#,
    ));
    assert!(
        report.diagnostics.iter().any(|d| d.code == "PAR003"),
        "{}",
        diag::render_all(&report.diagnostics)
    );
}

#[test]
fn olden_kernels_get_reasoned_verdicts() {
    // Every parallel construct in the suite must be classified — either
    // provably independent, or possibly racy with at least one warning
    // explaining why.
    for bench in earth_olden::suite() {
        let report = lint_program(&compile(bench.source));
        assert!(
            !report.verdicts.is_empty(),
            "{}: expected at least one parallel construct",
            bench.name
        );
        for v in &report.verdicts {
            if !v.independent {
                let has_reason = report.diagnostics.iter().any(|d| {
                    d.severity == earth_ir::Severity::Warning
                        && d.labels.iter().any(|l| l.label == v.label)
                });
                assert!(
                    has_reason,
                    "{}: racy verdict for {} at {} lacks a warning",
                    bench.name,
                    v.construct.name(),
                    v.label
                );
            }
        }
        // Verdict notes are always present.
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.code == "PAR000")
                .count(),
            report.verdicts.len(),
            "{}",
            bench.name
        );
    }
}
