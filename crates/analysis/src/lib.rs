//! # earth-analysis — producer analyses for communication optimization
//!
//! This crate implements the McCAT Phase-I analyses the paper's
//! possible-placement analysis consumes (see §2.3 and §4 of Zhu & Hendren,
//! PLDI 1998):
//!
//! * [`effects`] — interprocedural region (connection) analysis and heap
//!   side-effect summaries, standing in for the points-to + connection
//!   analyses of Emami/Ghiya/Hendren;
//! * [`rw_sets`] — hierarchical read/write sets decorating every basic and
//!   compound statement;
//! * [`locality`] — locality inference upgrading provably-local pointers;
//! * [`escape`] / [`affinity`] — whole-program escape & node-affinity
//!   analysis classifying heap regions as node-local, owner-confined or
//!   shared, licensing locality upgrades *through loads* (behind
//!   `--escape on`);
//! * [`ptprob`] — probability-annotated alias/frequency facts (structural
//!   branch heuristics blended with measured frequencies) and [`induction`]
//!   — loop pointer-induction recognition; both weight the optimizer's
//!   *cost* decisions only, never its safety rules;
//! * the [`FunctionAnalysis`] facade with the two queries the placement
//!   analysis needs: `varWritten` and `accessedViaAlias` (the paper's
//!   anchor-handle-based alias query, here answered with connection
//!   classes).
//!
//! # Examples
//!
//! ```
//! let prog = earth_frontend::compile(r#"
//!     struct node { node* next; int v; };
//!     int sum(node *head) {
//!         node *p;
//!         int acc;
//!         acc = 0;
//!         p = head;
//!         while (p != NULL) { acc = acc + p->v; p = p->next; }
//!         return acc;
//!     }
//! "#).unwrap();
//! let analysis = earth_analysis::analyze(&prog);
//! let fid = prog.function_by_name("sum").unwrap();
//! let f = prog.function(fid);
//! let (head, p) = (f.var_by_name("head").unwrap(), f.var_by_name("p").unwrap());
//! // The traversal cursor is connected to the list head: they may point
//! // into the same structure.
//! assert!(analysis.function(fid).regions.connected(head, p));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod cache;
pub mod effects;
pub mod escape;
pub mod induction;
pub mod locality;
pub mod ptprob;
pub mod rw_sets;
mod uf;

pub use affinity::AffinityLocals;
pub use cache::{AnalysisCache, CacheStats};
pub use effects::{analyze_effects, reanalyze_function, Regions, Root, Summary};
pub use escape::{EscapeAnalysis, EscapeJustification, EscapeVerdict};
pub use induction::{find_pointer_inductions, PointerInduction};
pub use locality::{infer_locality, LocalityReport};
pub use ptprob::{MeasuredFreqs, ProbFacts};
pub use rw_sets::{HeapAccess, RwSet, RwSets};

use earth_ir::{FieldId, FuncId, Label, Program, VarId};

/// Which kind of heap access to test for in
/// [`FunctionAnalysis::heap_conflict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Heap reads only.
    Read,
    /// Heap writes only.
    Write,
    /// Reads or writes.
    ReadOrWrite,
}

/// All analysis results for one function.
#[derive(Debug, Clone)]
pub struct FunctionAnalysis {
    /// Connection/region classes of the function's pointer variables.
    pub regions: Regions,
    /// Per-statement read/write sets.
    pub rw: RwSets,
}

impl FunctionAnalysis {
    /// The paper's `varWritten(p, stmt)`: does statement `l` (or any of its
    /// children) write variable `v` directly?
    pub fn var_written(&self, v: VarId, l: Label) -> bool {
        self.rw.var_written(v, l)
    }

    /// The paper's `accessedViaAlias(p, f, d, stmt, kind)` generalized:
    /// does statement `l` perform a heap access of the given `kind` that
    /// may touch field `field` of the structure `p` points into?
    ///
    /// `field = None` matches any field (whole-struct tuples); accesses
    /// with `field = None` (block moves, conservative call effects) match
    /// any queried field. All accesses through pointers *connected* to `p`
    /// are counted — including direct accesses through `p` itself, which is
    /// stricter than the paper's anchor-handle rule; the blocking
    /// transformation recovers the paper's direct-access flexibility by
    /// rewriting whole unaliased spans (see `earth-commopt`).
    pub fn heap_conflict(
        &self,
        p: VarId,
        field: Option<FieldId>,
        l: Label,
        kind: AccessKind,
    ) -> bool {
        let rw = self.rw.get(l);
        let check = |accs: &std::collections::BTreeSet<HeapAccess>| {
            accs.iter().any(|h| {
                let field_match = match (h.field, field) {
                    (None, _) | (_, None) => true,
                    (Some(a), Some(b)) => a == b,
                };
                field_match && self.regions.connected(h.base, p)
            })
        };
        match kind {
            AccessKind::Read => check(&rw.heap_reads),
            AccessKind::Write => check(&rw.heap_writes),
            AccessKind::ReadOrWrite => check(&rw.heap_reads) || check(&rw.heap_writes),
        }
    }
}

/// Whole-program analysis results.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Per-function heap effect summaries, indexed by [`FuncId`].
    pub summaries: Vec<Summary>,
    functions: Vec<FunctionAnalysis>,
}

impl ProgramAnalysis {
    /// The analysis results for function `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &FunctionAnalysis {
        &self.functions[id.index()]
    }

    /// Number of functions covered (the program size the analysis was
    /// computed for).
    pub fn n_functions(&self) -> usize {
        self.functions.len()
    }

    /// Replaces one function's cached results (the analysis cache's
    /// per-function refresh).
    pub(crate) fn set_function(&mut self, id: FuncId, fa: FunctionAnalysis) {
        self.functions[id.index()] = fa;
    }
}

/// Runs the full analysis pipeline (effects fixpoint, regions, read/write
/// sets) over a program.
pub fn analyze(prog: &Program) -> ProgramAnalysis {
    let (summaries, regions) = analyze_effects(prog);
    let functions = prog
        .iter_functions()
        .zip(regions)
        .map(|((_, f), regions)| FunctionAnalysis {
            rw: RwSets::compute(prog, f, &summaries),
            regions,
        })
        .collect();
    ProgramAnalysis {
        summaries,
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    #[test]
    fn heap_conflict_respects_fields_and_regions() {
        let prog = compile(
            r#"
            struct node { node* next; double x; double y; };
            void f(node *p, node *t) {
                double a;
                p->x = 1.0;
                a = t->x;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let fa = analysis.function(fid);
        let p = f.var_by_name("p").unwrap();
        let t = f.var_by_name("t").unwrap();
        let stmts = f.basic_stmts();
        let (write_label, _) = stmts[0]; // p->x = 1.0
        let fx = Some(FieldId(1));
        let fy = Some(FieldId(2));
        // A write via p conflicts with tuples based on p (same field).
        assert!(fa.heap_conflict(p, fx, write_label, AccessKind::Write));
        // ... but not a different field.
        assert!(!fa.heap_conflict(p, fy, write_label, AccessKind::Write));
        // t is in a different region: no conflict.
        assert!(!fa.heap_conflict(t, fx, write_label, AccessKind::Write));
        // Whole-struct queries match any field.
        assert!(fa.heap_conflict(p, None, write_label, AccessKind::ReadOrWrite));
    }

    #[test]
    fn calls_conflict_through_summaries() {
        let prog = compile(
            r#"
            struct node { node* next; double x; double y; };
            void poke(node *n) { n->x = 2.0; }
            void f(node *p) {
                poke(p);
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let fa = analysis.function(fid);
        let p = f.var_by_name("p").unwrap();
        let (call_label, _) = f.basic_stmts()[0];
        assert!(fa.heap_conflict(p, Some(FieldId(1)), call_label, AccessKind::Write));
        assert!(!fa.heap_conflict(p, Some(FieldId(2)), call_label, AccessKind::Write));
    }

    #[test]
    fn connection_survives_copies_and_cycles() {
        // Traversal cursors, copy chains, and even a self-referential store
        // all land in the head's connection class; a freshly-malloc'd
        // structure stays separate until a store links it.
        let prog = compile(
            r#"
            struct node { node* next; int v; };
            void f(node *a) {
                node *b;
                node *c;
                node *d;
                b = a;
                c = b->next;
                d = malloc(sizeof(node));
                d->next = d;
                while (c != NULL) {
                    c = c->next;
                }
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let r = &analysis.function(fid).regions;
        let v = |n: &str| f.var_by_name(n).unwrap();
        assert!(r.connected(v("a"), v("b")));
        assert!(r.connected(v("a"), v("c")));
        // The cyclic store d->next = d merges d with itself — harmless —
        // and must not leak into a's region.
        assert!(!r.connected(v("a"), v("d")));
    }

    #[test]
    fn store_links_regions() {
        // `p->next = q` makes q's structure reachable from p: one region.
        let prog = compile(
            r#"
            struct node { node* next; int v; };
            void link(node *p, node *q) {
                p->next = q;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("link").unwrap();
        let f = prog.function(fid);
        let r = &analysis.function(fid).regions;
        assert!(r.connected(f.var_by_name("p").unwrap(), f.var_by_name("q").unwrap()));
    }

    #[test]
    fn rw_sets_kill_queries_are_field_sensitive() {
        // A store to one field must not register as a conflicting write for
        // a disjoint field of the same region — the placement analysis
        // relies on this to hoist reads of untouched fields across stores.
        let prog = compile(
            r#"
            struct node { node* next; double x; double y; };
            void f(node *p) {
                node *q;
                q = p;
                q->x = 1.0;
                q->next = q;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let fa = analysis.function(fid);
        let p = f.var_by_name("p").unwrap();
        let q = f.var_by_name("q").unwrap();
        let stmts = f.basic_stmts();
        let (copy_label, _) = stmts[0]; // q = p
        let (store_x, _) = stmts[1]; // q->x = 1.0
        let (store_next, _) = stmts[2]; // q->next = q
                                        // The copy writes q (a kill for motions based on q) but performs no
                                        // heap access at all.
        assert!(fa.var_written(q, copy_label));
        assert!(!fa.var_written(p, copy_label));
        assert!(!fa.heap_conflict(p, None, copy_label, AccessKind::ReadOrWrite));
        // Aliased store to x kills x-reads but not y-reads (field kill);
        // the next-store kills next but neither double field.
        assert!(fa.heap_conflict(p, Some(FieldId(1)), store_x, AccessKind::Write));
        assert!(!fa.heap_conflict(p, Some(FieldId(2)), store_x, AccessKind::Write));
        assert!(fa.heap_conflict(p, Some(FieldId(0)), store_next, AccessKind::Write));
        assert!(!fa.heap_conflict(p, Some(FieldId(1)), store_next, AccessKind::Write));
        // Both stores answer the whole-struct (blocking) query.
        assert!(fa.heap_conflict(p, None, store_x, AccessKind::Write));
    }

    #[test]
    fn scalar_call_has_no_heap_conflicts() {
        let prog = compile(
            r#"
            struct node { double x; };
            double scale(double v, double k) { return v * k; }
            void f(node *p, double k) {
                double t;
                t = scale(p->x, k);
                p->x = t;
            }
        "#,
        )
        .unwrap();
        let analysis = analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let fa = analysis.function(fid);
        let p = f.var_by_name("p").unwrap();
        let call_label = f
            .basic_stmts()
            .iter()
            .find(|(_, b)| matches!(b, earth_ir::Basic::Call { .. }))
            .map(|(l, _)| *l)
            .unwrap();
        assert!(!fa.heap_conflict(p, Some(FieldId(0)), call_label, AccessKind::ReadOrWrite));
    }
}
