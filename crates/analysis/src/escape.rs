//! Whole-program escape analysis: allocation-site-based heap regions,
//! classified on a three-point lattice.
//!
//! The communication optimizer assumes every pointer dereference is remote
//! unless the variable is declared (or inferred) `local`, and the Zhu &
//! Hendren locality inference deliberately refuses to look through loads: a
//! cursor `p = q->next` can never become local, so owner-confined linked
//! structures pay split-phase communication on every hop. This module
//! proves the stronger property at *region* granularity:
//!
//! * **`NodeLocal`** — every allocation in the region is a plain `malloc`
//!   (which allocates on the executing node) and the region never crosses a
//!   *placed* call boundary, a `forall`/ParSeq arm, or a shared variable.
//!   All data in the region lives and dies on the node of the synchronous
//!   call subtree that allocated it, so **every** pointer into it —
//!   including load-derived cursors — may be dereferenced locally.
//! * **`OwnerConfined`** — the region itself may span nodes, but a specific
//!   variable (typically an `@ OWNER_OF(p)`-bound parameter) provably
//!   points at data owned by the executing node; see
//!   [`affinity`](crate::affinity).
//! * **`Shared`** — everything else: `malloc_on`, placed-call crossings,
//!   `forall` distribution, ParSeq arms, shared globals, unknown callers.
//!
//! Regions are built with the same union-find that powers the connection
//! analysis in [`effects`](crate::effects), lifted to a single
//! whole-program partition over `(FuncId, VarId)`: copies, loads, stores
//! and block moves unify within a function, and call sites unify arguments
//! with callee parameters and destinations with callee returns (the
//! caller-visible [`Summary`](crate::effects::Summary) merges and return
//! roots are applied too, keeping parity with the per-function analysis).
//!
//! The taint argument for `NodeLocal` is compositional: an unplaced call
//! executes synchronously on the caller's node, so a region that only ever
//! crosses unplaced call boundaries stays inside one same-node call
//! subtree per dynamic invocation. A region that crosses any *placed* call
//! site — through an argument, destination, callee parameter or callee
//! return — is tainted `Shared`, as is anything reachable from `malloc_on`,
//! shared variables, parallel constructs, or the parameters of a function
//! with no visible callers.
//!
//! Every upgrade the optimizer performs on the back of these verdicts is
//! recorded as an [`EscapeJustification`] in the `MotionLog`, and
//! `earth-lint` re-derives each one from pre-optimization IR (rules
//! ESC001–ESC003). The simulator's wrong-locality abort is the runtime
//! backstop for any unsound upgrade.

use crate::affinity::{self, AffinityLocals};
use crate::effects::{Root, Summary};
use crate::uf::UnionFind;
use earth_ir::{
    AtTarget, Basic, FuncId, Function, Locality, Operand, Place, Program, Rvalue, Stmt, StmtKind,
    VarId,
};
use std::fmt;

/// Region/variable classification on the escape lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeVerdict {
    /// Allocated and dereferenced only on the allocating node.
    NodeLocal,
    /// Dereferenced only under a placement that provably targets the
    /// owner's node (or synchronously with a caller-local pointer).
    OwnerConfined,
    /// May escape the allocating node.
    Shared,
}

impl fmt::Display for EscapeVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeVerdict::NodeLocal => write!(f, "node-local"),
            EscapeVerdict::OwnerConfined => write!(f, "owner-confined"),
            EscapeVerdict::Shared => write!(f, "shared"),
        }
    }
}

/// Why the optimizer compiled a pointer's dereferences as plain local
/// operations. Recorded in the `MotionLog`; independently re-derived by
/// `earth-lint` (ESC001–ESC003).
#[derive(Debug, Clone, PartialEq)]
pub struct EscapeJustification {
    /// The upgraded variable.
    pub var: VarId,
    /// Its source name, for human-readable logs.
    pub var_name: String,
    /// The verdict that licensed the upgrade.
    pub verdict: EscapeVerdict,
    /// For owner-confined *parameters*: the parameter index whose call
    /// sites the validator re-checks against the owner-binding rule.
    pub param_index: Option<usize>,
}

impl fmt::Display for EscapeJustification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` proven {}",
            self.var, self.var_name, self.verdict
        )?;
        if let Some(i) = self.param_index {
            write!(f, " (param {i} owner-bound at every call site)")?;
        }
        Ok(())
    }
}

/// The whole-program escape analysis result.
#[derive(Debug, Clone)]
pub struct EscapeAnalysis {
    /// Per-function offsets into the global variable index space.
    offsets: Vec<usize>,
    /// Final class representative of each global variable index.
    rep: Vec<usize>,
    /// Indexed by representative: region proven `NodeLocal`.
    node_local: Vec<bool>,
    /// Owner-confined (provably node-local) variables per function.
    affinity: AffinityLocals,
    /// Locality upgrades per function, ordered by variable id.
    upgrades: Vec<Vec<EscapeJustification>>,
    /// Number of distinct pointer regions proven `NodeLocal`.
    pub regions_node_local: usize,
    /// Number of distinct pointer regions classified `Shared`.
    pub regions_shared: usize,
}

impl EscapeAnalysis {
    /// Runs the analysis over the whole program. `summaries` must come from
    /// [`analyze_effects`](crate::effects::analyze_effects) on the same
    /// program.
    pub fn compute(prog: &Program, summaries: &[Summary]) -> EscapeAnalysis {
        Self::build(prog, summaries, false)
    }

    /// Baseline hook for the qcheck ablation: every region is forced to
    /// `Shared` and no upgrades are produced, so applying the result must
    /// reproduce the unoptimized-escape pipeline byte for byte.
    pub fn forced_shared(prog: &Program, summaries: &[Summary]) -> EscapeAnalysis {
        Self::build(prog, summaries, true)
    }

    fn build(prog: &Program, summaries: &[Summary], force_shared: bool) -> EscapeAnalysis {
        let funcs = prog.functions();
        let mut offsets = Vec::with_capacity(funcs.len());
        let mut total = 0usize;
        for f in funcs {
            offsets.push(total);
            total += f.vars().len();
        }
        let mut uf = UnionFind::new(total);

        // Pointer return variables (and whether any `return` is bare or
        // constant) per function, for dst↔return unification.
        let ret_vars: Vec<Vec<VarId>> = funcs
            .iter()
            .map(|f| {
                let mut out = Vec::new();
                f.body.walk(&mut |s| {
                    if let StmtKind::Basic(Basic::Return(Some(Operand::Var(v)))) = &s.kind {
                        if f.var(*v).ty.is_ptr() {
                            out.push(*v);
                        }
                    }
                });
                out
            })
            .collect();

        // Call-site count per callee (a function with none has unknown
        // callers; its pointer parameters are tainted below).
        let mut n_sites = vec![0usize; funcs.len()];

        // --- Unification ---------------------------------------------------
        for (fid, f) in prog.iter_functions() {
            let base = offsets[fid.index()];
            let is_ptr = |v: VarId| f.var(v).ty.is_ptr();
            f.body.walk(&mut |s: &Stmt| {
                let StmtKind::Basic(b) = &s.kind else { return };
                match b {
                    Basic::Assign { dst, src } => match (dst, src) {
                        (Place::Var(d), Rvalue::Use(Operand::Var(q)))
                            if is_ptr(*d) && is_ptr(*q) =>
                        {
                            uf.union(base + d.index(), base + q.index());
                        }
                        // Loads pull the destination into the base's region
                        // (everything reachable from one pointer is one
                        // region — this is what lets verdicts flow
                        // *through* loads).
                        (Place::Var(d), Rvalue::Load(m)) if is_ptr(*d) => {
                            uf.union(base + d.index(), base + m.base().index());
                        }
                        (Place::Mem(m), Rvalue::Use(Operand::Var(q))) if is_ptr(*q) => {
                            uf.union(base + m.base().index(), base + q.index());
                        }
                        _ => {}
                    },
                    Basic::BlkMov { ptr, buf, .. } => {
                        uf.union(base + ptr.index(), base + buf.index());
                    }
                    Basic::Call {
                        dst, func, args, ..
                    } => {
                        n_sites[func.index()] += 1;
                        let callee = prog.function(*func);
                        let cbase = offsets[func.index()];
                        for (i, a) in args.iter().enumerate() {
                            if let (Operand::Var(v), Some(&p)) = (a, callee.params.get(i)) {
                                if is_ptr(*v) && callee.var(p).ty.is_ptr() {
                                    uf.union(base + v.index(), cbase + p.index());
                                }
                            }
                        }
                        if let Some(d) = dst {
                            if is_ptr(*d) {
                                for &r in &ret_vars[func.index()] {
                                    uf.union(base + d.index(), cbase + r.index());
                                }
                            }
                        }
                        // Caller-visible summary effects (redundant with the
                        // direct bindings above, kept for parity with the
                        // per-function connection analysis).
                        let sum = &summaries[func.index()];
                        for &(i, j) in &sum.merges {
                            if let (Some(Operand::Var(a)), Some(Operand::Var(b))) =
                                (args.get(i).copied(), args.get(j).copied())
                            {
                                if is_ptr(a) && is_ptr(b) {
                                    uf.union(base + a.index(), base + b.index());
                                }
                            }
                        }
                        if let Some(d) = dst {
                            if is_ptr(*d) {
                                for &root in &sum.ret_roots {
                                    if let Root::Param(i) = root {
                                        if let Some(Operand::Var(a)) = args.get(i).copied() {
                                            if is_ptr(a) {
                                                uf.union(base + d.index(), base + a.index());
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            });
        }

        // --- Taint & allocation marking ------------------------------------
        let mut taint_seeds: Vec<usize> = Vec::new();
        let mut alloc_seeds: Vec<usize> = Vec::new();
        for (fid, f) in prog.iter_functions() {
            let base = offsets[fid.index()];
            for (v, decl) in f.iter_vars() {
                if decl.shared {
                    taint_seeds.push(base + v.index());
                }
            }
            collect_taints(
                prog,
                f,
                &f.body,
                false,
                base,
                &offsets,
                &ret_vars,
                &mut taint_seeds,
                &mut alloc_seeds,
            );
        }
        for (fid, f) in prog.iter_functions() {
            if n_sites[fid.index()] == 0 {
                let base = offsets[fid.index()];
                for &p in &f.params {
                    if f.var(p).ty.is_ptr() {
                        taint_seeds.push(base + p.index());
                    }
                }
            }
        }

        let mut tainted = vec![force_shared; total];
        for s in taint_seeds {
            let r = uf.find(s);
            tainted[r] = true;
        }
        let mut has_alloc = vec![false; total];
        for s in alloc_seeds {
            let r = uf.find(s);
            has_alloc[r] = true;
        }
        let rep: Vec<usize> = (0..total).map(|i| uf.find(i)).collect();
        let node_local: Vec<bool> = (0..total)
            .map(|i| rep[i] == i && !tainted[i] && has_alloc[i])
            .collect();

        // Region counters, over classes containing at least one pointer var.
        let mut seen = vec![false; total];
        let mut regions_node_local = 0;
        let mut regions_shared = 0;
        for (fid, f) in prog.iter_functions() {
            let base = offsets[fid.index()];
            for (v, decl) in f.iter_vars() {
                if !decl.ty.is_ptr() {
                    continue;
                }
                let r = rep[base + v.index()];
                if !seen[r] {
                    seen[r] = true;
                    if node_local[r] {
                        regions_node_local += 1;
                    } else {
                        regions_shared += 1;
                    }
                }
            }
        }

        // --- Upgrades ------------------------------------------------------
        let affinity = if force_shared {
            AffinityLocals::empty(funcs.len())
        } else {
            affinity::compute(prog)
        };
        let mut upgrades: Vec<Vec<EscapeJustification>> = vec![Vec::new(); funcs.len()];
        if !force_shared {
            for (fid, f) in prog.iter_functions() {
                let base = offsets[fid.index()];
                for (v, decl) in f.iter_vars() {
                    if !decl.ty.is_ptr() || decl.locality != Locality::MaybeRemote {
                        continue;
                    }
                    let j = if node_local[rep[base + v.index()]] {
                        Some(EscapeJustification {
                            var: v,
                            var_name: decl.name.clone(),
                            verdict: EscapeVerdict::NodeLocal,
                            param_index: None,
                        })
                    } else if affinity.is_local(fid, v) {
                        Some(EscapeJustification {
                            var: v,
                            var_name: decl.name.clone(),
                            verdict: EscapeVerdict::OwnerConfined,
                            param_index: f.params.iter().position(|&p| p == v),
                        })
                    } else {
                        None
                    };
                    if let Some(j) = j {
                        upgrades[fid.index()].push(j);
                    }
                }
            }
        }

        EscapeAnalysis {
            offsets,
            rep,
            node_local,
            affinity,
            upgrades,
            regions_node_local,
            regions_shared,
        }
    }

    /// Whether `v`'s region (in function `fid`) is proven `NodeLocal`.
    pub fn region_is_node_local(&self, fid: FuncId, v: VarId) -> bool {
        self.node_local[self.rep[self.offsets[fid.index()] + v.index()]]
    }

    /// The lattice verdict for one variable: its region's verdict, refined
    /// to `OwnerConfined` when the affinity fixpoint proves the variable
    /// itself node-local.
    pub fn verdict(&self, fid: FuncId, v: VarId) -> EscapeVerdict {
        if self.region_is_node_local(fid, v) {
            EscapeVerdict::NodeLocal
        } else if self.affinity.is_local(fid, v) {
            EscapeVerdict::OwnerConfined
        } else {
            EscapeVerdict::Shared
        }
    }

    /// The affinity (owner-confined) half of the result.
    pub fn affinity(&self) -> &AffinityLocals {
        &self.affinity
    }

    /// The locality upgrades the optimizer may apply in function `fid`.
    pub fn upgrades_for(&self, fid: FuncId) -> &[EscapeJustification] {
        &self.upgrades[fid.index()]
    }

    /// Total number of upgradable variables across the program.
    pub fn total_upgrades(&self) -> usize {
        self.upgrades.iter().map(Vec::len).sum()
    }

    /// Applies the upgrades for `fid` to (a clone of) its function,
    /// returning the justifications for the `MotionLog`.
    pub fn apply(&self, fid: FuncId, func: &mut Function) -> Vec<EscapeJustification> {
        let ups = &self.upgrades[fid.index()];
        for j in ups {
            func.var_mut(j.var).locality = Locality::Local;
        }
        ups.clone()
    }
}

/// Recursive taint walk; `in_par` is true inside `forall` bodies and
/// ParSeq arms, where any mentioned pointer conservatively escapes.
#[allow(clippy::too_many_arguments)]
fn collect_taints(
    prog: &Program,
    f: &Function,
    s: &Stmt,
    in_par: bool,
    base: usize,
    offsets: &[usize],
    ret_vars: &[Vec<VarId>],
    taints: &mut Vec<usize>,
    allocs: &mut Vec<usize>,
) {
    let mut rec = |child: &Stmt, par: bool| {
        collect_taints(prog, f, child, par, base, offsets, ret_vars, taints, allocs)
    };
    match &s.kind {
        StmtKind::Seq(ss) => ss.iter().for_each(|c| rec(c, in_par)),
        StmtKind::ParSeq(ss) => ss.iter().for_each(|c| rec(c, true)),
        StmtKind::If { then_s, else_s, .. } => {
            rec(then_s, in_par);
            rec(else_s, in_par);
        }
        StmtKind::Switch { cases, default, .. } => {
            cases.iter().for_each(|(_, c)| rec(c, in_par));
            rec(default, in_par);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => rec(body, in_par),
        StmtKind::Forall {
            init, step, body, ..
        } => {
            rec(init, true);
            rec(step, true);
            rec(body, true);
        }
        StmtKind::Basic(b) => {
            let is_ptr = |v: VarId| f.var(v).ty.is_ptr();
            if in_par {
                // Distributed/concurrent context: every pointer mentioned
                // may be dereferenced away from its allocating node.
                for v in basic_pointer_vars(b, f) {
                    taints.push(base + v.index());
                }
            }
            match b {
                Basic::Assign {
                    dst,
                    src: Rvalue::Malloc { on, .. },
                } => {
                    let d = match dst {
                        Place::Var(d) => *d,
                        Place::Mem(m) => m.base(),
                    };
                    if on.is_some() {
                        taints.push(base + d.index());
                    } else if !in_par {
                        allocs.push(base + d.index());
                    }
                }
                Basic::Call {
                    dst,
                    func,
                    args,
                    at: Some(_),
                } => {
                    // A placed call executes on another node: everything
                    // bound across it escapes — caller-side arguments and
                    // destination, callee-side parameters and returns.
                    for a in args {
                        if let Operand::Var(v) = a {
                            if is_ptr(*v) {
                                taints.push(base + v.index());
                            }
                        }
                    }
                    if let Some(d) = dst {
                        if is_ptr(*d) {
                            taints.push(base + d.index());
                        }
                    }
                    let callee = prog.function(*func);
                    let cbase = offsets[func.index()];
                    for &p in &callee.params {
                        if callee.var(p).ty.is_ptr() {
                            taints.push(cbase + p.index());
                        }
                    }
                    for &r in &ret_vars[func.index()] {
                        taints.push(cbase + r.index());
                    }
                }
                _ => {}
            }
        }
    }
}

/// Every pointer variable syntactically mentioned by a basic statement.
fn basic_pointer_vars(b: &Basic, f: &Function) -> Vec<VarId> {
    let mut out = Vec::new();
    let mut push = |v: VarId| {
        if f.var(v).ty.is_ptr() {
            out.push(v);
        }
    };
    for op in b.operands() {
        if let Operand::Var(v) = op {
            push(v);
        }
    }
    match b {
        Basic::Assign { dst, src } => {
            match dst {
                Place::Var(d) => push(*d),
                Place::Mem(m) => push(m.base()),
            }
            if let Rvalue::Load(m) = src {
                push(m.base());
            }
        }
        Basic::Call { dst, at, .. } => {
            if let Some(d) = dst {
                push(*d);
            }
            if let Some(AtTarget::OwnerOf(o)) = at {
                push(*o);
            }
        }
        Basic::BlkMov { ptr, buf, .. } => {
            push(*ptr);
            push(*buf);
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use earth_frontend::compile;

    fn escape_of(src: &str) -> (Program, EscapeAnalysis) {
        let prog = compile(src).unwrap();
        let analysis = analyze(&prog);
        let esc = EscapeAnalysis::compute(&prog, &analysis.summaries);
        (prog, esc)
    }

    const LIST_WALK: &str = r#"
        struct N { N* next; int v; };
        int walk(N *list) {
            N *p;
            int acc;
            acc = 0;
            p = list;
            while (p != NULL) {
                acc = acc + p->v;
                p = p->next;
            }
            return acc;
        }
        int main() {
            N *head;
            N *n;
            int i;
            int t;
            head = NULL;
            i = 0;
            while (i < 8) {
                n = malloc(sizeof(N));
                n->v = i;
                n->next = head;
                head = n;
                i = i + 1;
            }
            t = walk(head);
            return t;
        }
    "#;

    #[test]
    fn node_local_region_upgrades_through_loads() {
        let (prog, esc) = escape_of(LIST_WALK);
        let walk = prog.function_by_name("walk").unwrap();
        let f = prog.function(walk);
        let p = f.var_by_name("p").unwrap();
        let list = f.var_by_name("list").unwrap();
        // The load-derived cursor — the case locality inference forbids —
        // is provably node-local here.
        assert_eq!(esc.verdict(walk, p), EscapeVerdict::NodeLocal);
        assert_eq!(esc.verdict(walk, list), EscapeVerdict::NodeLocal);
        let names: Vec<&str> = esc
            .upgrades_for(walk)
            .iter()
            .map(|j| j.var_name.as_str())
            .collect();
        assert!(names.contains(&"p") && names.contains(&"list"));
        assert!(esc.regions_node_local >= 1);
    }

    #[test]
    fn malloc_on_taints_the_whole_region() {
        let (prog, esc) = escape_of(
            r#"
            struct N { N* next; int v; };
            int main() {
                N *head;
                N *n;
                N *p;
                int acc;
                head = malloc_on(1, sizeof(N));
                n = malloc(sizeof(N));
                n->next = head;
                acc = 0;
                p = n;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        );
        let main = prog.function_by_name("main").unwrap();
        let f = prog.function(main);
        // The whole region is tainted: no variable in it is NodeLocal, so
        // the load-derived cursor stays remote.
        for name in ["head", "n", "p"] {
            let v = f.var_by_name(name).unwrap();
            assert!(!esc.region_is_node_local(main, v), "{name}");
        }
        assert_eq!(
            esc.verdict(main, f.var_by_name("head").unwrap()),
            EscapeVerdict::Shared
        );
        assert_eq!(
            esc.verdict(main, f.var_by_name("p").unwrap()),
            EscapeVerdict::Shared
        );
        // `n` still points at its own plain malloc: owner-confined, the
        // same upgrade locality inference Rule 2 would grant.
        assert_eq!(
            esc.verdict(main, f.var_by_name("n").unwrap()),
            EscapeVerdict::OwnerConfined
        );
    }

    #[test]
    fn placed_call_taints_across_the_boundary() {
        let src = r#"
            struct N { N* next; int v; };
            int peek(N *q) { return q->v; }
            int main() {
                N *head;
                int t;
                head = malloc(sizeof(N));
                head->v = 3;
                t = peek(head) @ 1;
                return t;
            }
        "#;
        let (prog, esc) = escape_of(src);
        let main = prog.function_by_name("main").unwrap();
        let peek = prog.function_by_name("peek").unwrap();
        let head = prog.function(main).var_by_name("head").unwrap();
        let q = prog.function(peek).var_by_name("q").unwrap();
        // The placed call taints the region on both sides of the boundary,
        // so the callee's parameter stays remote...
        assert!(!esc.region_is_node_local(main, head));
        assert_eq!(esc.verdict(peek, q), EscapeVerdict::Shared);
        // ... while the caller's own pointer still targets its plain local
        // malloc (owner-confined), exactly like locality inference today.
        assert_eq!(esc.verdict(main, head), EscapeVerdict::OwnerConfined);
    }

    #[test]
    fn unplaced_call_keeps_the_region_node_local() {
        let (prog, esc) = escape_of(LIST_WALK);
        let main = prog.function_by_name("main").unwrap();
        let head = prog.function(main).var_by_name("head").unwrap();
        assert_eq!(esc.verdict(main, head), EscapeVerdict::NodeLocal);
    }

    #[test]
    fn parseq_access_taints() {
        let (prog, esc) = escape_of(
            r#"
            struct N { N* next; int v; };
            int main() {
                N *a;
                int x;
                int y;
                a = malloc(sizeof(N));
                {^
                    x = a->v;
                    y = 2;
                ^}
                return x + y;
            }
        "#,
        );
        let main = prog.function_by_name("main").unwrap();
        let a = prog.function(main).var_by_name("a").unwrap();
        // Cross-arm access disqualifies the *region* (no through-load
        // upgrades); the direct malloc'd pointer itself remains
        // owner-confined, as under today's inference.
        assert!(!esc.region_is_node_local(main, a));
        assert_eq!(esc.verdict(main, a), EscapeVerdict::OwnerConfined);
    }

    #[test]
    fn owner_confined_param_gets_param_index() {
        let (prog, esc) = escape_of(
            r#"
            struct N { N* next; int v; };
            int peek(N *p) { return p->v; }
            int drive(N *q) {
                int t;
                t = peek(q) @ OWNER_OF(q);
                return t;
            }
        "#,
        );
        let peek = prog.function_by_name("peek").unwrap();
        let ups = esc.upgrades_for(peek);
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].verdict, EscapeVerdict::OwnerConfined);
        assert_eq!(ups[0].param_index, Some(0));
        assert_eq!(ups[0].var_name, "p");
    }

    #[test]
    fn forced_shared_produces_no_upgrades() {
        let prog = compile(LIST_WALK).unwrap();
        let analysis = analyze(&prog);
        let esc = EscapeAnalysis::forced_shared(&prog, &analysis.summaries);
        assert_eq!(esc.total_upgrades(), 0);
        assert_eq!(esc.regions_node_local, 0);
        for (fid, f) in prog.iter_functions() {
            for (v, decl) in f.iter_vars() {
                if decl.ty.is_ptr() {
                    assert_eq!(esc.verdict(fid, v), EscapeVerdict::Shared);
                }
            }
        }
    }

    #[test]
    fn already_local_vars_are_not_reupgraded() {
        let (prog, esc) = escape_of(
            r#"
            struct N { N* next; int v; };
            int main() {
                N local *a;
                a = malloc(sizeof(N));
                a->v = 1;
                return a->v;
            }
        "#,
        );
        let main = prog.function_by_name("main").unwrap();
        assert!(esc.upgrades_for(main).is_empty());
    }
}
