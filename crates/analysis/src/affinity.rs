//! Node-affinity analysis: pointer variables whose targets provably live
//! on the node executing the enclosing function.
//!
//! This is the *owner-confined* half of the escape machinery (see
//! [`escape`](crate::escape) for the region half). It generalizes the two
//! locality-inference rules of `locality.rs` into one whole-program least
//! fixpoint over "provably local" pointer variables:
//!
//! * a plain `malloc` (no `@ on` clause) allocates on the executing node;
//! * `NULL` and copies of provably-local pointers stay provably local;
//! * a parameter is provably local when **every** call site either binds it
//!   as the owner anchor of the call's own placement — `g(p) @ OWNER_OF(p)`
//!   runs `g` on the node owning `*p`, so `p` is local *inside* `g` — or is
//!   an **unplaced** call (which executes synchronously on the caller's
//!   node) passing a pointer that is provably local in the caller;
//! * the result of an unplaced call is provably local when every `return`
//!   of the callee returns a provably-local pointer (or `NULL`).
//!
//! Any other definition (a load `p = q->f`, a placed call result, a
//! `malloc_on`) is opaque and disqualifies the variable; so does a function
//! with no visible call sites (its callers are unknown). The fixpoint only
//! ever *adds* variables, so it terminates and is conservative.
//!
//! Unlike `locality.rs`, which mutates `VarDecl::locality` as a standalone
//! pass, this module only *computes*; the escape analysis turns its verdicts
//! into [`EscapeJustification`](crate::escape::EscapeJustification)s that
//! the optimizer applies and `earth-lint` independently re-derives (ESC003).

use earth_ir::{AtTarget, FuncId, Function, Locality, Operand, Place, Program, Rvalue, StmtKind};
use earth_ir::{Basic, VarId};
use std::collections::BTreeSet;

/// Per-function sets of provably-local pointer variables.
#[derive(Debug, Clone)]
pub struct AffinityLocals {
    per_func: Vec<BTreeSet<VarId>>,
}

impl AffinityLocals {
    /// A result with no verdicts for a program of `n` functions (the
    /// escape analysis' forced-`Shared` baseline).
    pub fn empty(n: usize) -> AffinityLocals {
        AffinityLocals {
            per_func: vec![BTreeSet::new(); n],
        }
    }

    /// Whether `v` (in function `fid`) is provably local.
    pub fn is_local(&self, fid: FuncId, v: VarId) -> bool {
        self.per_func[fid.index()].contains(&v)
    }

    /// The provably-local set of one function.
    pub fn locals(&self, fid: FuncId) -> &BTreeSet<VarId> {
        &self.per_func[fid.index()]
    }
}

/// One call site of some callee, seen from the caller's side.
#[derive(Debug, Clone)]
struct CallSite {
    caller: FuncId,
    args: Vec<Operand>,
    at: Option<AtTarget>,
}

/// How a pointer variable is defined at one assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DefSrc {
    /// `p = q` — local iff `q` is.
    CopyOf(VarId),
    /// `p = malloc(sizeof(S))` with no placement — allocates here.
    LocalMalloc,
    /// `p = NULL` (or another constant).
    Konst,
    /// `p = g(...)` with no `@` — local iff every return of `g` is.
    UnplacedCallTo(FuncId),
    /// Anything else: load, placed call, `malloc_on`, builtin, ...
    Opaque,
}

fn collect_defs(f: &Function) -> Vec<Vec<DefSrc>> {
    let mut defs: Vec<Vec<DefSrc>> = vec![Vec::new(); f.vars().len()];
    f.body.walk(&mut |s| {
        let StmtKind::Basic(b) = &s.kind else { return };
        match b {
            Basic::Assign {
                dst: Place::Var(d),
                src,
            } if f.var(*d).ty.is_ptr() => {
                let src = match src {
                    Rvalue::Use(Operand::Var(q)) => DefSrc::CopyOf(*q),
                    Rvalue::Use(Operand::Const(_)) => DefSrc::Konst,
                    Rvalue::Malloc { on: None, .. } => DefSrc::LocalMalloc,
                    _ => DefSrc::Opaque,
                };
                defs[d.index()].push(src);
            }
            Basic::Call {
                dst: Some(d),
                func,
                at,
                ..
            } if f.var(*d).ty.is_ptr() => {
                defs[d.index()].push(match at {
                    None => DefSrc::UnplacedCallTo(*func),
                    Some(_) => DefSrc::Opaque,
                });
            }
            _ => {}
        }
    });
    defs
}

fn collect_call_sites(prog: &Program) -> Vec<Vec<CallSite>> {
    let mut sites: Vec<Vec<CallSite>> = vec![Vec::new(); prog.functions().len()];
    for (caller, f) in prog.iter_functions() {
        f.body.walk(&mut |s| {
            if let StmtKind::Basic(Basic::Call { func, args, at, .. }) = &s.kind {
                sites[func.index()].push(CallSite {
                    caller,
                    args: args.clone(),
                    at: *at,
                });
            }
        });
    }
    sites
}

/// Every `return` payload of `f` (`None` entries are bare `return;`).
fn collect_returns(f: &Function) -> Vec<Option<Operand>> {
    let mut out = Vec::new();
    f.body.walk(&mut |s| {
        if let StmtKind::Basic(Basic::Return(op)) = &s.kind {
            out.push(*op);
        }
    });
    out
}

/// Does call site `site` keep parameter `i` of `callee` node-local?
fn site_binds_param_local(site: &CallSite, i: usize, locals: &[BTreeSet<VarId>]) -> bool {
    match (&site.at, site.args.get(i)) {
        // g(p, ...) @ OWNER_OF(p): the callee runs on the node owning *p.
        (Some(AtTarget::OwnerOf(o)), Some(Operand::Var(a))) => a == o,
        // Unplaced call: runs on the caller's node; the argument must be
        // provably local *there* (or NULL).
        (None, Some(Operand::Var(a))) => locals[site.caller.index()].contains(a),
        (None, Some(Operand::Const(_))) => true,
        _ => false,
    }
}

/// Computes the provably-local sets for the whole program.
pub fn compute(prog: &Program) -> AffinityLocals {
    let n = prog.functions().len();
    let mut locals: Vec<BTreeSet<VarId>> = vec![BTreeSet::new(); n];

    // Seed: source-declared (or previously inferred) `local` pointers.
    for (fid, f) in prog.iter_functions() {
        for (v, decl) in f.iter_vars() {
            if decl.ty.is_ptr() && decl.locality == Locality::Local {
                locals[fid.index()].insert(v);
            }
        }
    }

    let defs: Vec<Vec<Vec<DefSrc>>> = prog.functions().iter().map(collect_defs).collect();
    let sites = collect_call_sites(prog);
    let returns: Vec<Vec<Option<Operand>>> = prog.functions().iter().map(collect_returns).collect();

    // Least fixpoint: only ever adds variables, so it terminates.
    loop {
        let mut changed = false;
        for (fid, f) in prog.iter_functions() {
            for (v, decl) in f.iter_vars() {
                if !decl.ty.is_ptr() || locals[fid.index()].contains(&v) {
                    continue;
                }
                let def_ok = |d: &DefSrc| match d {
                    DefSrc::CopyOf(q) => locals[fid.index()].contains(q),
                    DefSrc::LocalMalloc | DefSrc::Konst => true,
                    DefSrc::UnplacedCallTo(g) => {
                        let rets = &returns[g.index()];
                        !rets.is_empty()
                            && rets.iter().all(|r| match r {
                                Some(Operand::Var(rv)) => locals[g.index()].contains(rv),
                                Some(Operand::Const(_)) => true,
                                None => false,
                            })
                    }
                    DefSrc::Opaque => false,
                };
                let vdefs = &defs[fid.index()][v.index()];
                let ok = if let Some(i) = f.params.iter().position(|&p| p == v) {
                    // A parameter: every visible call site must bind it
                    // locally, and any reassignment must preserve locality.
                    let fsites = &sites[fid.index()];
                    !fsites.is_empty()
                        && fsites.iter().all(|s| site_binds_param_local(s, i, &locals))
                        && vdefs.iter().all(def_ok)
                } else {
                    // An ordinary variable: needs at least one definition,
                    // all of them locality-preserving.
                    !vdefs.is_empty() && vdefs.iter().all(def_ok)
                };
                if ok {
                    locals[fid.index()].insert(v);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    AffinityLocals { per_func: locals }
}

/// Re-checks the call-site half of the owner-confined rule for parameter
/// `i` of `callee` — the independent re-derivation behind lint rule ESC003.
pub fn param_owner_bound(
    prog: &Program,
    locals: &AffinityLocals,
    callee: FuncId,
    i: usize,
) -> bool {
    let sites = collect_call_sites(prog);
    let fsites = &sites[callee.index()];
    !fsites.is_empty()
        && fsites
            .iter()
            .all(|s| site_binds_param_local(s, i, &locals.per_func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn locals_of(src: &str, func: &str) -> (Program, FuncId, AffinityLocals) {
        let prog = compile(src).unwrap();
        let fid = prog.function_by_name(func).unwrap();
        let locals = compute(&prog);
        (prog, fid, locals)
    }

    #[test]
    fn owner_bound_param_is_local() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            int peek(N *p) { return p->v; }
            int drive(N *p) {
                int t;
                t = peek(p) @ OWNER_OF(p);
                return t;
            }
        "#,
            "peek",
        );
        let p = prog.function(fid).var_by_name("p").unwrap();
        assert!(locals.is_local(fid, p));
        // drive's own param has no visible call site: unknown callers.
        let drive = prog.function_by_name("drive").unwrap();
        let dp = prog.function(drive).var_by_name("p").unwrap();
        assert!(!locals.is_local(drive, dp));
    }

    #[test]
    fn mixed_sites_need_local_args_at_unplaced_calls() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            int peek(N *p) { return p->v; }
            int drive(N *q) {
                N *m;
                int a;
                int b;
                m = malloc(sizeof(N));
                a = peek(m);
                b = peek(q) @ OWNER_OF(q);
                return a + b;
            }
        "#,
            "peek",
        );
        let p = prog.function(fid).var_by_name("p").unwrap();
        // Both sites qualify: unplaced-with-local-malloc and owner-bound.
        assert!(locals.is_local(fid, p));
    }

    #[test]
    fn non_owner_placement_disqualifies() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            int peek(N *p) { return p->v; }
            int drive(N *q) {
                int t;
                t = peek(q) @ 1;
                return t;
            }
        "#,
            "peek",
        );
        let p = prog.function(fid).var_by_name("p").unwrap();
        assert!(!locals.is_local(fid, p));
    }

    #[test]
    fn load_argument_at_unplaced_call_disqualifies() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            int peek(N *p) { return p->v; }
            int drive(N *q) {
                N *c;
                int t;
                c = q->next;
                t = peek(c);
                return t;
            }
        "#,
            "peek",
        );
        let p = prog.function(fid).var_by_name("p").unwrap();
        assert!(!locals.is_local(fid, p));
    }

    #[test]
    fn returns_local_flows_through_unplaced_calls() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            N* mk() {
                N *n;
                n = malloc(sizeof(N));
                return n;
            }
            int use() {
                N *r;
                r = mk();
                return r->v;
            }
        "#,
            "use",
        );
        let r = prog.function(fid).var_by_name("r").unwrap();
        assert!(locals.is_local(fid, r));
    }

    #[test]
    fn placed_call_result_and_malloc_on_are_opaque() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            N* mk() {
                N *n;
                n = malloc(sizeof(N));
                return n;
            }
            int use() {
                N *far;
                N *m;
                far = mk() @ 1;
                m = malloc_on(1, sizeof(N));
                return far->v + m->v;
            }
        "#,
            "use",
        );
        let f = prog.function(fid);
        assert!(!locals.is_local(fid, f.var_by_name("far").unwrap()));
        assert!(!locals.is_local(fid, f.var_by_name("m").unwrap()));
    }

    #[test]
    fn reassigned_param_must_stay_local() {
        let (prog, fid, locals) = locals_of(
            r#"
            struct N { N* next; int v; };
            int hop(N *p) {
                int a;
                a = p->v;
                p = p->next;
                return a + p->v;
            }
            int drive(N *q) {
                int t;
                t = hop(q) @ OWNER_OF(q);
                return t;
            }
        "#,
            "hop",
        );
        // Every call site is owner-bound, but `p = p->next` re-points the
        // parameter at a possibly-remote node: it must not be upgraded.
        let p = prog.function(fid).var_by_name("p").unwrap();
        assert!(!locals.is_local(fid, p));
    }
}
