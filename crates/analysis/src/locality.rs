//! Locality analysis (a simplified version of Zhu & Hendren, PACT'97).
//!
//! The EARTH-C compiler assumes every pointer dereference is remote unless
//! the pointer is declared `local` or proven local. This pass upgrades
//! pointer declarations from [`Locality::MaybeRemote`] to
//! [`Locality::Local`] when:
//!
//! 1. **Owner-call parameters** — every call to function `g` places the
//!    call `@OWNER_OF(a_j)` on its own `j`-th argument; then `g`'s `j`-th
//!    parameter points to memory local to the executing node.
//! 2. **Local propagation** — a pointer variable whose every definition is
//!    a copy of a `local` pointer or a plain `malloc()` (which allocates on
//!    the executing node) is itself local.
//!
//! The inference is deliberately conservative: loads (`p = q->next`) never
//! produce local pointers (the field may point anywhere), and `malloc_on`
//! with an arbitrary node expression is not considered local.
//!
//! The simulator validates soundness at runtime: an access compiled as
//! local that reaches a remote address aborts the simulation.

use earth_ir::{
    AtTarget, Basic, FuncId, Locality, Operand, Place, Program, Rvalue, StmtKind, VarId,
};
use std::collections::{HashMap, HashSet};

/// Result of [`infer_locality`]: which variables were upgraded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalityReport {
    /// `(function, variable)` pairs newly marked local.
    pub upgraded: Vec<(FuncId, VarId)>,
}

impl LocalityReport {
    /// Number of upgraded variables.
    pub fn len(&self) -> usize {
        self.upgraded.len()
    }

    /// Whether nothing was upgraded.
    pub fn is_empty(&self) -> bool {
        self.upgraded.is_empty()
    }
}

/// Runs locality inference, mutating variable declarations in `prog`.
///
/// # Examples
///
/// ```
/// let mut prog = earth_frontend::compile(r#"
///     struct N { int v; };
///     int peek(N *p) { return p->v; }
///     int main() {
///         N *n;
///         n = malloc(sizeof(N));
///         n->v = 3;
///         return peek(n) @ OWNER_OF(n);
///     }
/// "#).unwrap();
/// let report = earth_analysis::infer_locality(&mut prog);
/// // Both `n` (fresh local allocation) and `peek`'s parameter (always
/// // called at the owner) become provably local.
/// assert_eq!(report.len(), 2);
/// ```
pub fn infer_locality(prog: &mut Program) -> LocalityReport {
    let mut report = LocalityReport::default();

    // Rule 1: owner-call parameters. Collect, per function, per parameter
    // index, whether every call site is `@OWNER_OF` of that same argument.
    // A function that is never called keeps its declared locality.
    let mut always_owner: HashMap<(FuncId, usize), bool> = HashMap::new();
    let mut called: HashSet<FuncId> = HashSet::new();
    for (_, f) in prog.iter_functions() {
        f.body.walk(&mut |s| {
            if let StmtKind::Basic(Basic::Call { func, args, at, .. }) = &s.kind {
                called.insert(*func);
                for (j, a) in args.iter().enumerate() {
                    let owner_here = matches!(
                        (a, at),
                        (Operand::Var(v), Some(AtTarget::OwnerOf(o))) if v == o
                    );
                    always_owner
                        .entry((*func, j))
                        .and_modify(|b| *b &= owner_here)
                        .or_insert(owner_here);
                }
            }
        });
    }
    for ((fid, j), ok) in &always_owner {
        if !*ok {
            continue;
        }
        let f = prog.function_mut(*fid);
        let Some(&param) = f.params.get(*j) else {
            continue;
        };
        let d = f.var_mut(param);
        if d.ty.is_ptr() && d.locality == Locality::MaybeRemote {
            d.locality = Locality::Local;
            report.upgraded.push((*fid, param));
        }
    }

    // Rule 2: local propagation within each function, to a fixed point.
    loop {
        let mut changed = false;
        let fids: Vec<FuncId> = prog.iter_functions().map(|(id, _)| id).collect();
        for fid in fids {
            let f = prog.function(fid);
            // Collect candidate vars: non-param pointers not yet local.
            let mut defs: HashMap<VarId, Vec<DefKind>> = HashMap::new();
            f.body.walk(&mut |s| {
                let mut record = |b: &Basic| match b {
                    Basic::Assign {
                        dst: Place::Var(d),
                        src,
                    } if f.var(*d).ty.is_ptr() => {
                        let kind = match src {
                            Rvalue::Use(Operand::Var(q)) => DefKind::Copy(*q),
                            Rvalue::Use(Operand::Const(_)) => DefKind::NullOrConst,
                            Rvalue::Malloc { on: None, .. } => DefKind::LocalMalloc,
                            _ => DefKind::Other,
                        };
                        defs.entry(*d).or_default().push(kind);
                    }
                    Basic::Call { dst: Some(d), .. } if f.var(*d).ty.is_ptr() => {
                        defs.entry(*d).or_default().push(DefKind::Other);
                    }
                    _ => {}
                };
                match &s.kind {
                    StmtKind::Basic(b) => record(b),
                    StmtKind::Forall { init, step, .. } => {
                        for part in [init, step] {
                            if let StmtKind::Basic(b) = &part.kind {
                                record(b);
                            }
                        }
                    }
                    _ => {}
                }
            });
            let mut upgrades = Vec::new();
            for (v, def_kinds) in &defs {
                if f.params.contains(v) {
                    continue; // parameters also receive values from callers
                }
                if f.var(*v).locality == Locality::Local {
                    continue;
                }
                let all_local = !def_kinds.is_empty()
                    && def_kinds.iter().all(|k| match k {
                        DefKind::LocalMalloc | DefKind::NullOrConst => true,
                        DefKind::Copy(q) => f.var(*q).locality == Locality::Local,
                        DefKind::Other => false,
                    });
                if all_local {
                    upgrades.push(*v);
                }
            }
            if !upgrades.is_empty() {
                let fm = prog.function_mut(fid);
                for v in upgrades {
                    fm.var_mut(v).locality = Locality::Local;
                    report.upgraded.push((fid, v));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    report
}

#[derive(Debug, Clone, Copy)]
enum DefKind {
    Copy(VarId),
    LocalMalloc,
    NullOrConst,
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    #[test]
    fn owner_call_param_becomes_local() {
        let mut prog = compile(
            r#"
            struct node { node* next; int value; };
            int caller(node *p, node *x) {
                int c;
                c = equal_node(p, x) @ OWNER_OF(p);
                return c;
            }
            int equal_node(node *a, node *b) {
                return a->value == b->value;
            }
        "#,
        )
        .unwrap();
        let report = infer_locality(&mut prog);
        let eq = prog.function(prog.function_by_name("equal_node").unwrap());
        let a = eq.var_by_name("a").unwrap();
        let b = eq.var_by_name("b").unwrap();
        assert_eq!(eq.var(a).locality, Locality::Local);
        assert_eq!(eq.var(b).locality, Locality::MaybeRemote);
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn mixed_call_sites_stay_remote() {
        let mut prog = compile(
            r#"
            struct node { node* next; int value; };
            int caller(node *p, node *x) {
                int c;
                int d;
                c = peek(p) @ OWNER_OF(p);
                d = peek(x);
                return c + d;
            }
            int peek(node *a) { return a->value; }
        "#,
        )
        .unwrap();
        infer_locality(&mut prog);
        let peek = prog.function(prog.function_by_name("peek").unwrap());
        let a = peek.var_by_name("a").unwrap();
        assert_eq!(peek.var(a).locality, Locality::MaybeRemote);
    }

    #[test]
    fn local_malloc_propagates_through_copies() {
        let mut prog = compile(
            r#"
            struct node { node* next; int value; };
            node* build() {
                node *n;
                node *m;
                n = malloc(sizeof(node));
                m = n;
                m->value = 3;
                return m;
            }
        "#,
        )
        .unwrap();
        let report = infer_locality(&mut prog);
        let f = prog.function(prog.function_by_name("build").unwrap());
        for name in ["n", "m"] {
            let v = f.var_by_name(name).unwrap();
            assert_eq!(f.var(v).locality, Locality::Local, "{name} should be local");
        }
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn loads_do_not_become_local() {
        let mut prog = compile(
            r#"
            struct node { node* next; int value; };
            int f(node local *p) {
                node *q;
                q = p->next;
                return q->value;
            }
        "#,
        )
        .unwrap();
        infer_locality(&mut prog);
        let f = prog.function(prog.function_by_name("f").unwrap());
        let q = f.var_by_name("q").unwrap();
        assert_eq!(f.var(q).locality, Locality::MaybeRemote);
    }

    #[test]
    fn malloc_on_stays_remote() {
        let mut prog = compile(
            r#"
            struct node { node* next; int value; };
            node* build(int where) {
                node *n;
                n = malloc_on(where, sizeof(node));
                return n;
            }
        "#,
        )
        .unwrap();
        let report = infer_locality(&mut prog);
        assert!(report.is_empty());
    }
}
