//! Hierarchical read/write sets.
//!
//! Every statement — basic *and* compound — is decorated with the set of
//! stack variables it reads/writes and the heap locations it may touch
//! (as `(base pointer variable, field)` pairs, where the base identifies a
//! region via the connection classes of [`crate::effects`]). This mirrors
//! the McCAT side-effect infrastructure the paper builds on: "Each basic
//! and compound statement is decorated with the set of locations
//! read/written."

use crate::effects::{Root, Summary};
use earth_ir::{
    Basic, Cond, FieldId, Function, Label, Operand, Place, Program, Rvalue, Stmt, StmtKind, VarId,
};
use std::collections::BTreeSet;

/// A single (possibly-remote) heap access within a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HeapAccess {
    /// The pointer variable through which the access happens (for call
    /// effects, the actual argument at the call site).
    pub base: VarId,
    /// Accessed field; `None` for whole-struct accesses (block moves,
    /// whole-struct call effects).
    pub field: Option<FieldId>,
    /// `true` when the access is a *syntactic* dereference through `base`
    /// in this very statement (the paper's "direct" access, identified via
    /// anchor handles); `false` for accesses that happen inside callees or
    /// through copies.
    pub direct: bool,
}

/// Read/write set of one statement (aggregated over its children for
/// compound statements).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSet {
    /// Stack variables written (including call result destinations and
    /// atomic-write targets).
    pub vars_written: BTreeSet<VarId>,
    /// Stack variables read.
    pub vars_read: BTreeSet<VarId>,
    /// Heap locations possibly read.
    pub heap_reads: BTreeSet<HeapAccess>,
    /// Heap locations possibly written.
    pub heap_writes: BTreeSet<HeapAccess>,
}

impl RwSet {
    fn absorb(&mut self, other: &RwSet) {
        self.vars_written.extend(other.vars_written.iter().copied());
        self.vars_read.extend(other.vars_read.iter().copied());
        self.heap_reads.extend(other.heap_reads.iter().copied());
        self.heap_writes.extend(other.heap_writes.iter().copied());
    }

    fn read_var(&mut self, o: Operand) {
        if let Operand::Var(v) = o {
            self.vars_read.insert(v);
        }
    }

    fn read_cond(&mut self, c: &Cond) {
        for v in c.vars() {
            self.vars_read.insert(v);
        }
    }
}

/// Per-function table of read/write sets, dense-indexed by [`Label`].
#[derive(Debug, Clone)]
pub struct RwSets {
    sets: Vec<Option<RwSet>>,
}

impl RwSets {
    /// Computes read/write sets for every statement of `f`, using the
    /// callee `summaries` to expand call effects.
    pub fn compute(prog: &Program, f: &Function, summaries: &[Summary]) -> Self {
        let mut sets = vec![None; f.label_bound()];
        compute_stmt(prog, f, summaries, &f.body, &mut sets);
        RwSets { sets }
    }

    /// The read/write set of the statement labelled `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` does not belong to the analyzed function.
    pub fn get(&self, l: Label) -> &RwSet {
        self.sets[l.0 as usize]
            .as_ref()
            .expect("label belongs to the analyzed function")
    }

    /// Whether statement `l` writes variable `v` (directly).
    pub fn var_written(&self, v: VarId, l: Label) -> bool {
        self.get(l).vars_written.contains(&v)
    }
}

fn compute_stmt(
    prog: &Program,
    f: &Function,
    summaries: &[Summary],
    s: &Stmt,
    sets: &mut Vec<Option<RwSet>>,
) -> RwSet {
    let mut rw = RwSet::default();
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            for c in ss {
                let child = compute_stmt(prog, f, summaries, c, sets);
                rw.absorb(&child);
            }
        }
        StmtKind::Basic(b) => {
            basic_rw(prog, f, summaries, b, &mut rw);
        }
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            rw.read_cond(cond);
            let t = compute_stmt(prog, f, summaries, then_s, sets);
            let e = compute_stmt(prog, f, summaries, else_s, sets);
            rw.absorb(&t);
            rw.absorb(&e);
        }
        StmtKind::Switch {
            scrut,
            cases,
            default,
        } => {
            rw.read_var(*scrut);
            for (_, cs) in cases {
                let c = compute_stmt(prog, f, summaries, cs, sets);
                rw.absorb(&c);
            }
            let d = compute_stmt(prog, f, summaries, default, sets);
            rw.absorb(&d);
        }
        StmtKind::While { cond, body } => {
            rw.read_cond(cond);
            let b = compute_stmt(prog, f, summaries, body, sets);
            rw.absorb(&b);
        }
        StmtKind::DoWhile { body, cond } => {
            rw.read_cond(cond);
            let b = compute_stmt(prog, f, summaries, body, sets);
            rw.absorb(&b);
        }
        StmtKind::Forall {
            init,
            cond,
            step,
            body,
        } => {
            rw.read_cond(cond);
            for part in [init, step] {
                let p = compute_stmt(prog, f, summaries, part, sets);
                rw.absorb(&p);
            }
            let b = compute_stmt(prog, f, summaries, body, sets);
            rw.absorb(&b);
        }
    }
    sets[s.label.0 as usize] = Some(rw.clone());
    rw
}

fn basic_rw(prog: &Program, f: &Function, summaries: &[Summary], b: &Basic, rw: &mut RwSet) {
    for o in b.operands() {
        rw.read_var(o);
    }
    match b {
        Basic::Assign { dst, src } => {
            match dst {
                Place::Var(v) => {
                    rw.vars_written.insert(*v);
                }
                Place::Mem(m) => {
                    rw.vars_read.insert(m.base());
                    if m.is_deref() {
                        rw.heap_writes.insert(HeapAccess {
                            base: m.base(),
                            field: Some(m.field()),
                            direct: true,
                        });
                    } else {
                        // Local struct-variable field write: model as a
                        // write to the struct variable itself.
                        rw.vars_written.insert(m.base());
                    }
                }
            }
            match src {
                Rvalue::Load(m) => {
                    rw.vars_read.insert(m.base());
                    if m.is_deref() {
                        rw.heap_reads.insert(HeapAccess {
                            base: m.base(),
                            field: Some(m.field()),
                            direct: true,
                        });
                    }
                }
                Rvalue::ValueOf(v) => {
                    rw.vars_read.insert(*v);
                }
                _ => {}
            }
        }
        Basic::Call {
            dst,
            func,
            args,
            at,
        } => {
            if let Some(d) = dst {
                rw.vars_written.insert(*d);
            }
            if let Some(earth_ir::AtTarget::OwnerOf(p)) = at {
                rw.vars_read.insert(*p);
            }
            let callee = prog.function(*func);
            let sum = &summaries[func.index()];
            let map_effects = |effects: &BTreeSet<(Root, Option<FieldId>)>,
                               out: &mut BTreeSet<HeapAccess>| {
                for &(root, field) in effects {
                    if let Root::Param(i) = root {
                        if let Some(Operand::Var(a)) = args.get(i).copied() {
                            if callee.var(callee.params[i]).ty.is_ptr() && f.var(a).ty.is_ptr() {
                                out.insert(HeapAccess {
                                    base: a,
                                    field,
                                    direct: false,
                                });
                            }
                        }
                    }
                }
            };
            map_effects(&sum.reads, &mut rw.heap_reads);
            map_effects(&sum.writes, &mut rw.heap_writes);
        }
        Basic::Return(_) => {}
        Basic::BlkMov { dir, ptr, buf, .. } => {
            rw.vars_read.insert(*ptr);
            match dir {
                earth_ir::BlkDir::RemoteToLocal => {
                    rw.vars_written.insert(*buf);
                    rw.heap_reads.insert(HeapAccess {
                        base: *ptr,
                        field: None,
                        direct: true,
                    });
                }
                earth_ir::BlkDir::LocalToRemote => {
                    rw.vars_read.insert(*buf);
                    rw.heap_writes.insert(HeapAccess {
                        base: *ptr,
                        field: None,
                        direct: true,
                    });
                }
            }
        }
        Basic::AtomicWrite { var, .. } | Basic::AtomicAdd { var, .. } => {
            rw.vars_written.insert(*var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::analyze_effects;
    use earth_frontend::compile;

    fn setup(src: &str) -> (Program, RwSets, earth_ir::FuncId) {
        let prog = compile(src).unwrap();
        let (summaries, _) = analyze_effects(&prog);
        let fid = earth_ir::FuncId(0);
        let sets = RwSets::compute(&prog, prog.function(fid), &summaries);
        (prog, sets, fid)
    }

    #[test]
    fn basic_stmt_sets() {
        let (prog, sets, fid) = setup(
            r#"
            struct node { node* next; int v; };
            int f(node *p) {
                int t;
                t = p->v;
                p->v = t;
                return t;
            }
        "#,
        );
        let f = prog.function(fid);
        let stmts = f.basic_stmts();
        let p = f.var_by_name("p").unwrap();
        let t = f.var_by_name("t").unwrap();
        // t = p->v
        let (l0, _) = stmts[0];
        assert!(sets.var_written(t, l0));
        assert!(sets
            .get(l0)
            .heap_reads
            .iter()
            .any(|h| h.base == p && h.direct));
        // p->v = t
        let (l1, _) = stmts[1];
        assert!(sets.get(l1).heap_writes.iter().any(|h| h.base == p));
        assert!(sets.get(l1).vars_read.contains(&t));
    }

    #[test]
    fn loop_aggregates_body() {
        let (prog, sets, fid) = setup(
            r#"
            struct node { node* next; int v; };
            int f(node *p) {
                int acc;
                acc = 0;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        );
        let f = prog.function(fid);
        let p = f.var_by_name("p").unwrap();
        // Find the while statement's label.
        let mut while_label = None;
        f.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::While { .. }) {
                while_label = Some(s.label);
            }
        });
        let rw = sets.get(while_label.unwrap());
        assert!(rw.vars_written.contains(&p), "loop writes p");
        assert!(rw.heap_reads.iter().any(|h| h.base == p));
    }

    #[test]
    fn call_effects_mapped_to_args() {
        let (prog, sets, fid) = setup(
            r#"
            struct node { node* next; int v; };
            void caller(node *y) { poke(y); }
            void poke(node *x) { x->v = 1; }
        "#,
        );
        let f = prog.function(fid);
        let y = f.var_by_name("y").unwrap();
        let (l, _) = f.basic_stmts()[0];
        let rw = sets.get(l);
        assert!(
            rw.heap_writes
                .iter()
                .any(|h| h.base == y && h.field == Some(FieldId(1)) && !h.direct),
            "callee write should map to arg y: {rw:?}"
        );
    }

    #[test]
    fn atomic_ops_write_shared_var() {
        let (prog, sets, fid) = setup(
            r#"
            struct node { int v; };
            void f() {
                shared int c;
                addto(&c, 1);
            }
        "#,
        );
        let f = prog.function(fid);
        let c = f.var_by_name("c").unwrap();
        let (l, _) = f.basic_stmts()[0];
        assert!(sets.var_written(c, l));
    }
}
