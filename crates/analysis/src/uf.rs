//! A small union-find (disjoint-set) structure used by the region/connection
//! analysis.

/// Union-find over `0..n` with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

#[allow(dead_code)] // len/is_empty/push are part of the container API, used in tests
impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds a new singleton element, returning its index.
    pub fn push(&mut self) -> usize {
        let i = self.parent.len();
        self.parent.push(i as u32);
        self.size.push(1);
        i
    }

    /// The representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Non-mutating find (no path compression).
    pub fn find_const(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        assert!(uf.union(0, 1));
        assert!(uf.same(0, 1));
        assert!(!uf.union(1, 0));
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 4));
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(1);
        let i = uf.push();
        assert_eq!(i, 1);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 2);
        uf.union(2, 3);
        assert_eq!(uf.find_const(3), uf.find(3));
        assert!(!uf.is_empty());
    }
}
