//! Shared analysis cache for the pass-manager pipeline.
//!
//! The paper's framework is staged: points-to/connection analysis feeds
//! read/write sets, which feed possible-placement and communication
//! selection (§3, Fig. 2). Every stage consumes the *same*
//! [`ProgramAnalysis`], so recomputing it per consumer (optimizer,
//! validator, race linter, CLI) multiplies the most expensive part of the
//! compiler by the number of consumers. [`AnalysisCache`] computes the
//! analysis once, hands out shared references, and tracks explicit
//! invalidation at two granularities:
//!
//! * [`invalidate_all`](AnalysisCache::invalidate_all) — the next
//!   [`get`](AnalysisCache::get) performs a whole-program re-analysis
//!   (structural changes: inlining, struct field reordering, locality
//!   upgrades);
//! * [`invalidate_function`](AnalysisCache::invalidate_function) — the
//!   function is re-analyzed in isolation against the cached
//!   interprocedural summaries. If its fresh summary is no longer
//!   [covered](crate::Summary::covers) by the published one, the cache
//!   *escalates* to a whole-program re-analysis — per-function reuse is
//!   an optimization, never a soundness leak.
//!
//! Every outcome is counted ([`CacheStats`]); the pass manager surfaces the
//! counters per pass, and the regression tests pin the "one analysis per
//! pipeline run" property to the miss counter.

use crate::effects::reanalyze_function;
use crate::rw_sets::RwSets;
use crate::{analyze, FunctionAnalysis, ProgramAnalysis};
use earth_ir::{FuncId, Program};
use std::collections::BTreeSet;

/// Counters describing how the cache behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls answered from the cache without any recomputation.
    pub hits: u64,
    /// Whole-program analysis computations (initial fill, invalidation, or
    /// escalation from a per-function recompute whose summary grew).
    pub misses: u64,
    /// Functions re-analyzed in isolation after per-function invalidation.
    pub function_recomputes: u64,
    /// Explicit invalidation events (whole-program or per-function).
    pub invalidations: u64,
}

impl CacheStats {
    /// Component-wise difference `self - earlier` (saturating), used by the
    /// pass manager to attribute cache activity to individual passes.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            function_recomputes: self
                .function_recomputes
                .saturating_sub(earlier.function_recomputes),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }

    /// `true` when no counter moved.
    pub fn is_zero(&self) -> bool {
        *self == CacheStats::default()
    }
}

/// A memoized [`ProgramAnalysis`] with explicit, counted invalidation.
///
/// # Examples
///
/// ```
/// use earth_analysis::AnalysisCache;
///
/// let prog = earth_frontend::compile(r#"
///     struct N { N* next; int v; };
///     int head(N *n) { return n->v; }
/// "#).unwrap();
/// let mut cache = AnalysisCache::new();
/// cache.get(&prog); // computes
/// cache.get(&prog); // cached
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct AnalysisCache {
    analysis: Option<ProgramAnalysis>,
    dirty: BTreeSet<FuncId>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops the cached analysis entirely: the next [`get`](Self::get)
    /// recomputes the whole program. Use after structural changes
    /// (function inlining, struct layout changes, locality upgrades).
    pub fn invalidate_all(&mut self) {
        if self.analysis.take().is_some() {
            self.stats.invalidations += 1;
        }
        self.dirty.clear();
    }

    /// Marks one function's cached results stale: the next
    /// [`get`](Self::get) re-analyzes it in isolation (escalating to a
    /// whole-program re-analysis only if its effect summary grew).
    pub fn invalidate_function(&mut self, fid: FuncId) {
        if self.analysis.is_some() && self.dirty.insert(fid) {
            self.stats.invalidations += 1;
        }
    }

    /// The analysis of `prog`, recomputing as little as invalidation
    /// requires: nothing (hit), the dirty functions (per-function
    /// recompute), or the whole program (miss).
    pub fn get(&mut self, prog: &Program) -> &ProgramAnalysis {
        // A changed function count means FuncIds were re-meaning'd:
        // per-function reuse is off the table.
        if self
            .analysis
            .as_ref()
            .is_some_and(|a| a.n_functions() != prog.functions().len())
        {
            self.analysis = None;
            self.dirty.clear();
        }
        if self.analysis.is_none() {
            self.stats.misses += 1;
            self.dirty.clear();
            self.analysis = Some(analyze(prog));
            return self.analysis.as_ref().unwrap();
        }
        if self.dirty.is_empty() {
            self.stats.hits += 1;
            return self.analysis.as_ref().unwrap();
        }

        // Per-function refresh. The cached summary stays published (it is
        // what every *other* function's read/write sets were computed
        // against); the refresh is sound exactly when it still covers the
        // fresh one.
        let dirty = std::mem::take(&mut self.dirty);
        let mut escalate = false;
        let a = self.analysis.as_mut().unwrap();
        for &fid in &dirty {
            let f = prog.function(fid);
            let (summary, regions) = reanalyze_function(prog, f, &a.summaries);
            if !a.summaries[fid.index()].covers(&summary) {
                escalate = true;
                break;
            }
            let rw = RwSets::compute(prog, f, &a.summaries);
            a.set_function(fid, FunctionAnalysis { regions, rw });
            self.stats.function_recomputes += 1;
        }
        if escalate {
            self.stats.misses += 1;
            self.analysis = Some(analyze(prog));
        } else {
            self.stats.hits += 1;
        }
        self.analysis.as_ref().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;
    use earth_ir::{Basic, Const, Operand, Place, Rvalue, Stmt, StmtKind};

    const SRC: &str = r#"
        struct N { N* next; double x; double y; };
        void touch(N *n) { n->x = 1.0; }
        double read(N *n) { return n->x; }
    "#;

    #[test]
    fn hit_after_miss() {
        let prog = compile(SRC).unwrap();
        let mut cache = AnalysisCache::new();
        cache.get(&prog);
        cache.get(&prog);
        cache.get(&prog);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 1,
                function_recomputes: 0,
                invalidations: 0
            }
        );
    }

    #[test]
    fn invalidate_all_recomputes() {
        let prog = compile(SRC).unwrap();
        let mut cache = AnalysisCache::new();
        cache.get(&prog);
        cache.invalidate_all();
        cache.get(&prog);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    /// A body change that stays within the published summary (here: the
    /// identity — nothing changed) refreshes only the one function.
    #[test]
    fn per_function_recompute_within_summary() {
        let prog = compile(SRC).unwrap();
        let fid = prog.function_by_name("touch").unwrap();
        let mut cache = AnalysisCache::new();
        cache.get(&prog);
        cache.invalidate_function(fid);
        cache.get(&prog);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                function_recomputes: 1,
                invalidations: 1
            }
        );
    }

    /// Growing a function's heap effects beyond its published summary
    /// escalates to a whole-program re-analysis.
    #[test]
    fn summary_growth_escalates() {
        let mut prog = compile(SRC).unwrap();
        let mut cache = AnalysisCache::new();
        cache.get(&prog);
        // Rewrite `read` so it also *writes* n->y: a new effect its cached
        // summary does not cover.
        let fid = prog.function_by_name("read").unwrap();
        let mut f = prog.function(fid).clone();
        let n = f.var_by_name("n").unwrap();
        let store = Stmt {
            label: f.fresh_label(),
            kind: StmtKind::Basic(Basic::Assign {
                dst: Place::Mem(earth_ir::MemRef::Deref {
                    base: n,
                    field: earth_ir::FieldId(2),
                }),
                src: Rvalue::Use(Operand::Const(Const::Double(9.0))),
            }),
        };
        if let StmtKind::Seq(ss) = &mut f.body.kind {
            ss.insert(0, store);
        } else {
            panic!("body is a Seq");
        }
        prog.replace_function(fid, f);
        cache.invalidate_function(fid);
        cache.get(&prog);
        assert_eq!(cache.stats().misses, 2, "{:?}", cache.stats());
        // The escalated analysis sees the new write.
        let prog2 = prog.clone();
        let a = cache.get(&prog2);
        assert!(a.summaries[fid.index()]
            .writes
            .iter()
            .any(|(_, f)| *f == Some(earth_ir::FieldId(2))));
    }

    /// A changed function count silently falls back to a full re-analysis
    /// (FuncIds are positional).
    #[test]
    fn function_count_change_is_a_miss() {
        let prog = compile(SRC).unwrap();
        let bigger = compile(&format!("{SRC} void extra(N *n) {{ n->y = 2.0; }}")).unwrap();
        let mut cache = AnalysisCache::new();
        cache.get(&prog);
        cache.get(&bigger);
        assert_eq!(cache.stats().misses, 2);
    }
}
