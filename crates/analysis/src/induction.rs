//! Loop pointer-induction recognition.
//!
//! Pointer-chasing loops — `while (p != NULL) { ...; p = p->next; }` — are
//! where the paper's binary placement analysis loses the most: the
//! loop-carried advance writes the base pointer, so every read tuple based
//! on `p` is killed at the loop boundary and nothing hoists or blocks.
//! Following the *iterating pointers* idea (Lepori et al.), this module
//! recognizes the restricted but ubiquitous shape where a pointer is a
//! **field induction variable** of a loop: exactly one statement in the
//! loop body writes it, and that statement is either the direct self-field
//! load `p = p->f`, or the copy-propagated idiom
//!
//! ```text
//! t = p->f;   // the only write of t in the body
//! ...
//! p = t;      // the only write of p in the body
//! ```
//!
//! which Olden-style code uses pervasively (`fwd = list->forward; ...;
//! list = fwd;` so the old node stays addressable after the advance).
//! Either way the pointer advances by exactly one link per iteration, so a
//! whole-node `blkmov` prefetch at the top of the iteration covers every
//! direct access of that iteration — the cost-model consequence is drawn
//! in `earth-commopt`'s selection, never here.
//!
//! Recognition is purely structural and *sound by construction*: a pointer
//! reassigned anywhere in the loop from a non-field source (a copy, a
//! `malloc`, a call result) has more than one writing statement or a
//! non-matching one, and is never reported (property-tested in
//! `tests/prop_probalias.rs`).

use crate::FunctionAnalysis;
use earth_ir::{Basic, FieldId, Function, Label, MemRef, Place, Rvalue, Stmt, StmtKind, VarId};
use std::collections::BTreeMap;

/// A recognized pointer induction: `var` advances exactly once per
/// iteration of the loop at `loop_label`, via `var = var->field` at
/// `advance_label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerInduction {
    /// Label of the `while`/`do-while` statement.
    pub loop_label: Label,
    /// The induction pointer.
    pub var: VarId,
    /// The link field it chases (`next` in a list walk).
    pub field: FieldId,
    /// Label of the unique statement that advances `var`: the self-field
    /// load `var = var->field`, or the `var = t` copy of the idiom
    /// `t = var->field; ...; var = t`.
    pub advance_label: Label,
}

/// Finds every pointer induction in `f`, in loop pre-order (deterministic:
/// the result depends only on the function body and analysis).
///
/// A pointer `p` qualifies for a loop when **all** basic statements in the
/// loop body that write `p` are exactly one statement, and that statement
/// is the self-field load `p = p->f`. Loops nested inside the body count:
/// an inner loop that also advances `p` yields a second writing statement
/// and disqualifies `p` for the outer loop (conservative, but the inner
/// loop is still examined on its own).
pub fn find_pointer_inductions(f: &Function, fa: &FunctionAnalysis) -> Vec<PointerInduction> {
    let mut out = Vec::new();
    visit(&f.body, f, fa, &mut out);
    out
}

fn visit(s: &Stmt, f: &Function, fa: &FunctionAnalysis, out: &mut Vec<PointerInduction>) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            for c in ss {
                visit(c, f, fa, out);
            }
        }
        StmtKind::Basic(_) => {}
        StmtKind::If { then_s, else_s, .. } => {
            visit(then_s, f, fa, out);
            visit(else_s, f, fa, out);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (_, cs) in cases {
                visit(cs, f, fa, out);
            }
            visit(default, f, fa, out);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            recognize_loop(s.label, body, f, fa, out);
            visit(body, f, fa, out);
        }
        StmtKind::Forall {
            init, step, body, ..
        } => {
            visit(init, f, fa, out);
            visit(step, f, fa, out);
            visit(body, f, fa, out);
        }
    }
}

/// Examines one `while`/`do-while` body and reports its induction pointers.
fn recognize_loop(
    loop_label: Label,
    body: &Stmt,
    f: &Function,
    fa: &FunctionAnalysis,
    out: &mut Vec<PointerInduction>,
) {
    // For every pointer variable, collect the basic statements in the body
    // subtree that write it (BTreeMap: deterministic iteration by VarId).
    let mut writes: BTreeMap<VarId, Vec<Label>> = BTreeMap::new();
    body.walk(&mut |st| {
        if !matches!(st.kind, StmtKind::Basic(_)) {
            return;
        }
        for &v in &fa.rw.get(st.label).vars_written {
            if f.var(v).ty.is_ptr() {
                writes.entry(v).or_default().push(st.label);
            }
        }
    });
    for (&p, labels) in &writes {
        let [advance_label] = labels[..] else {
            continue; // written more than once: not an induction
        };
        // The unique write must be the self-field load `p = p->field`, or
        // the copy half of the two-step idiom `t = p->field; ...; p = t`
        // where `t` is itself written exactly once in the body.
        let field = self_field_load(body, advance_label, p).or_else(|| {
            let t = var_copy_source(body, advance_label, p)?;
            let [t_label] = writes.get(&t)?[..] else {
                return None;
            };
            field_load_from(body, t_label, t, p)
        });
        let Some(field) = field else {
            continue;
        };
        out.push(PointerInduction {
            loop_label,
            var: p,
            field,
            advance_label,
        });
    }
}

/// If the basic statement at `label` inside `body` is `p = p->f`, returns
/// `Some(f)`.
fn self_field_load(body: &Stmt, label: Label, p: VarId) -> Option<FieldId> {
    let mut found = None;
    body.walk(&mut |st| {
        if st.label != label {
            return;
        }
        if let StmtKind::Basic(Basic::Assign {
            dst: Place::Var(d),
            src: Rvalue::Load(MemRef::Deref { base, field }),
        }) = &st.kind
        {
            if *d == p && *base == p {
                found = Some(*field);
            }
        }
    });
    found
}

/// If the basic statement at `label` inside `body` is the plain pointer
/// copy `p = t`, returns `Some(t)`.
fn var_copy_source(body: &Stmt, label: Label, p: VarId) -> Option<VarId> {
    let mut found = None;
    body.walk(&mut |st| {
        if st.label != label {
            return;
        }
        if let StmtKind::Basic(Basic::Assign {
            dst: Place::Var(d),
            src: Rvalue::Use(src),
        }) = &st.kind
        {
            if *d == p {
                found = src.as_var();
            }
        }
    });
    found
}

/// If the basic statement at `label` inside `body` is `t = p->f`, returns
/// `Some(f)`.
fn field_load_from(body: &Stmt, label: Label, t: VarId, p: VarId) -> Option<FieldId> {
    let mut found = None;
    body.walk(&mut |st| {
        if st.label != label {
            return;
        }
        if let StmtKind::Basic(Basic::Assign {
            dst: Place::Var(d),
            src: Rvalue::Load(MemRef::Deref { base, field }),
        }) = &st.kind
        {
            if *d == t && *base == p {
                found = Some(*field);
            }
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn inductions(src: &str, func: &str) -> (earth_ir::Program, Vec<PointerInduction>) {
        let prog = compile(src).unwrap();
        let analysis = crate::analyze(&prog);
        let fid = prog.function_by_name(func).unwrap();
        let found = find_pointer_inductions(prog.function(fid), analysis.function(fid));
        (prog, found)
    }

    #[test]
    fn list_walk_is_recognized() {
        let (prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int sum(node *head) {
                node *p;
                int acc;
                acc = 0;
                p = head;
                while (p != NULL) { acc = acc + p->v; p = p->next; }
                return acc;
            }
        "#,
            "sum",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        let fid = prog.function_by_name("sum").unwrap();
        let f = prog.function(fid);
        assert_eq!(found[0].var, f.var_by_name("p").unwrap());
        let sid = prog.struct_by_name("node").unwrap();
        let next = prog.struct_def(sid).field_by_name("next").unwrap();
        assert_eq!(found[0].field, next);
    }

    #[test]
    fn copy_propagated_advance_is_recognized() {
        // The Olden idiom: the forward link is loaded into a temporary at
        // the top so the node stays addressable, and the copy advances.
        let (prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int sum(node *head) {
                node *p;
                node *fwd;
                int acc;
                acc = 0;
                p = head;
                while (p != NULL) {
                    fwd = p->next;
                    acc = acc + p->v;
                    p = fwd;
                }
                return acc;
            }
        "#,
            "sum",
        );
        let fid = prog.function_by_name("sum").unwrap();
        let f = prog.function(fid);
        // p is the induction; fwd is not (its write is a load from p, not
        // from fwd itself, and it is not copied from anything).
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].var, f.var_by_name("p").unwrap());
        let sid = prog.struct_by_name("node").unwrap();
        assert_eq!(
            found[0].field,
            prog.struct_def(sid).field_by_name("next").unwrap()
        );
    }

    #[test]
    fn trailing_pointer_is_not_an_induction() {
        // `prev = cur` copies a pointer whose own advance is a *self*-field
        // load based on cur, not on prev: prev lags one node behind and
        // must not be reported (only cur is).
        let (prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int f(node *head) {
                node *cur;
                node *prev;
                int acc;
                acc = 0;
                prev = head;
                cur = head;
                while (cur != NULL) {
                    acc = acc + prev->v;
                    prev = cur;
                    cur = cur->next;
                }
                return acc;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].var, f.var_by_name("cur").unwrap());
    }

    #[test]
    fn reassignment_from_non_field_source_disqualifies() {
        // p is also reset from q (a plain copy): two writes, no induction.
        let (_prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int f(node *head, node *q) {
                node *p;
                int acc;
                acc = 0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                    if (acc > 100) { p = q; }
                }
                return acc;
            }
        "#,
            "f",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn foreign_field_load_disqualifies() {
        // The single write is `p = q->next` — not a *self*-field load.
        let (_prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int f(node *q) {
                node *p;
                int acc;
                int i;
                acc = 0;
                p = q;
                i = 0;
                while (i < 10) {
                    acc = acc + p->v;
                    p = q->next;
                    i = i + 1;
                }
                return acc;
            }
        "#,
            "f",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn nested_loop_advance_disqualifies_outer_but_not_inner() {
        let (prog, found) = inductions(
            r#"
            struct node { node* next; int v; };
            int f(node *head) {
                node *p;
                int acc;
                int i;
                acc = 0;
                i = 0;
                while (i < 3) {
                    p = head;
                    while (p != NULL) {
                        acc = acc + p->v;
                        p = p->next;
                    }
                    i = i + 1;
                }
                return acc;
            }
        "#,
            "f",
        );
        // The outer loop sees two writes of p (reset + advance); only the
        // inner loop reports the induction.
        assert_eq!(found.len(), 1, "{found:?}");
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let inner_label = {
            let mut loops = Vec::new();
            f.body.walk(&mut |s| {
                if matches!(s.kind, StmtKind::While { .. }) {
                    loops.push(s.label);
                }
            });
            *loops.last().unwrap()
        };
        assert_eq!(found[0].loop_label, inner_label);
    }
}
