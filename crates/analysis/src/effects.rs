//! Interprocedural region and side-effect analysis.
//!
//! This module plays the role of the McCAT points-to / connection analysis
//! and read-write-set infrastructure (Emami/Ghiya/Hendren) that the paper's
//! possible-placement analysis consumes. It computes, per function:
//!
//! * **Region classes** — a unification-based (Steensgaard-style) partition
//!   of the function's pointer variables: two pointers land in the same
//!   class when one may point into the data structure reachable from the
//!   other. This is the *connection* relation of Ghiya & Hendren, made
//!   field-insensitive and flow-insensitive (strictly coarser, hence safe
//!   for the kill rules that consume it).
//! * **Heap effect summaries** — which fields of which *roots* (parameter
//!   regions or fresh allocations) a function may read or write, including
//!   effects of its callees, plus which parameter regions it may merge and
//!   which regions its return value may point into.
//!
//! Summaries are computed by a whole-program fixed-point (handles
//! recursion); the lattice is finite so termination is guaranteed.

use crate::uf::UnionFind;
use earth_ir::{
    Basic, FieldId, Function, MemRef, Operand, Place, Program, Rvalue, StmtKind, VarId,
};
use std::collections::BTreeSet;

/// A root of a heap region, from a callee's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Root {
    /// The region reachable from the `i`-th parameter.
    Param(usize),
    /// A region allocated within the function (invisible to the caller
    /// unless returned or merged into a parameter region).
    Fresh,
}

/// A field selector in an effect: `None` means the whole struct (block
/// moves and conservative call effects).
pub type FieldKey = Option<FieldId>;

/// The heap side-effect summary of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Fields possibly read, per root region.
    pub reads: BTreeSet<(Root, FieldKey)>,
    /// Fields possibly written, per root region.
    pub writes: BTreeSet<(Root, FieldKey)>,
    /// Pairs of parameter indices whose regions the function may merge
    /// (e.g. by storing one into a field of the other).
    pub merges: BTreeSet<(usize, usize)>,
    /// Regions the returned pointer may point into (empty for non-pointer
    /// returns).
    pub ret_roots: BTreeSet<Root>,
}

impl Summary {
    /// Whether every effect of `other` is already covered by `self`.
    ///
    /// The analysis cache uses this to decide if a single-function body
    /// change stays within the function's previously-published summary
    /// (in which case every other function's cached results remain
    /// conservative) or requires a whole-program re-analysis.
    pub fn covers(&self, other: &Summary) -> bool {
        self.reads.is_superset(&other.reads)
            && self.writes.is_superset(&other.writes)
            && self.merges.is_superset(&other.merges)
            && self.ret_roots.is_superset(&other.ret_roots)
    }

    fn is_superset_of(&self, other: &Summary) -> bool {
        self.covers(other)
    }
}

/// Result of the region analysis for one function: the connection classes
/// of its pointer variables.
#[derive(Debug, Clone)]
pub struct Regions {
    uf: UnionFind,
    n_vars: usize,
}

impl Regions {
    /// The class representative of `v`'s region.
    pub fn class(&self, v: VarId) -> usize {
        self.uf.find_const(v.index())
    }

    /// Whether `a` and `b` may point into the same data structure.
    pub fn connected(&self, a: VarId, b: VarId) -> bool {
        self.class(a) == self.class(b)
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.n_vars
    }

    /// Whether the function has no variables.
    pub fn is_empty(&self) -> bool {
        self.n_vars == 0
    }
}

/// Computes summaries for every function by fixed-point iteration, then
/// returns them together with per-function region classes.
///
/// # Examples
///
/// ```
/// use earth_analysis::{analyze_effects, Root};
///
/// let prog = earth_frontend::compile(r#"
///     struct N { N* next; int v; };
///     void poke(N *n) { n->v = 1; }
/// "#).unwrap();
/// let (summaries, _regions) = analyze_effects(&prog);
/// let fid = prog.function_by_name("poke").unwrap();
/// assert!(summaries[fid.index()]
///     .writes
///     .iter()
///     .any(|(root, _)| *root == Root::Param(0)));
/// ```
pub fn analyze_effects(prog: &Program) -> (Vec<Summary>, Vec<Regions>) {
    let n = prog.functions().len();
    let mut summaries = vec![Summary::default(); n];
    // Fixed-point: recompute each function's summary from callee summaries
    // until nothing grows. The lattice height is bounded by
    // #roots × #fields per function, so this terminates quickly.
    loop {
        let mut changed = false;
        for (id, f) in prog.iter_functions() {
            let (summary, _regions) = analyze_function(prog, f, &summaries);
            if !summaries[id.index()].is_superset_of(&summary) {
                summaries[id.index()] = merge_summaries(&summaries[id.index()], &summary);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let regions = prog
        .iter_functions()
        .map(|(_, f)| analyze_function(prog, f, &summaries).1)
        .collect();
    (summaries, regions)
}

/// Re-analyzes a single function against the given (already computed)
/// callee `summaries`, returning its fresh summary and region classes.
///
/// This is the analysis cache's per-function recompute primitive: when one
/// function's body changed, its regions and read/write sets can be rebuilt
/// in isolation as long as the fresh summary is still
/// [covered](Summary::covers) by the one the rest of the program was
/// analyzed against.
pub fn reanalyze_function(
    prog: &Program,
    f: &Function,
    summaries: &[Summary],
) -> (Summary, Regions) {
    analyze_function(prog, f, summaries)
}

fn merge_summaries(a: &Summary, b: &Summary) -> Summary {
    let mut out = a.clone();
    out.reads.extend(b.reads.iter().copied());
    out.writes.extend(b.writes.iter().copied());
    out.merges.extend(b.merges.iter().copied());
    out.ret_roots.extend(b.ret_roots.iter().copied());
    out
}

/// One pass over a function: builds region classes (given current callee
/// summaries) and derives this function's own summary.
fn analyze_function(prog: &Program, f: &Function, summaries: &[Summary]) -> (Summary, Regions) {
    let n_vars = f.vars().len();
    let mut uf = UnionFind::new(n_vars);

    // Unification is order-insensitive but call-return unification can
    // cascade, so iterate the statement walk until no class changes.
    loop {
        let mut changed = false;
        f.body.walk(&mut |s| {
            if let StmtKind::Basic(b) = &s.kind {
                changed |= unify_basic(prog, f, b, summaries, &mut uf);
            }
            if let StmtKind::Forall { init, step, .. } = &s.kind {
                for part in [init, step] {
                    if let StmtKind::Basic(b) = &part.kind {
                        changed |= unify_basic(prog, f, b, summaries, &mut uf);
                    }
                }
            }
        });
        if !changed {
            break;
        }
    }

    // Map each class to the set of parameter indices it contains.
    let mut class_params: Vec<Vec<usize>> = vec![Vec::new(); n_vars];
    for (i, &p) in f.params.iter().enumerate() {
        if f.var(p).ty.is_ptr() {
            let c = uf.find(p.index());
            class_params[c].push(i);
        }
    }
    let roots_of = |uf: &mut UnionFind, v: VarId| -> Vec<Root> {
        let c = uf.find(v.index());
        if class_params[c].is_empty() {
            vec![Root::Fresh]
        } else {
            class_params[c].iter().map(|&i| Root::Param(i)).collect()
        }
    };

    // Collect effects.
    let mut summary = Summary::default();
    // Parameter merges.
    for i in 0..f.params.len() {
        for j in (i + 1)..f.params.len() {
            let (pi, pj) = (f.params[i], f.params[j]);
            if f.var(pi).ty.is_ptr() && f.var(pj).ty.is_ptr() && uf.same(pi.index(), pj.index()) {
                summary.merges.insert((i, j));
            }
        }
    }

    let record =
        |summary: &mut Summary, uf: &mut UnionFind, base: VarId, field: FieldKey, write: bool| {
            for root in roots_of(uf, base) {
                if write {
                    summary.writes.insert((root, field));
                } else {
                    summary.reads.insert((root, field));
                }
            }
        };

    f.body.walk(&mut |s| {
        let mut handle = |b: &Basic| match b {
            Basic::Assign { dst, src } => {
                if let Place::Mem(MemRef::Deref { base, field }) = dst {
                    record(&mut summary, &mut uf, *base, Some(*field), true);
                }
                if let Rvalue::Load(MemRef::Deref { base, field }) = src {
                    record(&mut summary, &mut uf, *base, Some(*field), false);
                }
            }
            Basic::BlkMov { dir, ptr, .. } => {
                let write = matches!(dir, earth_ir::BlkDir::LocalToRemote);
                record(&mut summary, &mut uf, *ptr, None, write);
            }
            Basic::Call { func, args, .. } => {
                let callee_sum = &summaries[func.index()];
                let callee = prog.function(*func);
                for &(root, field) in &callee_sum.reads {
                    if let Root::Param(i) = root {
                        if let Some(Operand::Var(a)) = args.get(i).copied() {
                            if callee.var(callee.params[i]).ty.is_ptr() {
                                record(&mut summary, &mut uf, a, field, false);
                            }
                        }
                    }
                }
                for &(root, field) in &callee_sum.writes {
                    if let Root::Param(i) = root {
                        if let Some(Operand::Var(a)) = args.get(i).copied() {
                            if callee.var(callee.params[i]).ty.is_ptr() {
                                record(&mut summary, &mut uf, a, field, true);
                            }
                        }
                    }
                }
            }
            Basic::Return(Some(Operand::Var(v))) if f.var(*v).ty.is_ptr() => {
                for root in roots_of(&mut uf, *v) {
                    summary.ret_roots.insert(root);
                }
            }
            _ => {}
        };
        match &s.kind {
            StmtKind::Basic(b) => handle(b),
            StmtKind::Forall { init, step, .. } => {
                for part in [init, step] {
                    if let StmtKind::Basic(b) = &part.kind {
                        handle(b);
                    }
                }
            }
            _ => {}
        }
    });

    (summary, Regions { uf, n_vars })
}

/// Applies the unification rules of one basic statement; returns whether
/// any classes merged.
fn unify_basic(
    prog: &Program,
    f: &Function,
    b: &Basic,
    summaries: &[Summary],
    uf: &mut UnionFind,
) -> bool {
    let is_ptr = |v: VarId| f.var(v).ty.is_ptr();
    let mut changed = false;
    match b {
        Basic::Assign { dst, src } => {
            match (dst, src) {
                // p = q
                (Place::Var(d), Rvalue::Use(Operand::Var(s))) if is_ptr(*d) && is_ptr(*s) => {
                    changed |= uf.union(d.index(), s.index());
                }
                // p = q->f or p = s.f with a pointer field: p joins q's
                // region (everything reachable from q is one region).
                (Place::Var(d), Rvalue::Load(m)) if is_ptr(*d) => {
                    let base = m.base();
                    changed |= uf.union(d.index(), base.index());
                }
                // p->f = q or s.f = q with q a pointer: store merges the
                // regions (q becomes reachable from p).
                (Place::Mem(m), Rvalue::Use(Operand::Var(s))) if is_ptr(*s) => {
                    changed |= uf.union(m.base().index(), s.index());
                }
                // p = malloc(...): fresh region; nothing to merge.
                _ => {}
            }
        }
        Basic::Call {
            dst,
            func,
            args,
            at,
        } => {
            let callee_sum = &summaries[func.index()];
            let callee = prog.function(*func);
            // Parameter-region merges performed by the callee.
            for &(i, j) in &callee_sum.merges {
                if let (Some(Operand::Var(a)), Some(Operand::Var(b))) =
                    (args.get(i).copied(), args.get(j).copied())
                {
                    if is_ptr(a) && is_ptr(b) {
                        changed |= uf.union(a.index(), b.index());
                    }
                }
            }
            // Returned pointer joins the argument regions it may point into.
            if let Some(d) = dst {
                if is_ptr(*d) {
                    for &root in &callee_sum.ret_roots {
                        if let Root::Param(i) = root {
                            if let Some(Operand::Var(a)) = args.get(i).copied() {
                                if callee.var(callee.params[i]).ty.is_ptr() && is_ptr(a) {
                                    changed |= uf.union(d.index(), a.index());
                                }
                            }
                        }
                    }
                }
            }
            let _ = at;
        }
        // blkmov moves scalars/pointers by value into a local buffer; the
        // buffer's pointer *fields* read later via `Load(Field)` are handled
        // by the load rule above (buffer joins the source region) — the
        // buffer var itself is a struct, so we merge it with the source
        // pointer region so that `q = buf.next` connects q to the source.
        Basic::BlkMov { ptr, buf, .. } => {
            changed |= uf.union(ptr.index(), buf.index());
        }
        _ => {}
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn analyze_src(src: &str) -> (Program, Vec<Summary>, Vec<Regions>) {
        let prog = compile(src).unwrap();
        let (s, r) = analyze_effects(&prog);
        (prog, s, r)
    }

    #[test]
    fn list_traversal_connects_cursor_to_head() {
        let (prog, _s, regions) = analyze_src(
            r#"
            struct node { node* next; int v; };
            int sum(node *head) {
                node *p;
                int acc;
                acc = 0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        );
        let fid = prog.function_by_name("sum").unwrap();
        let f = prog.function(fid);
        let head = f.var_by_name("head").unwrap();
        let p = f.var_by_name("p").unwrap();
        assert!(regions[fid.index()].connected(head, p));
    }

    #[test]
    fn distinct_params_stay_separate() {
        let (prog, _s, regions) = analyze_src(
            r#"
            struct node { node* next; double x; };
            double f(node *a, node *b) {
                double t;
                t = a->x + b->x;
                return t;
            }
        "#,
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let a = f.var_by_name("a").unwrap();
        let b = f.var_by_name("b").unwrap();
        assert!(!regions[fid.index()].connected(a, b));
    }

    #[test]
    fn store_merges_regions() {
        let (prog, s, regions) = analyze_src(
            r#"
            struct node { node* next; int v; };
            void link(node *a, node *b) {
                a->next = b;
            }
        "#,
        );
        let fid = prog.function_by_name("link").unwrap();
        let f = prog.function(fid);
        let a = f.var_by_name("a").unwrap();
        let b = f.var_by_name("b").unwrap();
        assert!(regions[fid.index()].connected(a, b));
        assert!(s[fid.index()].merges.contains(&(0, 1)));
        assert!(s[fid.index()]
            .writes
            .contains(&(Root::Param(0), Some(FieldId(0)))));
    }

    #[test]
    fn summaries_propagate_through_calls() {
        let (prog, s, _r) = analyze_src(
            r#"
            struct node { node* next; int v; };
            void poke(node *x) { x->v = 1; }
            void caller(node *y) { poke(y); }
        "#,
        );
        let fid = prog.function_by_name("caller").unwrap();
        assert!(s[fid.index()]
            .writes
            .contains(&(Root::Param(0), Some(FieldId(1)))));
    }

    #[test]
    fn recursive_summary_terminates_and_is_sound() {
        let (prog, s, _r) = analyze_src(
            r#"
            struct node { node* left; node* right; int v; };
            int depth(node *t) {
                int a;
                int b;
                if (t == NULL) { return 0; }
                a = depth(t->left);
                b = depth(t->right);
                if (a > b) { return a + 1; }
                return b + 1;
            }
        "#,
        );
        let fid = prog.function_by_name("depth").unwrap();
        let sum = &s[fid.index()];
        assert!(sum.reads.contains(&(Root::Param(0), Some(FieldId(0)))));
        assert!(sum.reads.contains(&(Root::Param(0), Some(FieldId(1)))));
        assert!(sum.writes.is_empty());
    }

    #[test]
    fn returned_pointer_connects_at_call_site() {
        let (prog, _s, regions) = analyze_src(
            r#"
            struct node { node* next; int v; };
            node* advance(node *p) { return p->next; }
            int use(node *h, node *other) {
                node *q;
                q = advance(h);
                return q->v;
            }
        "#,
        );
        let fid = prog.function_by_name("use").unwrap();
        let f = prog.function(fid);
        let h = f.var_by_name("h").unwrap();
        let q = f.var_by_name("q").unwrap();
        let other = f.var_by_name("other").unwrap();
        assert!(regions[fid.index()].connected(h, q));
        assert!(!regions[fid.index()].connected(h, other));
    }

    #[test]
    fn fresh_allocation_is_unconnected_until_stored() {
        let (prog, _s, regions) = analyze_src(
            r#"
            struct node { node* next; int v; };
            void build(node *h) {
                node *n;
                node *m;
                n = malloc(sizeof(node));
                m = malloc(sizeof(node));
                h->next = n;
            }
        "#,
        );
        let fid = prog.function_by_name("build").unwrap();
        let f = prog.function(fid);
        let h = f.var_by_name("h").unwrap();
        let n = f.var_by_name("n").unwrap();
        let m = f.var_by_name("m").unwrap();
        assert!(regions[fid.index()].connected(h, n));
        assert!(!regions[fid.index()].connected(h, m));
    }

    #[test]
    fn fresh_return_does_not_connect() {
        let (prog, s, regions) = analyze_src(
            r#"
            struct node { node* next; int v; };
            node* mk() {
                node *n;
                n = malloc(sizeof(node));
                return n;
            }
            void use(node *h) {
                node *f;
                f = mk();
                f->v = 3;
            }
        "#,
        );
        let mk = prog.function_by_name("mk").unwrap();
        assert!(s[mk.index()].ret_roots.contains(&Root::Fresh));
        let fid = prog.function_by_name("use").unwrap();
        let f = prog.function(fid);
        let h = f.var_by_name("h").unwrap();
        let fr = f.var_by_name("f").unwrap();
        assert!(!regions[fid.index()].connected(h, fr));
    }
}
