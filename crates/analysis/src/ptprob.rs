//! Probability-annotated alias and frequency facts.
//!
//! The paper's placement analysis is *binary*: a conflict either exists or
//! it does not, and branch/loop frequencies are fixed guesses (halving, the
//! `loop_factor`). This module layers a probability annotation on top,
//! following the probabilistic-alias line of work: every fact is a
//! likelihood in `[0, 1]` derived from
//!
//! * **structural heuristics** on conditions (Ball–Larus-style branch
//!   prediction: pointer null tests rarely fail, equality tests rarely
//!   succeed, loop back-edges are usually taken), and
//! * **measured frequencies** when a profiling run is available (passed in
//!   as plain data by `earth-commopt`, which owns the profile types —
//!   measurements always win over heuristics).
//!
//! The facts also carry the [`PointerInduction`]s recognized by
//! [`crate::induction`], because the induction-justified blocking
//! relaxation in selection is gated on the loop's continue probability.
//!
//! # Probabilities weight cost, never safety
//!
//! Nothing in this module may relax a kill rule. [`ProbFacts::conflict_prob`]
//! returns `0.0` **iff** the binary [`FunctionAnalysis::heap_conflict`]
//! query returns `false`; every semantically possible conflict keeps a
//! strictly positive probability, and the placement kill rules keep
//! consulting the binary query. Probabilities only reweight tuple
//! frequencies and blocking decisions — and `earth-lint`'s validator
//! re-derives every probability-justified motion and hard-rejects any whose
//! *safety* would rest on a probability (diagnostics `ALP001`–`ALP003`).
//!
//! Forcing every annotation to the degenerate `{0, 1}` lattice recovers
//! the binary analysis exactly ([`ProbFacts::force_binary`]); the structural
//! heuristics never produce 0 or 1, so the forced facts are empty and the
//! optimizer's output is byte-identical to binary mode (property-tested in
//! `tests/prop_probalias.rs`).

use crate::induction::{find_pointer_inductions, PointerInduction};
use crate::{AccessKind, FunctionAnalysis};
use earth_ir::{BinOp, Cond, Const, Function, Label, Operand, Stmt, StmtKind, VarId};
use std::collections::BTreeMap;

/// Probability that a pointer null test (`p != NULL`) passes: list walks
/// and guarded dereferences almost always find a live pointer.
pub const PTR_NOT_NULL_PROB: f64 = 0.9;
/// Probability that an integer equality test succeeds (Ball–Larus "opcode
/// heuristic": equalities are rarely true).
pub const EQ_PROB: f64 = 0.3;
/// Probability that a loop back-edge is taken when no sharper heuristic
/// applies (Ball–Larus "loop branch heuristic").
pub const LOOP_CONTINUE_PROB: f64 = 0.88;
/// Conflict likelihood for accesses that reach the queried location only
/// through a *connected-but-distinct* pointer: possible, hence never 0, but
/// less likely than a direct access through the same base.
pub const ALIASED_CONFLICT_PROB: f64 = 0.65;

/// Measured branch/trip frequencies from a profiling run, keyed by the
/// pre-optimization statement labels. `earth-commopt` converts its
/// `FuncProfile` view into this crate-neutral form (the analysis crate
/// cannot depend on the profile crate without a cycle through the
/// simulator).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredFreqs {
    /// Probability that the branch/loop condition at a label was true.
    pub branch_prob: BTreeMap<Label, f64>,
    /// Mean trip count of the loop at a label.
    pub loop_trips: BTreeMap<Label, f64>,
}

/// Probability annotations for one function: likelihood facts over branch
/// and loop conditions plus the recognized pointer inductions.
///
/// Deterministic: a pure function of the function body, the analysis, and
/// the measured input (all maps are `BTreeMap`s), which keeps the
/// worker-fan-out of the optimizer byte-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbFacts {
    branch_prob: BTreeMap<Label, f64>,
    loop_trips: BTreeMap<Label, f64>,
    inductions: Vec<PointerInduction>,
}

impl ProbFacts {
    /// Computes the annotations for `f`: structural heuristics on every
    /// `if`/`while`/`do-while` condition, overridden by `measured`
    /// frequencies where present, plus the pointer inductions.
    pub fn compute(f: &Function, fa: &FunctionAnalysis, measured: Option<&MeasuredFreqs>) -> Self {
        let mut facts = ProbFacts {
            inductions: find_pointer_inductions(f, fa),
            ..ProbFacts::default()
        };
        annotate(&f.body, f, &mut facts);
        if let Some(m) = measured {
            for (&l, &p) in &m.branch_prob {
                facts.branch_prob.insert(l, p.clamp(0.0, 1.0));
            }
            for (&l, &t) in &m.loop_trips {
                facts.loop_trips.insert(l, t.max(0.0));
            }
        }
        facts
    }

    /// The empty annotation: no likelihood facts, no inductions. Running
    /// the prob-alias pipeline with degenerate facts reproduces the binary
    /// pipeline exactly.
    pub fn degenerate() -> Self {
        ProbFacts::default()
    }

    /// Collapses the probability lattice to `{0, 1}`: annotations that are
    /// exactly 0 or 1 carry no information beyond the binary analysis and
    /// fractional ones are dropped. The structural heuristics never produce
    /// 0 or 1, so (absent measured input) the result is
    /// [`ProbFacts::degenerate`] plus the inductions — whose cost
    /// relaxation is itself gated on a fractional loop probability and
    /// therefore never fires. Used by the property tests to prove the prob
    /// pipeline degenerates to the binary one.
    pub fn force_binary(&self) -> Self {
        ProbFacts {
            branch_prob: self
                .branch_prob
                .iter()
                .filter(|(_, &p)| p == 0.0 || p == 1.0)
                .map(|(&l, &p)| (l, p))
                .collect(),
            loop_trips: BTreeMap::new(),
            inductions: self.inductions.clone(),
        }
    }

    /// Probability that the branch (or loop) condition at `l` is true, if
    /// annotated.
    pub fn branch_prob(&self, l: Label) -> Option<f64> {
        self.branch_prob.get(&l).copied()
    }

    /// Expected trip count of the loop at `l`, if measured.
    pub fn loop_trips(&self, l: Label) -> Option<f64> {
        self.loop_trips.get(&l).copied()
    }

    /// The pointer induction of the loop at `loop_label` covering `var`,
    /// if recognized.
    pub fn induction_at(&self, loop_label: Label, var: VarId) -> Option<&PointerInduction> {
        self.inductions
            .iter()
            .find(|i| i.loop_label == loop_label && i.var == var)
    }

    /// All recognized pointer inductions, in loop pre-order.
    pub fn inductions(&self) -> &[PointerInduction] {
        &self.inductions
    }

    /// Number of annotated branch/loop conditions.
    pub fn n_annotated(&self) -> usize {
        self.branch_prob.len()
    }

    /// The probabilistic refinement of
    /// [`FunctionAnalysis::heap_conflict`]: the likelihood that statement
    /// `l` performs a heap access of `kind` touching `p->field`.
    ///
    /// **Invariant** (validator-enforced): returns `0.0` *iff* the binary
    /// query returns `false`. A direct access through `p` itself is certain
    /// (`1.0`); an access through a merely *connected* pointer gets
    /// [`ALIASED_CONFLICT_PROB`] — still positive, so no kill rule built on
    /// "probability > 0" could ever be weaker than the binary rule.
    pub fn conflict_prob(
        &self,
        fa: &FunctionAnalysis,
        p: VarId,
        field: Option<earth_ir::FieldId>,
        l: Label,
        kind: AccessKind,
    ) -> f64 {
        if !fa.heap_conflict(p, field, l, kind) {
            return 0.0;
        }
        let rw = fa.rw.get(l);
        let direct = |accs: &std::collections::BTreeSet<crate::HeapAccess>| {
            accs.iter().any(|h| {
                let field_match = match (h.field, field) {
                    (None, _) | (_, None) => true,
                    (Some(a), Some(b)) => a == b,
                };
                field_match && h.base == p
            })
        };
        let is_direct = match kind {
            AccessKind::Read => direct(&rw.heap_reads),
            AccessKind::Write => direct(&rw.heap_writes),
            AccessKind::ReadOrWrite => direct(&rw.heap_reads) || direct(&rw.heap_writes),
        };
        if is_direct {
            1.0
        } else {
            ALIASED_CONFLICT_PROB
        }
    }
}

/// Walks the body recording the structural condition heuristics.
fn annotate(s: &Stmt, f: &Function, facts: &mut ProbFacts) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            for c in ss {
                annotate(c, f, facts);
            }
        }
        StmtKind::Basic(_) => {}
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            if let Some(p) = branch_heuristic(cond, f) {
                facts.branch_prob.insert(s.label, p);
            }
            annotate(then_s, f, facts);
            annotate(else_s, f, facts);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (_, cs) in cases {
                annotate(cs, f, facts);
            }
            annotate(default, f, facts);
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            facts.branch_prob.insert(s.label, loop_heuristic(cond, f));
            annotate(body, f, facts);
        }
        StmtKind::Forall {
            init, step, body, ..
        } => {
            annotate(init, f, facts);
            annotate(step, f, facts);
            annotate(body, f, facts);
        }
    }
}

/// Ball–Larus-style taken-probability of an `if` condition, or `None` when
/// no heuristic applies (ordered comparisons: an uninformative 0.5).
fn branch_heuristic(cond: &Cond, f: &Function) -> Option<f64> {
    if let Some(p) = null_test_prob(cond, f) {
        return Some(p);
    }
    match cond.op {
        BinOp::Eq => Some(EQ_PROB),
        BinOp::Ne => Some(1.0 - EQ_PROB),
        _ => None,
    }
}

/// Continue-probability of a loop condition: the null-test heuristic when
/// it applies, otherwise the generic loop-branch heuristic (back-edges are
/// usually taken).
fn loop_heuristic(cond: &Cond, f: &Function) -> f64 {
    null_test_prob(cond, f).unwrap_or(LOOP_CONTINUE_PROB)
}

/// Probability that a pointer null test is true, if `cond` is one:
/// `p != NULL` almost always passes, `p == NULL` almost always fails.
fn null_test_prob(cond: &Cond, f: &Function) -> Option<f64> {
    if !matches!(cond.op, BinOp::Eq | BinOp::Ne) {
        return None;
    }
    let is_null = |o: &Operand| matches!(o, Operand::Const(Const::Null));
    let is_ptr = |o: &Operand| o.as_var().is_some_and(|v| f.var(v).ty.is_ptr());
    let null_test =
        (is_ptr(&cond.lhs) && is_null(&cond.rhs)) || (is_null(&cond.lhs) && is_ptr(&cond.rhs));
    if !null_test {
        return None;
    }
    Some(match cond.op {
        BinOp::Ne => PTR_NOT_NULL_PROB,
        _ => 1.0 - PTR_NOT_NULL_PROB,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn facts_for(src: &str, func: &str) -> (earth_ir::Program, ProbFacts, earth_ir::FuncId) {
        let prog = compile(src).unwrap();
        let analysis = crate::analyze(&prog);
        let fid = prog.function_by_name(func).unwrap();
        let facts = ProbFacts::compute(prog.function(fid), analysis.function(fid), None);
        (prog, facts, fid)
    }

    const WALK: &str = r#"
        struct node { node* next; int v; };
        int sum(node *head, int k) {
            node *p;
            int acc;
            acc = 0;
            p = head;
            while (p != NULL) {
                if (acc == k) { acc = 0; }
                acc = acc + p->v;
                p = p->next;
            }
            return acc;
        }
    "#;

    #[test]
    fn null_test_loop_gets_high_continue_prob() {
        let (prog, facts, fid) = facts_for(WALK, "sum");
        let f = prog.function(fid);
        let mut loop_label = None;
        let mut if_label = None;
        f.body.walk(&mut |s| match s.kind {
            StmtKind::While { .. } => loop_label = Some(s.label),
            StmtKind::If { .. } => if_label = Some(s.label),
            _ => {}
        });
        assert_eq!(
            facts.branch_prob(loop_label.unwrap()),
            Some(PTR_NOT_NULL_PROB)
        );
        assert_eq!(facts.branch_prob(if_label.unwrap()), Some(EQ_PROB));
        assert_eq!(facts.inductions().len(), 1);
        let ind = facts.induction_at(loop_label.unwrap(), f.var_by_name("p").unwrap());
        assert!(ind.is_some());
    }

    #[test]
    fn measured_frequencies_override_heuristics() {
        let prog = compile(WALK).unwrap();
        let analysis = crate::analyze(&prog);
        let fid = prog.function_by_name("sum").unwrap();
        let f = prog.function(fid);
        let mut loop_label = None;
        f.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::While { .. }) {
                loop_label = Some(s.label);
            }
        });
        let l = loop_label.unwrap();
        let mut m = MeasuredFreqs::default();
        m.branch_prob.insert(l, 0.42);
        m.loop_trips.insert(l, 7.0);
        let facts = ProbFacts::compute(f, analysis.function(fid), Some(&m));
        assert_eq!(facts.branch_prob(l), Some(0.42));
        assert_eq!(facts.loop_trips(l), Some(7.0));
    }

    #[test]
    fn force_binary_drops_fractional_annotations_but_keeps_inductions() {
        let (_prog, facts, _fid) = facts_for(WALK, "sum");
        assert!(facts.n_annotated() > 0);
        let forced = facts.force_binary();
        assert_eq!(forced.n_annotated(), 0, "heuristics are never 0/1");
        assert_eq!(forced.inductions().len(), facts.inductions().len());
    }

    #[test]
    fn conflict_prob_is_zero_iff_binary_says_no_conflict() {
        let src = r#"
            struct node { node* next; double x; double y; };
            void f(node *p, node *t) {
                node *q;
                double a;
                q = p;
                q->x = 1.0;
                a = t->x;
            }
        "#;
        let prog = compile(src).unwrap();
        let analysis = crate::analyze(&prog);
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let fa = analysis.function(fid);
        let facts = ProbFacts::compute(f, fa, None);
        let p = f.var_by_name("p").unwrap();
        let q = f.var_by_name("q").unwrap();
        let t = f.var_by_name("t").unwrap();
        let fx = Some(earth_ir::FieldId(1));
        let store_x = f.basic_stmts()[1].0; // q->x = 1.0
        use crate::AccessKind::Write;
        // Aliased conflict (p connected to q): positive but uncertain.
        assert_eq!(
            facts.conflict_prob(fa, p, fx, store_x, Write),
            ALIASED_CONFLICT_PROB
        );
        // Direct conflict through q itself: certain.
        assert_eq!(facts.conflict_prob(fa, q, fx, store_x, Write), 1.0);
        // No binary conflict (t is a separate region): exactly zero.
        assert!(!fa.heap_conflict(t, fx, store_x, Write));
        assert_eq!(facts.conflict_prob(fa, t, fx, store_x, Write), 0.0);
    }
}
