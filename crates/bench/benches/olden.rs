//! Criterion bench over the Olden suite: simulates every benchmark in the
//! simple and optimized builds on an 8-node machine (Test preset so the
//! bench loop stays fast) — the substrate of Figure 10 and Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use earth_commopt::CommOptConfig;
use earth_olden::{run, suite, Build, Preset};

fn bench_olden(c: &mut Criterion) {
    let mut g = c.benchmark_group("olden");
    g.sample_size(10);
    for bench in suite() {
        g.bench_with_input(
            BenchmarkId::new("simple", bench.name),
            &bench,
            |b, bench| {
                b.iter(|| run(bench, &Build::Simple, Preset::Test, 8).expect("runs"))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("optimized", bench.name),
            &bench,
            |b, bench| {
                b.iter(|| {
                    run(
                        bench,
                        &Build::Optimized(CommOptConfig::default()),
                        Preset::Test,
                        8,
                    )
                    .expect("runs")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_olden);
criterion_main!(benches);
