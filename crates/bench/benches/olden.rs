//! Bench over the Olden suite: simulates every benchmark in the simple and
//! optimized builds on an 8-node machine (Test preset so the bench loop
//! stays fast) — the substrate of Figure 10 and Table III. Plain timing
//! harness (no external bench framework; the workspace builds offline).

use earth_commopt::CommOptConfig;
use earth_olden::{run, suite, Build, Preset};
use std::time::Instant;

fn time<F: FnMut()>(label: &str, mut f: F) {
    const ITERS: u32 = 10;
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per_iter = start.elapsed() / ITERS;
    println!("{label}: {per_iter:?} per iteration ({ITERS} iterations)");
}

fn main() {
    for bench in suite() {
        time(&format!("olden/simple/{}", bench.name), || {
            std::hint::black_box(run(&bench, &Build::Simple, Preset::Test, 8).expect("runs"));
        });
        time(&format!("olden/optimized/{}", bench.name), || {
            std::hint::black_box(
                run(
                    &bench,
                    &Build::Optimized(CommOptConfig::default()),
                    Preset::Test,
                    8,
                )
                .expect("runs"),
            );
        });
    }
}
