//! Bench for the Table I microkernels: measures the host-side cost of
//! simulating each communication pattern and reports the derived virtual
//! per-operation costs. Plain timing harness (no external bench framework;
//! the workspace builds offline).

use std::time::Instant;

fn main() {
    // Validate once (panics if the derived costs drift from Table I).
    let rows = earth_bench::table1::measure();
    println!("\n{}", earth_bench::table1::render(&rows));

    const ITERS: u32 = 10;
    let start = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(earth_bench::table1::measure());
    }
    let per_iter = start.elapsed() / ITERS;
    println!("table1/microkernels: {per_iter:?} per iteration ({ITERS} iterations)");
}
