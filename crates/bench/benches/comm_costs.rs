//! Criterion bench for the Table I microkernels: measures the host-side
//! cost of simulating each communication pattern and reports the derived
//! virtual per-operation costs as custom output.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    // Validate once (panics if the derived costs drift from Table I).
    let rows = earth_bench::table1::measure();
    println!("\n{}", earth_bench::table1::render(&rows));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("microkernels", |b| {
        b.iter(|| std::hint::black_box(earth_bench::table1::measure()))
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
