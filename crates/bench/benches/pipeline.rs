//! Criterion bench of the compiler itself: frontend, analyses, and the
//! communication optimizer over the largest benchmark sources.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use earth_commopt::{optimize_program, CommOptConfig};
use earth_olden::suite;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    for bench in suite() {
        g.bench_with_input(
            BenchmarkId::new("frontend", bench.name),
            &bench.source,
            |b, src| b.iter(|| earth_frontend::compile(src).expect("compiles")),
        );
        let prog = earth_frontend::compile(bench.source).expect("compiles");
        g.bench_with_input(
            BenchmarkId::new("analysis", bench.name),
            &prog,
            |b, prog| b.iter(|| earth_analysis::analyze(prog)),
        );
        g.bench_with_input(
            BenchmarkId::new("optimize", bench.name),
            &prog,
            |b, prog| {
                b.iter(|| {
                    let mut p = prog.clone();
                    optimize_program(&mut p, &CommOptConfig::default())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
