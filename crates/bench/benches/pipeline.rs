//! Bench of the compiler itself: frontend, analyses, and the communication
//! optimizer over the largest benchmark sources. Plain timing harness (no
//! external bench framework; the workspace builds offline).

use earth_commopt::{optimize_program, CommOptConfig};
use earth_olden::suite;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, mut f: F) {
    const ITERS: u32 = 50;
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per_iter = start.elapsed() / ITERS;
    println!("{label}: {per_iter:?} per iteration ({ITERS} iterations)");
}

fn main() {
    for bench in suite() {
        time(&format!("pipeline/frontend/{}", bench.name), || {
            std::hint::black_box(earth_frontend::compile(bench.source).expect("compiles"));
        });
        let prog = earth_frontend::compile(bench.source).expect("compiles");
        time(&format!("pipeline/analysis/{}", bench.name), || {
            std::hint::black_box(earth_analysis::analyze(&prog));
        });
        time(&format!("pipeline/optimize/{}", bench.name), || {
            let mut p = prog.clone();
            std::hint::black_box(optimize_program(&mut p, &CommOptConfig::default()));
        });
    }
}
