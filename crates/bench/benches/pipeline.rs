//! Bench of the compiler itself: frontend, analyses, the communication
//! optimizer, and the full pass pipeline over the largest benchmark
//! sources. Plain timing harness (no external bench framework; the
//! workspace builds offline).

use earth_commopt::{default_workers, optimize_program, optimize_program_with, CommOptConfig};
use earth_olden::suite;
use earth_pass::passes::{LocalityPass, OptimizePass, RaceLintPass, VerifyPlacementPass};
use earth_pass::PassManager;
use std::time::Instant;

fn time<F: FnMut()>(label: &str, mut f: F) {
    const ITERS: u32 = 50;
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let per_iter = start.elapsed() / ITERS;
    println!("{label}: {per_iter:?} per iteration ({ITERS} iterations)");
}

fn main() {
    for bench in suite() {
        time(&format!("pipeline/frontend/{}", bench.name), || {
            std::hint::black_box(earth_frontend::compile(bench.source).expect("compiles"));
        });
        let prog = earth_frontend::compile(bench.source).expect("compiles");
        time(&format!("pipeline/analysis/{}", bench.name), || {
            std::hint::black_box(earth_analysis::analyze(&prog));
        });
        time(&format!("pipeline/optimize/{}", bench.name), || {
            let mut p = prog.clone();
            std::hint::black_box(optimize_program(&mut p, &CommOptConfig::default()));
        });
        let analysis = earth_analysis::analyze(&prog);
        for workers in [1, default_workers().max(2)] {
            time(
                &format!("pipeline/optimize-workers{workers}/{}", bench.name),
                || {
                    let mut p = prog.clone();
                    std::hint::black_box(optimize_program_with(
                        &mut p,
                        &CommOptConfig::default(),
                        &analysis,
                        workers,
                    ));
                },
            );
        }
    }

    // Per-pass wall times and cache counters through the pass manager,
    // over the whole suite (one cached analysis per kernel).
    for bench in suite() {
        let prog = earth_frontend::compile(bench.source).expect("compiles");
        let mut pm = PassManager::new();
        pm.register(LocalityPass)
            .register(VerifyPlacementPass::new(CommOptConfig::default()))
            .register(RaceLintPass::new())
            .register(OptimizePass::new(
                CommOptConfig::default(),
                default_workers(),
            ));
        let mut p = prog.clone();
        let mut cache = earth_analysis::AnalysisCache::new();
        let report = pm.run(&mut p, &mut cache).expect("pipeline succeeds");
        println!("--- pass timings: {} ---", bench.name);
        print!("{}", report.render());
    }
}
