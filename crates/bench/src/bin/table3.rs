//! Regenerates the paper's Table III: performance of the sequential,
//! simple and optimized builds over 1..16 processors.

fn main() {
    let preset = earth_bench::preset_from_args();
    println!("Table III: performance improvement ({preset:?} preset)\n");
    let rows = earth_bench::experiments::table3(preset, &[1, 2, 4, 8, 16]);
    println!("{}", earth_bench::experiments::render_table3(&rows));
}
