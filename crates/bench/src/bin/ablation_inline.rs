//! Ablation: local function inlining (the paper's Phase-I pass) before
//! communication optimization — the paper's §6 notes tsp's `distance`
//! benefits from interprocedural placement achieved "via function
//! inlining".

use earth_commopt::{inline_functions, optimize_program, CommOptConfig, InlineConfig};
use earth_olden::suite;
use earth_sim::{compile, CodegenOptions, Machine, MachineConfig};

fn run(prog: &earth_ir::Program, args: &[earth_sim::Value], nodes: u16) -> earth_sim::RunResult {
    let cp = compile(prog, CodegenOptions::default()).expect("compiles");
    let entry = cp.function_by_name("main").expect("main");
    let mut m = Machine::new(MachineConfig::with_nodes(nodes));
    m.run(&cp, entry, args).expect("runs")
}

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: inlining before communication optimization ({preset:?}, {nodes} nodes)\n");
    let mut rows = Vec::new();
    for bench in suite() {
        let args = (bench.args)(preset);
        let base = earth_frontend::compile(bench.source).expect("compiles");

        let mut opt_only = base.clone();
        optimize_program(&mut opt_only, &CommOptConfig::default());
        let r_opt = run(&opt_only, &args, nodes);

        let mut inl_opt = base.clone();
        let inl = inline_functions(&mut inl_opt, &InlineConfig::default());
        optimize_program(&mut inl_opt, &CommOptConfig::default());
        let r_both = run(&inl_opt, &args, nodes);
        assert_eq!(r_opt.ret, r_both.ret, "{}", bench.name);

        rows.push(vec![
            bench.name.to_string(),
            inl.inlined_calls.to_string(),
            earth_bench::render::secs(r_opt.time_ns),
            earth_bench::render::secs(r_both.time_ns),
            format!(
                "{:+.2}",
                100.0 * (r_opt.time_ns as f64 - r_both.time_ns as f64) / r_opt.time_ns as f64
            ),
            r_opt.stats.total_comm().to_string(),
            r_both.stats.total_comm().to_string(),
        ]);
    }
    println!(
        "{}",
        earth_bench::render::table(
            &[
                "benchmark",
                "inlined",
                "opt(s)",
                "inline+opt(s)",
                "%gain",
                "comm(opt)",
                "comm(inl+opt)"
            ],
            &rows
        )
    );
}
