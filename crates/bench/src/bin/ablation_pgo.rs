//! Static-vs-profile-guided ablation over the Olden suite: instrument →
//! simulate → recompile with the measured profile.
//!
//! ```text
//! cargo run --release --bin ablation_pgo -- [--test|--small|--full] [--nodes N]
//! ```

use earth_bench::pgo::{render_pgo, run_pgo};
use earth_bench::{nodes_from_args, preset_from_args};

fn main() {
    let preset = preset_from_args();
    let nodes = nodes_from_args();
    println!(
        "PGO ablation ({preset:?} preset, {nodes} nodes): static heuristics vs measured profile\n"
    );
    let results: Vec<_> = earth_olden::suite()
        .iter()
        .map(|b| run_pgo(b, preset, nodes))
        .collect();
    print!("{}", render_pgo(&results));
    let improved = results
        .iter()
        .filter(|r| r.pgo_time_ns <= r.static_time_ns)
        .count();
    let flipped: usize = results.iter().map(|r| r.decisions_flipped).sum();
    println!(
        "\npgo <= static on {improved}/{} benchmarks; {flipped} decisions flipped",
        results.len()
    );
}
