//! Ablation: locality inference (the companion analysis of Zhu & Hendren,
//! PACT'97, run as Phase II's "Locality Analysis" in Figure 2). It
//! upgrades provably-local pointers so their dereferences compile to plain
//! local accesses instead of pseudo-remote runtime calls — orthogonal to,
//! and composing with, the communication optimization.

use earth_analysis::infer_locality;
use earth_commopt::{optimize_program, CommOptConfig};
use earth_olden::suite;
use earth_sim::{compile, CodegenOptions, Machine, MachineConfig};

fn run(prog: &earth_ir::Program, args: &[earth_sim::Value], nodes: u16) -> earth_sim::RunResult {
    let cp = compile(prog, CodegenOptions::default()).expect("compiles");
    let entry = cp.function_by_name("main").expect("main");
    let mut m = Machine::new(MachineConfig::with_nodes(nodes));
    m.run(&cp, entry, args).expect("runs")
}

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: locality inference ({preset:?}, {nodes} nodes)\n");
    let mut rows = Vec::new();
    for bench in suite() {
        let args = (bench.args)(preset);
        let base = earth_frontend::compile(bench.source).expect("compiles");

        let simple = run(&base, &args, nodes);

        let mut loc = base.clone();
        let report = infer_locality(&mut loc);
        let r_loc = run(&loc, &args, nodes);
        assert_eq!(simple.ret, r_loc.ret, "{}", bench.name);

        let mut both = loc.clone();
        optimize_program(&mut both, &CommOptConfig::default());
        let r_both = run(&both, &args, nodes);
        assert_eq!(simple.ret, r_both.ret, "{}", bench.name);

        rows.push(vec![
            bench.name.to_string(),
            report.len().to_string(),
            simple.stats.total_comm().to_string(),
            r_loc.stats.total_comm().to_string(),
            r_both.stats.total_comm().to_string(),
            earth_bench::render::secs(simple.time_ns),
            earth_bench::render::secs(r_loc.time_ns),
            earth_bench::render::secs(r_both.time_ns),
        ]);
    }
    println!(
        "{}",
        earth_bench::render::table(
            &[
                "benchmark",
                "locals",
                "comm(simple)",
                "comm(+loc)",
                "comm(+loc+opt)",
                "simple(s)",
                "+loc(s)",
                "+loc+opt(s)"
            ],
            &rows
        )
    );
    println!("\n`locals` = pointers upgraded to local; their dereferences stop being");
    println!("EARTH runtime calls entirely (the PACT'97 'pseudo-remote' elimination).");
}
