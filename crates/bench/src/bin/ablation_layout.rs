//! Ablation: struct field reordering + partial block moves (the paper's
//! §7 future work). Compares the communication-optimized build with and
//! without the layout pass: reordering clusters the remotely-accessed
//! fields so the blocked transfers shrink (fewer words on the wire).

use earth_commopt::{optimize_program, reorder_fields, CommOptConfig};
use earth_olden::suite;
use earth_sim::{compile, CodegenOptions, Machine, MachineConfig};

fn run(prog: &earth_ir::Program, args: &[earth_sim::Value], nodes: u16) -> earth_sim::RunResult {
    let cp = compile(prog, CodegenOptions::default()).expect("compiles");
    let entry = cp.function_by_name("main").expect("main");
    let mut m = Machine::new(MachineConfig::with_nodes(nodes));
    m.run(&cp, entry, args).expect("runs")
}

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: field reordering + partial block moves ({preset:?}, {nodes} nodes)\n");
    let mut rows = Vec::new();
    for bench in suite() {
        let args = (bench.args)(preset);
        let base = earth_frontend::compile(bench.source).expect("compiles");

        let mut plain = base.clone();
        optimize_program(&mut plain, &CommOptConfig::default());
        let r_plain = run(&plain, &args, nodes);

        let mut laid_out = base.clone();
        let layout = reorder_fields(&mut laid_out);
        optimize_program(&mut laid_out, &CommOptConfig::default());
        let r_layout = run(&laid_out, &args, nodes);
        assert_eq!(r_plain.ret, r_layout.ret, "{}", bench.name);

        rows.push(vec![
            bench.name.to_string(),
            layout.len().to_string(),
            r_plain.stats.blkmov_words.to_string(),
            r_layout.stats.blkmov_words.to_string(),
            earth_bench::render::secs(r_plain.time_ns),
            earth_bench::render::secs(r_layout.time_ns),
            format!(
                "{:+.2}",
                100.0 * (r_plain.time_ns as f64 - r_layout.time_ns as f64) / r_plain.time_ns as f64
            ),
        ]);
    }
    println!(
        "{}",
        earth_bench::render::table(
            &[
                "benchmark",
                "structs",
                "blk-words",
                "blk-words(reord)",
                "opt(s)",
                "reord+opt(s)",
                "%gain"
            ],
            &rows
        )
    );
}
