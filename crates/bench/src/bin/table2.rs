//! Regenerates the paper's Table II: the benchmark suite inventory.

use earth_olden::{suite, Preset};

fn main() {
    println!("Table II: Benchmark programs\n");
    let rows: Vec<Vec<String>> = suite()
        .iter()
        .map(|b| {
            let full: Vec<String> = (b.args)(Preset::Full)
                .iter()
                .map(|v| v.to_string())
                .collect();
            vec![
                b.name.to_string(),
                b.description.to_string(),
                format!("main({})", full.join(", ")),
            ]
        })
        .collect();
    println!(
        "{}",
        earth_bench::render::table(&["Benchmark", "Description", "Full-size arguments"], &rows)
    );
    println!("Paper sizes: power 10,000 leaves; perimeter depth 11; tsp 32K cities;");
    println!("health 4 levels x 600 iterations; voronoi 32K points.");
    println!("Full presets here are scaled down to keep simulated runs short (DESIGN.md).");
}
