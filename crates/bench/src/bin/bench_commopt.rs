//! Alias-mode ablation over the Olden suite, emitting the repo's
//! `BENCH_commopt.json` perf artifact: per-kernel communication volume and
//! virtual time for simple vs static (binary alias) vs prob-alias vs
//! profile-fed prob-alias vs escape-analysis builds.
//!
//! ```text
//! cargo run --release --bin bench_commopt -- [--test|--small|--full] [--nodes N] [--out FILE]
//! ```

use earth_bench::ablation::render_variants;
use earth_bench::commopt::{run_commopt, to_json};
use earth_bench::{nodes_from_args, preset_from_args};

fn main() {
    let preset = preset_from_args();
    let nodes = nodes_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_commopt.json".into());
    println!("commopt alias-mode ablation ({preset:?} preset, {nodes} nodes)\n");
    let results: Vec<_> = earth_olden::suite()
        .iter()
        .map(|b| {
            let r = run_commopt(b, preset, nodes);
            print!("{}", render_variants(r.bench, &r.variants));
            println!();
            r
        })
        .collect();
    let improved = results
        .iter()
        .filter(|r| r.variant("prob").comm < r.variant("static").comm)
        .count();
    println!(
        "prob-alias reduces comm vs static on {improved}/{} kernels",
        results.len()
    );
    let esc_improved = results
        .iter()
        .filter(|r| r.variant("escape").comm < r.variant("static").comm)
        .count();
    println!(
        "escape analysis reduces comm vs static on {esc_improved}/{} kernels",
        results.len()
    );
    let json = to_json(&results, preset, nodes);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write `{out}`: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
