//! Regenerates the paper's Figure 10: dynamic communication counts,
//! simple vs optimized, normalized to simple = 100.

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Figure 10: dynamic communication counts ({preset:?} preset, {nodes} nodes)\n");
    let rows = earth_bench::experiments::figure10(preset, nodes);
    println!("{}", earth_bench::experiments::render_figure10(&rows));
}
