//! Regenerates the paper's Table I: cost of communication on EARTH-MANNA.

fn main() {
    println!("Table I: Cost of communication on (simulated) EARTH-MANNA\n");
    let rows = earth_bench::table1::measure();
    println!("{}", earth_bench::table1::render(&rows));
    println!("Sequential = synchronize after each operation; Pipelined = issue back-to-back.");
}
