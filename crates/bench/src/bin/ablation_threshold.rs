//! Ablation: sweep the pipelining-vs-blocking threshold (paper: 3).

use earth_bench::ablation::{render_variants, run_variants, threshold_variants};

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: blocking threshold sweep ({preset:?}, {nodes} nodes)\n");
    for bench in earth_olden::suite() {
        let results = run_variants(&bench, &threshold_variants(), preset, nodes);
        println!("{}", render_variants(bench.name, &results));
    }
}
