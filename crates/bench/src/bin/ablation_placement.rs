//! Ablation: isolate the three optimization components (redundancy
//! elimination, code motion, blocking).

use earth_bench::ablation::{component_variants, render_variants, run_variants};

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: optimization components ({preset:?}, {nodes} nodes)\n");
    for bench in earth_olden::suite() {
        let results = run_variants(&bench, &component_variants(), preset, nodes);
        println!("{}", render_variants(bench.name, &results));
    }
}
