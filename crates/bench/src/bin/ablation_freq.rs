//! Ablation: sweep the loop-frequency constant of the placement analysis
//! (paper: x10 per loop level).

use earth_bench::ablation::{freq_variants, render_variants, run_variants};

fn main() {
    let preset = earth_bench::preset_from_args();
    let nodes = earth_bench::nodes_from_args();
    println!("Ablation: loop frequency factor sweep ({preset:?}, {nodes} nodes)\n");
    for bench in earth_olden::suite() {
        let results = run_variants(&bench, &freq_variants(), preset, nodes);
        println!("{}", render_variants(bench.name, &results));
    }
}
