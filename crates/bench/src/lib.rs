//! # earth-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (see
//! DESIGN.md §4 for the index):
//!
//! * [`table1`] — communication cost microkernels (Table I),
//! * [`experiments`] — Figure 10 (dynamic communication counts) and
//!   Table III (performance improvement),
//! * [`ablation`] — component / threshold / frequency ablations beyond the
//!   paper,
//! * [`commopt`] — the alias-mode ablation (simple / static / prob-alias /
//!   profile-fed prob-alias) behind the `BENCH_commopt.json` artifact,
//! * [`pgo`] — static heuristics vs measured-profile feedback
//!   (instrument → simulate → recompile).
//!
//! Runnable binaries: `table1`, `table2`, `fig10`, `table3`,
//! `ablation_threshold`, `ablation_placement`, `ablation_freq`,
//! `ablation_pgo`, `bench_commopt` (all accept `--small` / `--full` to
//! change the problem size) — plus Criterion benches `comm_costs`,
//! `olden`, and `pipeline`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod commopt;
pub mod experiments;
pub mod pgo;
pub mod render;
pub mod table1;

use earth_olden::Preset;

/// Parses the common `--small` / `--full` / `--test` size flags
/// (default: `Preset::Small`).
pub fn preset_from_args() -> Preset {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        Preset::Full
    } else if args.iter().any(|a| a == "--test") {
        Preset::Test
    } else {
        Preset::Small
    }
}

/// Parses `--nodes N` (default 8).
pub fn nodes_from_args() -> u16 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}
