//! Ablation studies beyond the paper (DESIGN.md §7): isolate the effect of
//! each optimization component, sweep the blocking threshold, and sweep the
//! loop-frequency constant.

use earth_commopt::{CommOptConfig, FreqModel};
use earth_olden::{run, Benchmark, Build, Preset};

/// A named optimizer configuration.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Short label for tables.
    pub name: String,
    /// The optimizer configuration.
    pub config: CommOptConfig,
}

/// The component-ablation variants: none / redundancy-only / motion /
/// motion+blocking (full).
pub fn component_variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "none".into(),
            config: CommOptConfig::disabled(),
        },
        Variant {
            name: "redundancy".into(),
            config: CommOptConfig {
                enable_motion: false,
                enable_blocking: false,
                ..CommOptConfig::default()
            },
        },
        Variant {
            name: "motion".into(),
            config: CommOptConfig {
                enable_blocking: false,
                ..CommOptConfig::default()
            },
        },
        Variant {
            name: "full".into(),
            config: CommOptConfig::default(),
        },
    ]
}

/// Blocking-threshold sweep variants (2..=6).
pub fn threshold_variants() -> Vec<Variant> {
    (2..=6)
        .map(|t| Variant {
            name: format!("threshold={t}"),
            config: CommOptConfig {
                block_threshold: t,
                ..CommOptConfig::default()
            },
        })
        .collect()
}

/// Loop-frequency sweep variants: with a factor below 1 the hoisting of
/// loop-invariant reads above loops stops paying for single-branch tuples.
pub fn freq_variants() -> Vec<Variant> {
    [0.5, 1.0, 2.0, 10.0, 100.0]
        .into_iter()
        .map(|f| Variant {
            name: format!("loop-freq={f}"),
            config: CommOptConfig {
                freq: FreqModel {
                    loop_factor: f,
                    ..FreqModel::default()
                },
                ..CommOptConfig::default()
            },
        })
        .collect()
}

/// The outcome of one variant on one benchmark.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Variant label.
    pub name: String,
    /// Virtual run time (ns).
    pub time_ns: u64,
    /// Total communication operations.
    pub comm: u64,
    /// Breakdown.
    pub read_data: u64,
    /// Breakdown.
    pub write_data: u64,
    /// Breakdown.
    pub blkmov: u64,
}

/// Runs each variant of a benchmark and checks result agreement.
pub fn run_variants(
    bench: &Benchmark,
    variants: &[Variant],
    preset: Preset,
    n_nodes: u16,
) -> Vec<VariantResult> {
    let baseline = run(bench, &Build::Simple, preset, n_nodes).expect("simple run");
    variants
        .iter()
        .map(|v| {
            let r = run(bench, &Build::Optimized(v.config.clone()), preset, n_nodes)
                .expect("variant run");
            assert_eq!(
                r.ret, baseline.ret,
                "{}: variant `{}` changed the result",
                bench.name, v.name
            );
            VariantResult {
                name: v.name.clone(),
                time_ns: r.time_ns,
                comm: r.stats.total_comm(),
                read_data: r.stats.read_data,
                write_data: r.stats.write_data,
                blkmov: r.stats.blkmov,
            }
        })
        .collect()
}

/// Renders variant results as a table.
pub fn render_variants(bench: &str, results: &[VariantResult]) -> String {
    let base = results.first().map(|r| r.time_ns as f64).unwrap_or(1.0);
    let data: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                bench.to_string(),
                r.name.clone(),
                crate::render::secs(r.time_ns),
                format!("{:.2}", base / r.time_ns as f64),
                r.comm.to_string(),
                r.read_data.to_string(),
                r.write_data.to_string(),
                r.blkmov.to_string(),
            ]
        })
        .collect();
    crate::render::table(
        &[
            "benchmark",
            "variant",
            "time(s)",
            "rel-speed",
            "comm",
            "rd",
            "wr",
            "blk",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_olden::by_name;

    #[test]
    fn component_ablation_is_monotone_in_comm_for_power() {
        let bench = by_name("power").unwrap();
        let results = run_variants(&bench, &component_variants(), Preset::Test, 2);
        // Full optimization must communicate no more than no optimization.
        let none = results.iter().find(|r| r.name == "none").unwrap();
        let full = results.iter().find(|r| r.name == "full").unwrap();
        assert!(full.comm < none.comm, "{} !< {}", full.comm, none.comm);
    }

    #[test]
    fn threshold_sweep_changes_blocking() {
        let bench = by_name("perimeter").unwrap();
        let results = run_variants(&bench, &threshold_variants(), Preset::Test, 2);
        let t2 = &results[0];
        let t6 = &results[4];
        assert!(
            t2.blkmov >= t6.blkmov,
            "lower threshold must block at least as much: {} vs {}",
            t2.blkmov,
            t6.blkmov
        );
    }

    #[test]
    fn variants_render() {
        let bench = by_name("health").unwrap();
        let results = run_variants(&bench, &component_variants(), Preset::Test, 2);
        let s = render_variants("health", &results);
        assert!(s.contains("redundancy"));
    }
}
