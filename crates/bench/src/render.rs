//! Plain-text table rendering for experiment output.

/// Renders a table: header row plus data rows, columns padded to fit.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::with_capacity(ncols);
        for (i, c) in cells.iter().enumerate().take(ncols) {
            parts.push(format!("{:>width$}", c, width = widths[i]));
        }
        out.push_str(&parts.join("  "));
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats nanoseconds as seconds with 3 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.4}", ns as f64 / 1e9)
}

/// Formats a ratio as a percentage with 2 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1_500_000_000), "1.5000");
        assert_eq!(pct(0.1234), "12.34");
    }
}
