//! The alias-mode ablation behind the repo's `BENCH_commopt.json` artifact:
//! per-Olden-kernel communication volume and virtual time for the five
//! builds
//!
//! * `simple` — no communication optimization,
//! * `static` — the paper's optimizer under binary alias analysis,
//! * `prob` — probabilistic alias mode ([`AliasMode::Prob`]): likelihood
//!   heuristics weight the cost model and recognized loop pointer
//!   inductions may relax the blocking gate,
//! * `pgo` — prob-alias mode fed a measured profile (instrument →
//!   simulate → recompile), so measured branch/trip frequencies replace
//!   the heuristics,
//! * `escape` — whole-program escape & node-affinity analysis
//!   ([`EscapeMode::On`]): regions proven node-local or owner-confined
//!   stop communicating entirely (upgrades only *remove* remote ops, so
//!   `escape` comm never exceeds `static`).
//!
//! Every variant's simulator result is asserted equal to the simple
//! build's, so the artifact doubles as a differential-correctness sweep.

use crate::ablation::VariantResult;
use crate::pgo::collect_profile;
use earth_commopt::{AliasMode, CommOptConfig, EscapeMode, ProfileDb};
use earth_olden::{run, Benchmark, Build, Preset};
use std::sync::Arc;

/// Per-kernel results for the five builds, in `simple`, `static`, `prob`,
/// `pgo`, `escape` order.
#[derive(Debug, Clone)]
pub struct CommOptResult {
    /// Benchmark name.
    pub bench: &'static str,
    /// One entry per build, in the fixed order above.
    pub variants: Vec<VariantResult>,
}

impl CommOptResult {
    /// The named variant's result.
    pub fn variant(&self, name: &str) -> &VariantResult {
        self.variants
            .iter()
            .find(|v| v.name == name)
            .expect("known variant name")
    }
}

/// Runs the five builds of one benchmark, asserting result agreement.
pub fn run_commopt(bench: &Benchmark, preset: Preset, n_nodes: u16) -> CommOptResult {
    let simple = run(bench, &Build::Simple, preset, n_nodes).expect("simple run");
    let profile = collect_profile(bench, preset, n_nodes);
    let configs = [
        ("static", CommOptConfig::default()),
        (
            "prob",
            CommOptConfig {
                alias: AliasMode::Prob,
                ..CommOptConfig::default()
            },
        ),
        (
            "pgo",
            CommOptConfig {
                alias: AliasMode::Prob,
                profile: Some(Arc::new(ProfileDb::new(profile))),
                ..CommOptConfig::default()
            },
        ),
        (
            "escape",
            CommOptConfig {
                escape: EscapeMode::On,
                ..CommOptConfig::default()
            },
        ),
    ];
    let mut variants = vec![VariantResult {
        name: "simple".into(),
        time_ns: simple.time_ns,
        comm: simple.stats.total_comm(),
        read_data: simple.stats.read_data,
        write_data: simple.stats.write_data,
        blkmov: simple.stats.blkmov,
    }];
    for (name, cfg) in configs {
        let r = run(bench, &Build::Optimized(cfg), preset, n_nodes).expect("variant run");
        assert_eq!(
            r.ret, simple.ret,
            "{}: variant `{name}` changed the result",
            bench.name
        );
        variants.push(VariantResult {
            name: name.into(),
            time_ns: r.time_ns,
            comm: r.stats.total_comm(),
            read_data: r.stats.read_data,
            write_data: r.stats.write_data,
            blkmov: r.stats.blkmov,
        });
    }
    CommOptResult {
        bench: bench.name,
        variants,
    }
}

/// Renders the whole sweep as the `BENCH_commopt.json` document.
pub fn to_json(results: &[CommOptResult], preset: Preset, n_nodes: u16) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"artifact\": \"BENCH_commopt\",\n");
    out.push_str(&format!("  \"preset\": \"{preset:?}\",\n"));
    out.push_str(&format!("  \"nodes\": {n_nodes},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.bench));
        out.push_str("      \"variants\": [\n");
        for (j, v) in r.variants.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"time_ns\": {}, \"comm\": {}, \
                 \"read_data\": {}, \"write_data\": {}, \"blkmov\": {}}}{}\n",
                v.name,
                v.time_ns,
                v.comm,
                v.read_data,
                v.write_data,
                v.blkmov,
                if j + 1 < r.variants.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_olden::by_name;

    /// The headline acceptance claim: on the list-heavy kernels the
    /// prob-alias induction prefetch moves communication below the static
    /// binary-alias baseline.
    #[test]
    fn prob_alias_reduces_comm_on_health_and_tsp() {
        for name in ["health", "tsp"] {
            let bench = by_name(name).unwrap();
            let r = run_commopt(&bench, Preset::Test, 2);
            let st = r.variant("static");
            let prob = r.variant("prob");
            assert!(
                prob.comm < st.comm,
                "{name}: prob comm {} !< static comm {}",
                prob.comm,
                st.comm
            );
            // The saving is a trade: blkmov prefetches replace scalar reads.
            assert!(prob.blkmov > st.blkmov, "{name}: no extra blkmovs");
        }
    }

    /// Escape upgrades only ever delete communication, so the `escape`
    /// build's comm volume is bounded by `static` everywhere — and on the
    /// list-heavy kernels it drops strictly below it.
    #[test]
    fn escape_reduces_comm_on_health_and_tsp() {
        for name in ["health", "tsp"] {
            let bench = by_name(name).unwrap();
            let r = run_commopt(&bench, Preset::Test, 2);
            let st = r.variant("static");
            let esc = r.variant("escape");
            assert!(
                esc.comm < st.comm,
                "{name}: escape comm {} !< static comm {}",
                esc.comm,
                st.comm
            );
        }
    }

    /// The monotonicity half of the escape claim, over the whole suite.
    #[test]
    fn escape_never_exceeds_static_comm() {
        for bench in earth_olden::suite() {
            let r = run_commopt(&bench, Preset::Test, 2);
            let st = r.variant("static");
            let esc = r.variant("escape");
            assert!(
                esc.comm <= st.comm,
                "{}: escape comm {} > static comm {}",
                bench.name,
                esc.comm,
                st.comm
            );
        }
    }

    #[test]
    fn json_contains_every_kernel_and_variant() {
        let bench = by_name("power").unwrap();
        let results = vec![run_commopt(&bench, Preset::Test, 2)];
        let json = to_json(&results, Preset::Test, 2);
        for needle in [
            "\"power\"",
            "\"simple\"",
            "\"static\"",
            "\"prob\"",
            "\"pgo\"",
            "\"escape\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        earth_ir::json::parse(&json).expect("artifact is valid JSON");
    }
}
