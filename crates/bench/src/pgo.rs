//! Profile-guided-optimization ablation (EXPERIMENTS.md `ablation_pgo`):
//! for each Olden benchmark, run the instrumented build (simple compile,
//! per-site trace recording), fold the trace into a [`Profile`],
//! recompile with the profile feeding placement and selection, and
//! compare against the static heuristics.

use earth_commopt::{CommOptConfig, OptReport, Profile, ProfileDb};
use earth_olden::{run, Benchmark, Build, Preset};
use earth_sim::{CodegenOptions, Machine, MachineConfig, RunResult};
use std::sync::Arc;

/// The outcome of the static-vs-PGO comparison on one benchmark.
#[derive(Debug, Clone)]
pub struct PgoResult {
    /// Benchmark name.
    pub bench: &'static str,
    /// Sites assigned over the program fed to the optimizer.
    pub sites_instrumented: usize,
    /// Sites of those the profile has counters for.
    pub sites_matched: usize,
    /// Selection decisions where the measured choice differed from the
    /// static heuristic.
    pub decisions_flipped: usize,
    /// Virtual time of the statically-optimized build (ns).
    pub static_time_ns: u64,
    /// Virtual time of the profile-guided build (ns).
    pub pgo_time_ns: u64,
    /// Total communication of the statically-optimized build.
    pub static_comm: u64,
    /// Total communication of the profile-guided build.
    pub pgo_comm: u64,
}

/// Runs the instrumented build of a benchmark — the simple (unoptimized)
/// compile with [`CodegenOptions::record_sites`] on, which is the same
/// tree the feedback compile assigns sites over — and folds the run's
/// per-site trace into a [`Profile`].
pub fn collect_profile(bench: &Benchmark, preset: Preset, n_nodes: u16) -> Profile {
    let (prog, _) = earth_olden::build_ir(bench, &Build::Simple);
    let opts = CodegenOptions {
        record_sites: true,
        ..CodegenOptions::default()
    };
    let compiled = earth_sim::compile(&prog, opts).expect("instrumented codegen");
    let entry = compiled.function_by_name("main").expect("benchmark main");
    let mut m = Machine::new(MachineConfig::with_nodes(n_nodes));
    let r = m
        .run(&compiled, entry, &(bench.args)(preset))
        .expect("instrumented run");
    Profile::from_trace(&compiled, &r.site_trace)
}

/// Optimized compile + run keeping the optimizer's report (which
/// [`earth_olden::run`] discards).
fn optimized_run(
    bench: &Benchmark,
    cfg: CommOptConfig,
    preset: Preset,
    n_nodes: u16,
) -> (RunResult, OptReport) {
    let (prog, report) = earth_olden::build_ir(bench, &Build::Optimized(cfg));
    let compiled = earth_sim::compile(&prog, CodegenOptions::default()).expect("optimized codegen");
    let entry = compiled.function_by_name("main").expect("benchmark main");
    let mut m = Machine::new(MachineConfig::with_nodes(n_nodes));
    let r = m
        .run(&compiled, entry, &(bench.args)(preset))
        .expect("optimized run");
    (r, report)
}

/// Instrument → simulate → recompile-with-profile for one benchmark,
/// asserting that the simple, static, and profile-guided builds agree on
/// the result.
pub fn run_pgo(bench: &Benchmark, preset: Preset, n_nodes: u16) -> PgoResult {
    let profile = collect_profile(bench, preset, n_nodes);
    let db = Arc::new(ProfileDb::new(profile));

    // Site accounting over the tree the optimizer will see.
    let (prog, _) = earth_olden::build_ir(bench, &Build::Simple);
    let sites_instrumented = earth_ir::assign_program_sites(&prog).len();
    let sites_matched = prog
        .iter_functions()
        .map(|(fid, f)| db.function_view(fid, f).matched())
        .sum();

    let baseline = run(bench, &Build::Simple, preset, n_nodes).expect("simple run");
    let (st, _) = optimized_run(bench, CommOptConfig::default(), preset, n_nodes);
    let pgo_cfg = CommOptConfig {
        profile: Some(db),
        ..CommOptConfig::default()
    };
    let (pg, report) = optimized_run(bench, pgo_cfg, preset, n_nodes);
    assert_eq!(
        st.ret, baseline.ret,
        "{}: static build changed the result",
        bench.name
    );
    assert_eq!(
        pg.ret, baseline.ret,
        "{}: PGO build changed the result",
        bench.name
    );

    PgoResult {
        bench: bench.name,
        sites_instrumented,
        sites_matched,
        decisions_flipped: report.total().pgo_flips,
        static_time_ns: st.time_ns,
        pgo_time_ns: pg.time_ns,
        static_comm: st.stats.total_comm(),
        pgo_comm: pg.stats.total_comm(),
    }
}

/// Renders PGO results as a table.
pub fn render_pgo(results: &[PgoResult]) -> String {
    let data: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.bench.to_string(),
                format!("{}/{}", r.sites_matched, r.sites_instrumented),
                r.decisions_flipped.to_string(),
                crate::render::secs(r.static_time_ns),
                crate::render::secs(r.pgo_time_ns),
                format!(
                    "{:+.2}%",
                    100.0 * (r.pgo_time_ns as f64 - r.static_time_ns as f64)
                        / r.static_time_ns as f64
                ),
                r.static_comm.to_string(),
                r.pgo_comm.to_string(),
            ]
        })
        .collect();
    crate::render::table(
        &[
            "benchmark",
            "sites",
            "flips",
            "static(s)",
            "pgo(s)",
            "delta",
            "comm",
            "comm-pgo",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_olden::by_name;

    /// Every benchmark's profile covers sites, and feedback never changes
    /// the computed result (asserted inside `run_pgo`).
    #[test]
    fn pgo_matches_sites_and_preserves_results() {
        for name in ["power", "health"] {
            let bench = by_name(name).unwrap();
            let r = run_pgo(&bench, Preset::Test, 2);
            assert!(r.sites_matched > 0, "{name}: no sites matched");
            assert!(
                r.sites_matched <= r.sites_instrumented,
                "{name}: matched {} of {} sites",
                r.sites_matched,
                r.sites_instrumented
            );
        }
    }

    #[test]
    fn pgo_renders() {
        let bench = by_name("perimeter").unwrap();
        let r = run_pgo(&bench, Preset::Test, 2);
        let s = render_pgo(std::slice::from_ref(&r));
        assert!(s.contains("perimeter"), "{s}");
    }
}
