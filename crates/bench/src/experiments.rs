//! Experiment drivers for Figure 10 (dynamic communication counts) and
//! Table III (performance improvement).

use crate::render;
use earth_commopt::CommOptConfig;
use earth_olden::{run, suite, Benchmark, Build, Preset};
use earth_sim::Stats;

/// Communication-count breakdown for one build of one benchmark
/// (Figure 10's bar contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommBreakdown {
    /// Remote word reads.
    pub read_data: u64,
    /// Remote word writes.
    pub write_data: u64,
    /// Block moves.
    pub blkmov: u64,
}

impl CommBreakdown {
    fn from_stats(s: &Stats) -> Self {
        CommBreakdown {
            read_data: s.read_data,
            write_data: s.write_data,
            blkmov: s.blkmov,
        }
    }

    /// Total communication operations.
    pub fn total(&self) -> u64 {
        self.read_data + self.write_data + self.blkmov
    }
}

/// One benchmark's Figure 10 data.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Counts for the simple (unoptimized) build.
    pub simple: CommBreakdown,
    /// Counts for the optimized build.
    pub optimized: CommBreakdown,
}

impl Fig10Row {
    /// Optimized total, normalized to simple = 100 (the figure's y-axis).
    pub fn normalized_optimized(&self) -> f64 {
        100.0 * self.optimized.total() as f64 / self.simple.total() as f64
    }
}

/// Measures Figure 10 for every benchmark.
pub fn figure10(preset: Preset, n_nodes: u16) -> Vec<Fig10Row> {
    suite()
        .iter()
        .map(|b| figure10_one(b, preset, n_nodes))
        .collect()
}

/// Measures Figure 10 for one benchmark.
pub fn figure10_one(bench: &Benchmark, preset: Preset, n_nodes: u16) -> Fig10Row {
    let simple = run(bench, &Build::Simple, preset, n_nodes).expect("simple run");
    let optimized = run(
        bench,
        &Build::Optimized(CommOptConfig::default()),
        preset,
        n_nodes,
    )
    .expect("optimized run");
    assert_eq!(simple.ret, optimized.ret, "{}: builds disagree", bench.name);
    Fig10Row {
        bench: bench.name,
        simple: CommBreakdown::from_stats(&simple.stats),
        optimized: CommBreakdown::from_stats(&optimized.stats),
    }
}

/// Renders Figure 10 as a table plus ASCII bars.
pub fn render_figure10(rows: &[Fig10Row]) -> String {
    let mut data = Vec::new();
    for r in rows {
        let n = |v: u64| -> String { format!("{:.1}", 100.0 * v as f64 / r.simple.total() as f64) };
        data.push(vec![
            r.bench.to_string(),
            format!("{:.3}M", r.simple.total() as f64 / 1e6),
            "100.0".into(),
            n(r.simple.read_data),
            n(r.simple.write_data),
            n(r.simple.blkmov),
            format!("{:.1}", r.normalized_optimized()),
            n(r.optimized.read_data),
            n(r.optimized.write_data),
            n(r.optimized.blkmov),
        ]);
    }
    let mut out = render::table(
        &[
            "benchmark",
            "total(simple)",
            "simple",
            "rd",
            "wr",
            "blk",
            "optimized",
            "rd",
            "wr",
            "blk",
        ],
        &data,
    );
    out.push('\n');
    for r in rows {
        let bar = |x: f64| "#".repeat((x / 2.0).round() as usize);
        out.push_str(&format!(
            "{:<10} simple    |{}\n{:<10} optimized |{}\n",
            r.bench,
            bar(100.0),
            "",
            bar(r.normalized_optimized())
        ));
    }
    out
}

/// One `(benchmark, processors)` row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Number of processors for the parallel builds.
    pub procs: u16,
    /// Sequential-C time (ns), same for every `procs`.
    pub sequential_ns: u64,
    /// Simple EARTH-C time (ns).
    pub simple_ns: u64,
    /// Optimized EARTH-C time (ns).
    pub optimized_ns: u64,
}

impl Table3Row {
    /// Speedup of the simple build over sequential.
    pub fn simple_speedup(&self) -> f64 {
        self.sequential_ns as f64 / self.simple_ns as f64
    }

    /// Speedup of the optimized build over sequential.
    pub fn optimized_speedup(&self) -> f64 {
        self.sequential_ns as f64 / self.optimized_ns as f64
    }

    /// Improvement of optimized over simple (the paper's last column).
    pub fn improvement(&self) -> f64 {
        (self.simple_ns as f64 - self.optimized_ns as f64) / self.simple_ns as f64
    }
}

/// Measures Table III for one benchmark over the given processor counts.
pub fn table3_one(bench: &Benchmark, preset: Preset, procs: &[u16]) -> Vec<Table3Row> {
    let seq = run(bench, &Build::Sequential, preset, 1).expect("sequential run");
    procs
        .iter()
        .map(|&p| {
            let simple = run(bench, &Build::Simple, preset, p).expect("simple run");
            let optimized = run(
                bench,
                &Build::Optimized(CommOptConfig::default()),
                preset,
                p,
            )
            .expect("optimized run");
            assert_eq!(simple.ret, seq.ret, "{}: simple result", bench.name);
            assert_eq!(optimized.ret, seq.ret, "{}: optimized result", bench.name);
            Table3Row {
                bench: bench.name,
                procs: p,
                sequential_ns: seq.time_ns,
                simple_ns: simple.time_ns,
                optimized_ns: optimized.time_ns,
            }
        })
        .collect()
}

/// Measures Table III for the whole suite.
pub fn table3(preset: Preset, procs: &[u16]) -> Vec<Table3Row> {
    suite()
        .iter()
        .flat_map(|b| table3_one(b, preset, procs))
        .collect()
}

/// Renders Table III in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bench.to_string(),
                format!("{} procs", r.procs),
                render::secs(r.sequential_ns),
                render::secs(r.simple_ns),
                render::secs(r.optimized_ns),
                format!("{:.2}", r.simple_speedup()),
                format!("{:.2}", r.optimized_speedup()),
                render::pct(r.improvement()),
            ]
        })
        .collect();
    render::table(
        &[
            "Benchmark",
            "",
            "Sequential(s)",
            "Simple(s)",
            "Optimized(s)",
            "Simple-SU",
            "Opt-SU",
            "%impr",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_olden::by_name;

    #[test]
    fn fig10_shape_for_health() {
        let bench = by_name("health").unwrap();
        let row = figure10_one(&bench, Preset::Test, 4);
        assert!(row.normalized_optimized() < 100.0);
        assert!(row.simple.total() > 0);
    }

    #[test]
    fn table3_shape_for_power() {
        let bench = by_name("power").unwrap();
        let rows = table3_one(&bench, Preset::Test, &[1, 2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.improvement() > -0.05,
                "optimization should not hurt much: {}",
                r.improvement()
            );
        }
    }

    #[test]
    fn render_contains_columns() {
        let bench = by_name("power").unwrap();
        let rows = table3_one(&bench, Preset::Test, &[1]);
        let s = render_table3(&rows);
        assert!(s.contains("%impr"));
        assert!(s.contains("power"));
        let f = figure10_one(&bench, Preset::Test, 2);
        let fs = render_figure10(&[f]);
        assert!(fs.contains("optimized"));
    }
}
