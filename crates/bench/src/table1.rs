//! Table I: cost of communication on (simulated) EARTH-MANNA.
//!
//! Measures the sequential and pipelined cost of remote word reads, word
//! writes, and one-word block moves with microkernels, exactly as the
//! numbers in the paper's Table I were measured: *sequential* = each
//! operation completes (synchronizes) before the next issues; *pipelined*
//! = operations are issued back-to-back as fast as possible.

use earth_ir::builder::FunctionBuilder;
use earth_ir::{BinOp, BlkDir, Builtin, Cond, Operand, Program, StructDef, Ty, VarDecl};
use earth_sim::{compile, CodegenOptions, Machine, MachineConfig, Value};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Operation name ("Read word", ...).
    pub op: &'static str,
    /// Measured per-operation cost when synchronizing after each op (ns).
    pub sequential_ns: f64,
    /// Measured per-operation cost when issuing back-to-back (ns).
    pub pipelined_ns: f64,
}

const ITERS: i64 = 1000;

/// Builds a kernel program. Every kernel allocates one remote object on
/// node 1, then loops `ITERS` times around the measured operation; a
/// baseline kernel with an empty loop body lets the harness subtract loop
/// overhead.
fn kernel_program() -> (Program, KernelIds) {
    let mut prog = Program::new();
    let mut cell = StructDef::new("Cell");
    let f0 = cell.add_field("f0", Ty::Int);
    let sid = prog.add_struct(cell);

    // Shared preamble: p = malloc_on(1, Cell); p->f0 = 7; i = 0.
    let build = |name: &str,
                 body: &mut dyn FnMut(
        &mut FunctionBuilder,
        earth_ir::VarId, // p
        earth_ir::VarId, // t (int temp)
        earth_ir::VarId, // buf (struct)
    )| {
        let mut fb = FunctionBuilder::new(name, Some(Ty::Int));
        let p = fb.var(VarDecl::new("p", Ty::Ptr(sid)));
        let t = fb.var(VarDecl::new("t", Ty::Int));
        let buf = fb.var(VarDecl::new("buf", Ty::Struct(sid)));
        let i = fb.var(VarDecl::new("i", Ty::Int));
        fb.malloc(p, sid, Some(Operand::int(1)));
        fb.store_deref(p, f0, Operand::int(7));
        fb.builtin(t, Builtin::Fence, vec![]);
        fb.assign(i, Operand::int(0));
        fb.while_loop(
            Cond::new(BinOp::Lt, Operand::Var(i), Operand::int(ITERS)),
            |b| {
                body(b, p, t, buf);
                b.binop(i, BinOp::Add, Operand::Var(i), Operand::int(1));
            },
        );
        // Drain outstanding writes so they are attributed to the kernel.
        fb.builtin(t, Builtin::Fence, vec![]);
        fb.ret(Some(Operand::int(0)));
        fb.finish()
    };

    let ids = KernelIds {
        baseline: prog.add_function(build("baseline", &mut |_b, _p, _t, _buf| {})),
        read_seq: prog.add_function(build("read_seq", &mut |b, p, t, _buf| {
            // Load and immediately use: forces synchronization.
            b.load_deref(t, p, f0);
            b.binop(t, BinOp::Add, Operand::Var(t), Operand::int(0));
        })),
        read_pipe: prog.add_function(build("read_pipe", &mut |b, p, t, _buf| {
            // Load without using the value: issues overlap.
            b.load_deref(t, p, f0);
        })),
        write_seq: prog.add_function(build("write_seq", &mut |b, p, t, _buf| {
            b.store_deref(p, f0, Operand::int(9));
            b.builtin(t, Builtin::Fence, vec![]);
        })),
        write_pipe: prog.add_function(build("write_pipe", &mut |b, p, _t, _buf| {
            b.store_deref(p, f0, Operand::int(9));
        })),
        blk_seq: prog.add_function(build("blk_seq", &mut |b, p, t, buf| {
            b.blkmov(BlkDir::RemoteToLocal, p, buf);
            // Use a word of the buffer: synchronizes on completion (the
            // copy alone would just propagate the pending state).
            b.load_field(t, buf, f0);
            b.binop(t, BinOp::Add, Operand::Var(t), Operand::int(0));
        })),
        blk_pipe: prog.add_function(build("blk_pipe", &mut |b, p, _t, buf| {
            b.blkmov(BlkDir::RemoteToLocal, p, buf);
        })),
    };
    (prog, ids)
}

#[derive(Debug, Clone, Copy)]
struct KernelIds {
    baseline: earth_ir::FuncId,
    read_seq: earth_ir::FuncId,
    read_pipe: earth_ir::FuncId,
    write_seq: earth_ir::FuncId,
    write_pipe: earth_ir::FuncId,
    blk_seq: earth_ir::FuncId,
    blk_pipe: earth_ir::FuncId,
}

fn time_kernel(prog: &Program, id: earth_ir::FuncId) -> u64 {
    let compiled = compile(prog, CodegenOptions::default()).expect("kernel compiles");
    let mut m = Machine::new(MachineConfig::with_nodes(2));
    let r = m.run(&compiled, id, &[]).expect("kernel runs");
    assert_eq!(r.ret, Value::Int(0));
    r.time_ns
}

/// Runs the six microkernels and derives per-operation costs.
pub fn measure() -> Vec<Row> {
    let (prog, ids) = kernel_program();
    let base = time_kernel(&prog, ids.baseline);
    let per_op = |total: u64, extra_ops: u64| -> f64 {
        (total.saturating_sub(base) as f64) / ITERS as f64 - extra_ops as f64 * 40.0
    };
    vec![
        Row {
            op: "Read word",
            // The read_seq body has one extra ALU op (the use).
            sequential_ns: per_op(time_kernel(&prog, ids.read_seq), 1),
            pipelined_ns: per_op(time_kernel(&prog, ids.read_pipe), 0),
        },
        Row {
            op: "Write word",
            // write_seq has one extra fence builtin op.
            sequential_ns: per_op(time_kernel(&prog, ids.write_seq), 1),
            pipelined_ns: per_op(time_kernel(&prog, ids.write_pipe), 0),
        },
        Row {
            op: "Blkmov word",
            // blk_seq has two extra ops (the buffer copy and the use).
            sequential_ns: per_op(time_kernel(&prog, ids.blk_seq), 2),
            pipelined_ns: per_op(time_kernel(&prog, ids.blk_pipe), 0),
        },
    ]
}

/// Renders the measured rows next to the paper's numbers.
pub fn render(rows: &[Row]) -> String {
    let paper = [(7109.0, 1908.0), (6458.0, 1749.0), (9700.0, 2602.0)];
    let data: Vec<Vec<String>> = rows
        .iter()
        .zip(paper)
        .map(|(r, (ps, pp))| {
            vec![
                r.op.to_string(),
                format!("{:.0}ns", r.sequential_ns),
                format!("{ps:.0}ns"),
                format!("{:.0}ns", r.pipelined_ns),
                format!("{pp:.0}ns"),
            ]
        })
        .collect();
    crate::render::table(
        &[
            "EARTH Operation",
            "Sequential",
            "(paper)",
            "Pipelined",
            "(paper)",
        ],
        &data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_costs_match_table_one_shape() {
        let rows = measure();
        assert_eq!(rows.len(), 3);
        let read = &rows[0];
        let write = &rows[1];
        let blk = &rows[2];
        // Within 15% of the paper's numbers (loop scheduling adds a bit).
        let close = |a: f64, b: f64| (a - b).abs() / b < 0.15;
        assert!(close(read.sequential_ns, 7109.0), "{}", read.sequential_ns);
        assert!(close(read.pipelined_ns, 1908.0), "{}", read.pipelined_ns);
        assert!(
            close(write.sequential_ns, 6458.0),
            "{}",
            write.sequential_ns
        );
        assert!(close(write.pipelined_ns, 1749.0), "{}", write.pipelined_ns);
        assert!(close(blk.sequential_ns, 9700.0), "{}", blk.sequential_ns);
        assert!(close(blk.pipelined_ns, 2602.0), "{}", blk.pipelined_ns);
        // And the orderings the paper highlights hold.
        assert!(read.pipelined_ns < read.sequential_ns);
        assert!(write.pipelined_ns < write.sequential_ns);
        assert!(blk.pipelined_ns < blk.sequential_ns);
    }

    #[test]
    fn render_includes_paper_reference() {
        let rows = measure();
        let s = render(&rows);
        assert!(s.contains("7109ns"));
        assert!(s.contains("Read word"));
    }
}
