//! Property tests for the IR: random builder-constructed programs always
//! validate, have unique labels, and round-trip through the pretty
//! printer without panicking.

use earth_ir::builder::FunctionBuilder;
use earth_ir::{
    validate_program, BinOp, Cond, Operand, Program, StructDef, Ty, VarDecl,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Assign(u8),
    Load(u8),
    Store(u8),
    Bin(u8, u8),
    If(Vec<Action>, Vec<Action>),
    While(Vec<Action>),
}

fn action(depth: u32) -> BoxedStrategy<Action> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(Action::Assign),
        any::<u8>().prop_map(Action::Load),
        any::<u8>().prop_map(Action::Store),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Action::Bin(a, b)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        prop_oneof![
            3 => leaf,
            1 => (actions(depth - 1), actions(depth - 1))
                .prop_map(|(t, e)| Action::If(t, e)),
            1 => actions(depth - 1).prop_map(Action::While),
        ]
        .boxed()
    }
}

fn actions(depth: u32) -> BoxedStrategy<Vec<Action>> {
    prop::collection::vec(action(depth), 1..6).boxed()
}

fn build(actions_list: &[Action]) -> Program {
    let mut prog = Program::new();
    let mut s = StructDef::new("S");
    let f0 = s.add_field("a", Ty::Int);
    let f1 = s.add_field("b", Ty::Int);
    let sid = prog.add_struct(s);
    let mut fb = FunctionBuilder::new("f", Some(Ty::Int));
    let p = fb.param(VarDecl::new("p", Ty::Ptr(sid)));
    let x = fb.var(VarDecl::new("x", Ty::Int));
    let y = fb.var(VarDecl::new("y", Ty::Int));
    fb.assign(x, Operand::int(0));
    fb.assign(y, Operand::int(1));
    emit(&mut fb, actions_list, p, x, y, f0, f1);
    fb.ret(Some(Operand::Var(x)));
    prog.add_function(fb.finish());
    prog
}

fn emit(
    fb: &mut FunctionBuilder,
    actions_list: &[Action],
    p: earth_ir::VarId,
    x: earth_ir::VarId,
    y: earth_ir::VarId,
    f0: earth_ir::FieldId,
    f1: earth_ir::FieldId,
) {
    for a in actions_list {
        match a {
            Action::Assign(k) => fb.assign(x, Operand::int(*k as i64)),
            Action::Load(k) => fb.load_deref(if k % 2 == 0 { x } else { y }, p, f0),
            Action::Store(k) => fb.store_deref(p, f1, Operand::int(*k as i64)),
            Action::Bin(a, b) => fb.binop(
                y,
                BinOp::Add,
                Operand::int(*a as i64),
                Operand::int(*b as i64),
            ),
            Action::If(t, e) => {
                let (t, e) = (t.clone(), e.clone());
                fb.begin_seq();
                emit(fb, &t, p, x, y, f0, f1);
                let then_s = fb.end_seq();
                fb.begin_seq();
                emit(fb, &e, p, x, y, f0, f1);
                let else_s = fb.end_seq();
                fb.emit_if(
                    Cond::new(BinOp::Lt, Operand::Var(x), Operand::Var(y)),
                    then_s,
                    else_s,
                );
            }
            Action::While(body) => {
                let body = body.clone();
                fb.begin_seq();
                emit(fb, &body, p, x, y, f0, f1);
                let b = fb.end_seq();
                fb.emit_while(Cond::new(BinOp::Ne, Operand::Var(x), Operand::Var(y)), b);
            }
        }
    }
}

proptest! {
    #[test]
    fn random_programs_validate(acts in actions(3)) {
        let prog = build(&acts);
        validate_program(&prog).unwrap();
        // Labels are unique.
        let f = prog.function(prog.function_by_name("f").unwrap());
        let labels = f.body.labels();
        let mut sorted: Vec<_> = labels.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), labels.len());
        // Pretty printing never panics and mentions the remote marker when
        // loads exist.
        let text = earth_ir::pretty::print_program(&prog);
        prop_assert!(text.contains("int f(S* p)") || text.contains("f(S* p)"));
    }

}
