//! Property tests for the IR: random builder-constructed programs always
//! validate, have unique labels, and round-trip through the pretty
//! printer without panicking.

use earth_ir::builder::FunctionBuilder;
use earth_ir::{validate_program, BinOp, Cond, Operand, Program, StructDef, Ty, VarDecl};
use earth_qcheck::Rng;

#[derive(Debug, Clone)]
enum Action {
    Assign(u8),
    Load(u8),
    Store(u8),
    Bin(u8, u8),
    If(Vec<Action>, Vec<Action>),
    While(Vec<Action>),
}

fn gen_action(rng: &mut Rng, depth: u32) -> Action {
    // Leaves weighted 3:1:1 against compounds, as in the old strategy.
    let roll = if depth == 0 { 0 } else { rng.index(5) };
    match roll {
        3 => Action::If(gen_actions(rng, depth - 1), gen_actions(rng, depth - 1)),
        4 => Action::While(gen_actions(rng, depth - 1)),
        _ => match rng.index(4) {
            0 => Action::Assign(rng.u8()),
            1 => Action::Load(rng.u8()),
            2 => Action::Store(rng.u8()),
            _ => Action::Bin(rng.u8(), rng.u8()),
        },
    }
}

fn gen_actions(rng: &mut Rng, depth: u32) -> Vec<Action> {
    let n = 1 + rng.index(5);
    (0..n).map(|_| gen_action(rng, depth)).collect()
}

fn build(actions_list: &[Action]) -> Program {
    let mut prog = Program::new();
    let mut s = StructDef::new("S");
    let f0 = s.add_field("a", Ty::Int);
    let f1 = s.add_field("b", Ty::Int);
    let sid = prog.add_struct(s);
    let mut fb = FunctionBuilder::new("f", Some(Ty::Int));
    let p = fb.param(VarDecl::new("p", Ty::Ptr(sid)));
    let x = fb.var(VarDecl::new("x", Ty::Int));
    let y = fb.var(VarDecl::new("y", Ty::Int));
    fb.assign(x, Operand::int(0));
    fb.assign(y, Operand::int(1));
    emit(&mut fb, actions_list, p, x, y, f0, f1);
    fb.ret(Some(Operand::Var(x)));
    prog.add_function(fb.finish());
    prog
}

fn emit(
    fb: &mut FunctionBuilder,
    actions_list: &[Action],
    p: earth_ir::VarId,
    x: earth_ir::VarId,
    y: earth_ir::VarId,
    f0: earth_ir::FieldId,
    f1: earth_ir::FieldId,
) {
    for a in actions_list {
        match a {
            Action::Assign(k) => fb.assign(x, Operand::int(*k as i64)),
            Action::Load(k) => fb.load_deref(if k % 2 == 0 { x } else { y }, p, f0),
            Action::Store(k) => fb.store_deref(p, f1, Operand::int(*k as i64)),
            Action::Bin(a, b) => fb.binop(
                y,
                BinOp::Add,
                Operand::int(*a as i64),
                Operand::int(*b as i64),
            ),
            Action::If(t, e) => {
                let (t, e) = (t.clone(), e.clone());
                fb.begin_seq();
                emit(fb, &t, p, x, y, f0, f1);
                let then_s = fb.end_seq();
                fb.begin_seq();
                emit(fb, &e, p, x, y, f0, f1);
                let else_s = fb.end_seq();
                fb.emit_if(
                    Cond::new(BinOp::Lt, Operand::Var(x), Operand::Var(y)),
                    then_s,
                    else_s,
                );
            }
            Action::While(body) => {
                let body = body.clone();
                fb.begin_seq();
                emit(fb, &body, p, x, y, f0, f1);
                let b = fb.end_seq();
                fb.emit_while(Cond::new(BinOp::Ne, Operand::Var(x), Operand::Var(y)), b);
            }
        }
    }
}

#[test]
fn random_programs_validate() {
    earth_qcheck::cases(256, |rng| {
        let acts = gen_actions(rng, 3);
        let prog = build(&acts);
        validate_program(&prog).unwrap();
        // Labels are unique.
        let f = prog.function(prog.function_by_name("f").unwrap());
        let labels = f.body.labels();
        let mut sorted: Vec<_> = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
        // Pretty printing never panics and names the function.
        let text = earth_ir::pretty::print_program(&prog);
        assert!(text.contains("int f(S* p)") || text.contains("f(S* p)"));
    });
}
