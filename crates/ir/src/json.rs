//! Shared hand-rolled JSON reader/writer for the EARTH-C toolchain.
//!
//! The workspace builds offline (no serde), so every machine-readable
//! surface — diagnostics ([`crate::diag`]), execution profiles
//! (`earth-profile`), pass reports (`earth-pass`), and the `earthd`
//! wire protocol (`earth-serve`) — encodes to JSON by hand. This module
//! is the one implementation they all share: a writer with full
//! string-escape handling (including the control characters
//! `U+0000`–`U+001F`, which the pre-extraction emitters each
//! re-implemented and none round-trip-tested) and a small
//! recursive-descent reader producing a [`Value`] tree.
//!
//! The encoding is deliberately minimal but is a strict subset of JSON:
//! anything this module writes, any JSON parser reads, and
//! [`parse`] → [`Value::render`] → [`parse`] is the identity on the
//! supported shapes.
//!
//! # Examples
//!
//! ```
//! use earth_ir::json::{self, Value};
//!
//! let v = json::parse(r#"{"name":"tab\there","hits":3,"sub":[1,-2,true,null]}"#).unwrap();
//! let obj = v.as_object("request").unwrap();
//! use earth_ir::json::ObjectExt as _;
//! assert_eq!(obj.get_str("name").unwrap(), "tab\there");
//! assert_eq!(obj.get_u64("hits").unwrap(), 3);
//! // Control characters survive a full round trip.
//! let s = json::string("\u{0000}\u{001f}\"\\");
//! assert_eq!(s, "\"\\u0000\\u001f\\\"\\\\\"");
//! assert_eq!(json::parse(&s).unwrap(), Value::Str("\u{0000}\u{001f}\"\\".into()));
//! ```

use std::fmt;

/// A JSON parse or shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the problem, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A shape (wrong-type / missing-field) error with no position.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "JSON error at byte {o}: {}", self.message),
            None => write!(f, "JSON error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
///
/// Numbers are split into [`Value::Int`] (integer literals that fit an
/// `i64`) and [`Value::Float`] (everything else), so the integer
/// counters the toolchain exchanges round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal representable as `i64`.
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source field order (duplicate keys are kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, or a shape error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&[(String, Value)], JsonError> {
        match self {
            Value::Object(fields) => Ok(fields),
            _ => Err(JsonError::shape(format!("{what} must be an object"))),
        }
    }

    /// The array's items, or a shape error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(JsonError::shape(format!("{what} must be an array"))),
        }
    }

    /// The string's contents, or a shape error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(JsonError::shape(format!("{what} must be a string"))),
        }
    }

    /// The value as a `u64`, or a shape error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            _ => Err(JsonError::shape(format!(
                "{what} must be a non-negative integer"
            ))),
        }
    }

    /// Serializes this value back to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => out.push_str(&float(*x)),
            Value::Str(s) => out.push_str(&string(s)),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&string(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Typed field access over an object's `(key, value)` slice.
pub trait ObjectExt {
    /// The raw value of `key`, if present (first occurrence).
    fn field(&self, key: &str) -> Option<&Value>;
    /// The string field `key`.
    fn get_str(&self, key: &str) -> Result<String, JsonError>;
    /// The non-negative integer field `key` as `u64`.
    fn get_u64(&self, key: &str) -> Result<u64, JsonError>;
    /// The non-negative integer field `key` as `u32`.
    fn get_u32(&self, key: &str) -> Result<u32, JsonError>;
    /// The integer field `key` as `i64`.
    fn get_i64(&self, key: &str) -> Result<i64, JsonError>;
    /// The numeric field `key` as `f64` (integers widen).
    fn get_f64(&self, key: &str) -> Result<f64, JsonError>;
    /// The boolean field `key`.
    fn get_bool(&self, key: &str) -> Result<bool, JsonError>;
    /// The array field `key`.
    fn get_array(&self, key: &str) -> Result<&[Value], JsonError>;
}

impl ObjectExt for [(String, Value)] {
    fn field(&self, key: &str) -> Option<&Value> {
        self.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str(&self, key: &str) -> Result<String, JsonError> {
        match self.field(key) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(JsonError::shape(format!("`{key}` must be a string"))),
        }
    }

    fn get_u64(&self, key: &str) -> Result<u64, JsonError> {
        match self.field(key) {
            Some(Value::Int(n)) if *n >= 0 => Ok(*n as u64),
            _ => Err(JsonError::shape(format!(
                "`{key}` must be a non-negative integer"
            ))),
        }
    }

    fn get_u32(&self, key: &str) -> Result<u32, JsonError> {
        match self.get_u64(key)? {
            n if n <= u32::MAX as u64 => Ok(n as u32),
            _ => Err(JsonError::shape(format!("`{key}` must be a u32"))),
        }
    }

    fn get_i64(&self, key: &str) -> Result<i64, JsonError> {
        match self.field(key) {
            Some(Value::Int(n)) => Ok(*n),
            _ => Err(JsonError::shape(format!("`{key}` must be an integer"))),
        }
    }

    fn get_f64(&self, key: &str) -> Result<f64, JsonError> {
        match self.field(key) {
            Some(Value::Float(x)) => Ok(*x),
            Some(Value::Int(n)) => Ok(*n as f64),
            _ => Err(JsonError::shape(format!("`{key}` must be a number"))),
        }
    }

    fn get_bool(&self, key: &str) -> Result<bool, JsonError> {
        match self.field(key) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(JsonError::shape(format!("`{key}` must be a boolean"))),
        }
    }

    fn get_array(&self, key: &str) -> Result<&[Value], JsonError> {
        match self.field(key) {
            Some(Value::Array(items)) => Ok(items),
            _ => Err(JsonError::shape(format!("`{key}` must be an array"))),
        }
    }
}

/// Serializes a string as a quoted JSON string literal, escaping `"`,
/// `\`, and every control character in `U+0000`–`U+001F`.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_string(&mut out, s);
    out
}

/// Appends the escaped, quoted form of `s` to `out` (allocation-free
/// form of [`string`]).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes a float as a JSON number literal. Finite values always
/// carry a decimal point or exponent (so they re-parse as
/// [`Value::Float`]); non-finite values, which JSON cannot represent,
/// are written as `null`.
pub fn float(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// Incremental writer for a JSON object: `{"k":v,...}` with correct
/// commas and escaping. [`Obj::raw`] splices an already-encoded value
/// (a nested object, an array built elsewhere) without re-escaping.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    n: usize,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            n: 0,
        }
    }

    fn key(&mut self, k: &str) {
        if self.n > 0 {
            self.buf.push(',');
        }
        self.n += 1;
        push_string(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        push_string(&mut self.buf, v);
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (see [`float`] for the encoding).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&float(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-encoded JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Adds an optional string field (`null` when absent).
    pub fn opt_str(mut self, k: &str, v: Option<&str>) -> Self {
        self.key(k);
        match v {
            Some(s) => push_string(&mut self.buf, s),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a string-array field.
    pub fn str_array(mut self, k: &str, items: &[String]) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, s) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_string(&mut self.buf, s);
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the encoded JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Parses a complete JSON document (trailing data is an error).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

/// Nesting bound: the reader is used on untrusted daemon input, so a
/// deeply-nested document must not blow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &'static [u8], v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b) if b.is_ascii_digit() || b == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-42",
            "9007199254740993",
            "1.5",
            "-0.25",
            "\"\"",
            "\"plain\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ];
        for src in cases {
            let v = parse(src).unwrap();
            assert_eq!(v.render(), src, "render of {src}");
            assert_eq!(parse(&v.render()).unwrap(), v, "re-parse of {src}");
        }
    }

    #[test]
    fn control_characters_round_trip() {
        // Every control character, plus the classic escapes.
        let mut s = String::new();
        for cp in 0u32..0x20 {
            s.push(char::from_u32(cp).unwrap());
        }
        s.push_str("\" \\ / λ → 🚀");
        let enc = string(&s);
        // The encoding never contains a raw control character.
        assert!(enc.chars().all(|c| (c as u32) >= 0x20), "{enc:?}");
        assert_eq!(parse(&enc).unwrap(), Value::Str(s));
    }

    #[test]
    fn floats_reparse_as_floats() {
        for x in [0.0, 1.0, -3.0, 0.5, 1e300, -2.25] {
            let enc = float(x);
            match parse(&enc).unwrap() {
                Value::Float(y) => assert_eq!(x, y, "{enc}"),
                other => panic!("{enc} parsed as {other:?}"),
            }
        }
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
    }

    #[test]
    fn integers_outside_i64_become_floats() {
        match parse("18446744073709551615").unwrap() {
            Value::Float(_) => {}
            other => panic!("expected float, got {other:?}"),
        }
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
    }

    #[test]
    fn object_builder_matches_parser() {
        let enc = Obj::new()
            .str("name", "tab\there")
            .u64("hits", 3)
            .i64("delta", -7)
            .f64("ratio", 0.5)
            .bool("ok", true)
            .opt_str("missing", None)
            .raw("nested", "[1,2]")
            .str_array("lines", &["a".into(), "b\nc".into()])
            .finish();
        let v = parse(&enc).unwrap();
        let obj = v.as_object("built").unwrap();
        assert_eq!(obj.get_str("name").unwrap(), "tab\there");
        assert_eq!(obj.get_u64("hits").unwrap(), 3);
        assert_eq!(obj.get_i64("delta").unwrap(), -7);
        assert_eq!(obj.get_f64("ratio").unwrap(), 0.5);
        assert!(obj.get_bool("ok").unwrap());
        assert_eq!(obj.field("missing"), Some(&Value::Null));
        assert_eq!(obj.get_array("nested").unwrap().len(), 2);
        assert_eq!(obj.get_array("lines").unwrap().len(), 2);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "01x", "nul", "tru", "--1", "1.2.3",
            "[1] []",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&ok).is_ok());
    }
}
