//! Functions and whole programs.

use crate::stmt::{Label, Stmt, StmtKind};
use crate::types::{StructDef, StructId, Ty};
use crate::var::{VarDecl, VarId};
use std::collections::HashMap;
use std::fmt;

/// Identifies a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Zero-based index into [`Program::functions`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A function in SIMPLE form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Parameters, in declaration order, as indices into the variable table.
    pub params: Vec<VarId>,
    /// Return type; `None` for `void`.
    pub ret_ty: Option<Ty>,
    /// The function body (usually a `Seq`).
    pub body: Stmt,
    vars: Vec<VarDecl>,
    next_label: u32,
}

impl Function {
    /// Creates an empty function shell; normally constructed through
    /// [`FunctionBuilder`](crate::builder::FunctionBuilder).
    pub fn new(name: impl Into<String>, ret_ty: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            body: Stmt {
                label: Label(0),
                kind: StmtKind::Seq(Vec::new()),
            },
            vars: Vec::new(),
            next_label: 1,
        }
    }

    /// Adds a variable declaration and returns its id.
    pub fn add_var(&mut self, decl: VarDecl) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(decl);
        id
    }

    /// Adds a parameter (a variable also listed in [`Function::params`]).
    pub fn add_param(&mut self, decl: VarDecl) -> VarId {
        let id = self.add_var(decl);
        self.params.push(id);
        id
    }

    /// The declaration of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this function.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Mutable access to the declaration of `v`.
    pub fn var_mut(&mut self, v: VarId) -> &mut VarDecl {
        &mut self.vars[v.index()]
    }

    /// All variable declarations, indexable by [`VarId::index`].
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// Iterates over `(VarId, &VarDecl)` pairs.
    pub fn iter_vars(&self) -> impl Iterator<Item = (VarId, &VarDecl)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, d)| (VarId(i as u32), d))
    }

    /// Looks a variable up by name (first match).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|d| d.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Allocates a fresh statement label.
    pub fn fresh_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Number of labels ever allocated (upper bound for dense label maps).
    pub fn label_bound(&self) -> usize {
        self.next_label as usize
    }

    /// Ensures the internal label counter exceeds every label in the body.
    ///
    /// Call after splicing in statements built elsewhere.
    pub fn sync_label_counter(&mut self) {
        let mut max = self.next_label;
        self.body.walk(&mut |s| {
            if s.label.0 + 1 > max {
                max = s.label.0 + 1;
            }
        });
        self.next_label = max;
    }

    /// Whether a dereference `v->f` in this function is potentially remote.
    pub fn deref_is_remote(&self, v: VarId) -> bool {
        self.var(v).deref_is_remote()
    }

    /// Collects every basic statement of the body, pre-order, with labels.
    pub fn basic_stmts(&self) -> Vec<(Label, &crate::stmt::Basic)> {
        let mut out = Vec::new();
        self.body.walk(&mut |s| {
            if let StmtKind::Basic(b) = &s.kind {
                out.push((s.label, b));
            }
        });
        out
    }
}

/// A whole program: struct types plus functions.
#[derive(Debug, Clone, Default)]
pub struct Program {
    structs: Vec<StructDef>,
    functions: Vec<Function>,
    by_name: HashMap<String, FuncId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a struct type and returns its id.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(def);
        id
    }

    /// Adds a function and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a function of the same name already exists.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        let prev = self.by_name.insert(f.name.clone(), id);
        assert!(prev.is_none(), "duplicate function name: {}", f.name);
        self.functions.push(f);
        id
    }

    /// The struct definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.index()]
    }

    /// All struct definitions, indexable by [`StructId::index`].
    pub fn structs(&self) -> &[StructDef] {
        &self.structs
    }

    /// Replaces the definition of struct `id` (used by the frontend when
    /// flattening nested struct fields in a second pass).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the name changes.
    pub fn set_struct_def(&mut self, id: StructId, def: StructDef) {
        assert_eq!(
            self.structs[id.index()].name,
            def.name,
            "set_struct_def must preserve the name"
        );
        self.structs[id.index()] = def;
    }

    /// Looks a struct up by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// The function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to the function for `id`.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// All functions, indexable by [`FuncId::index`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_functions(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Replaces the function at `id` (used by transformation passes).
    pub fn replace_function(&mut self, id: FuncId, f: Function) {
        assert_eq!(
            self.functions[id.index()].name,
            f.name,
            "replace_function must preserve the name"
        );
        self.functions[id.index()] = f;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Basic;
    use crate::types::FieldDef;

    #[test]
    fn program_lookup() {
        let mut p = Program::new();
        let sid = p.add_struct(StructDef {
            name: "Point".into(),
            fields: vec![FieldDef {
                name: "x".into(),
                ty: Ty::Double,
            }],
        });
        assert_eq!(p.struct_by_name("Point"), Some(sid));
        let f = Function::new("main", Some(Ty::Int));
        let fid = p.add_function(f);
        assert_eq!(p.function_by_name("main"), Some(fid));
        assert_eq!(p.function(fid).name, "main");
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut p = Program::new();
        p.add_function(Function::new("f", None));
        p.add_function(Function::new("f", None));
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut f = Function::new("g", None);
        let a = f.fresh_label();
        let b = f.fresh_label();
        assert_ne!(a, b);
        assert!(f.label_bound() > b.0 as usize);
    }

    #[test]
    fn sync_label_counter_covers_body() {
        let mut f = Function::new("g", None);
        f.body = Stmt {
            label: Label(41),
            kind: StmtKind::Seq(vec![Stmt {
                label: Label(99),
                kind: StmtKind::Basic(Basic::Return(None)),
            }]),
        };
        f.sync_label_counter();
        assert!(f.fresh_label().0 >= 100);
    }

    #[test]
    fn var_lookup_by_name() {
        let mut f = Function::new("g", None);
        let v = f.add_param(VarDecl::new("p", Ty::Int));
        assert_eq!(f.var_by_name("p"), Some(v));
        assert_eq!(f.var_by_name("q"), None);
        assert_eq!(f.params, vec![v]);
    }
}
