//! Rule documentation registry — the single source of truth behind
//! `earthcc lint --explain <CODE>`.
//!
//! Every diagnostic code the workspace can emit has one [`RuleDoc`] entry
//! here: the IR validator's `IR` codes ([`crate::validate`]), the parallel
//! soundness linter's `PAR` codes (`earth-lint::races`), the placement
//! translation validator's `PLC` codes (`earth-lint::verify`), the
//! probabilistic-justification `ALP` codes layered on top of them, the
//! escape-upgrade `ESC` codes (`earth-lint::verify`), and the
//! dead-communication `DCM` codes (`earth-lint::dead_comm`). Tests in
//! the emitting crates cross-check that every code they produce resolves
//! through [`lookup`], so the registry cannot silently drift from the
//! diagnostics.

/// Documentation for one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleDoc {
    /// The diagnostic code, e.g. `"PLC002"`.
    pub code: &'static str,
    /// One-line summary (matches the wording of the emitted message).
    pub summary: &'static str,
    /// Longer explanation: what the rule protects and how violations arise.
    pub detail: &'static str,
}

/// Every documented rule, sorted by code.
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        code: "ALP001",
        summary: "probability justification names an induction the recognizer cannot re-derive",
        detail: "Prob-alias mode may relax the blocking cost gate for a span whose base \
                 pointer is a recognized loop induction (a unique `p = p->field` advance). \
                 Each such motion records the claimed loop, advance statement, and link \
                 field. The validator re-runs the induction recognizer on the \
                 pre-optimization body and rejects any motion whose claim it cannot \
                 reproduce exactly — a cost relaxation with a fabricated basis never ships.",
    },
    RuleDoc {
        code: "ALP002",
        summary: "probability-justified motion with a binary-detectable conflict in its window",
        detail: "Probabilities weight the optimizer's cost model; they never weaken its \
                 safety rules. If the window of a probability-justified motion contains a \
                 conflict that the binary (non-probabilistic) kill rules detect, the motion \
                 is hard-rejected regardless of how favourable the recorded probability is. \
                 This is the enforcement half of the invariant that unsound placements stay \
                 killed under every alias mode.",
    },
    RuleDoc {
        code: "ALP003",
        summary: "justification probability outside [0, 1]",
        detail: "The continue probability recorded in an induction justification must be a \
                 probability. Values outside [0, 1] indicate a corrupted or hand-forged \
                 motion log and are rejected before any cost reasoning is trusted.",
    },
    RuleDoc {
        code: "DCM001",
        summary: "communication result is never used",
        detail: "A split-phase communication temporary is assigned but its value is never \
                 read anywhere in the function: the fetch is dead communication. The \
                 optimizer only issues reads that cover at least one original access, so a \
                 dead comm temporary in post-optimization IR indicates a selection or \
                 transformation bug (or a hand-edited program).",
    },
    RuleDoc {
        code: "DCM002",
        summary: "duplicate communication on an already-synced handle",
        detail: "Within one straight-line run of basic statements, a communication \
                 temporary is overwritten by a second fetch while the first fetched value \
                 was never read. The first fetch's sync was wasted — the same handle was \
                 re-issued before anyone consumed it. Loop-carried reuse across iterations \
                 is not flagged (the runs are distinct).",
    },
    RuleDoc {
        code: "ESC001",
        summary: "escape justification the analysis cannot re-derive",
        detail: "Every locality upgrade applied under `--escape on` records the variable \
                 and the claimed verdict (node-local or owner-confined). The validator \
                 re-runs the whole-program escape and affinity analyses on the \
                 pre-optimization IR and rejects any recorded upgrade it cannot reproduce \
                 exactly — variable, verdict, and owner-binding evidence all have to \
                 match. A fabricated upgrade would silently delete real communication.",
    },
    RuleDoc {
        code: "ESC002",
        summary: "demoted access reachable from a shared region",
        detail: "An upgrade claims its pointer's heap region is node-local, but the \
                 re-derived region analysis finds the region tainted: it escapes through \
                 `malloc_on`, a placed call boundary, a parallel construct, or a shared \
                 global. Dereferences of such a region may execute on a node other than \
                 the allocating one, so deleting their communication is unsound.",
    },
    RuleDoc {
        code: "ESC003",
        summary: "owner-confined claim with mismatched owner binding",
        detail: "An owner-confined upgrade asserts that a parameter is bound to a local \
                 pointer at every call site — each site either places the call \
                 `@ OWNER_OF(arg)` with the owner argument reaching the same region, or \
                 passes an already-local value to an unplaced call. The recorded parameter \
                 index must name the claimed variable and the binding rule must re-derive; \
                 otherwise some call site can hand the function a remote pointer.",
    },
    RuleDoc {
        code: "IR001",
        summary: "basic statement contains more than one potentially-remote operation",
        detail: "SIMPLE form requires at most one potentially-remote access (pointer \
                 dereference or blkmov) per basic statement, so that communication \
                 placement can reason about each operation independently. The frontend's \
                 simplification pass establishes this; a violation means a malformed or \
                 hand-built IR.",
    },
    RuleDoc {
        code: "IR002",
        summary: "duplicate statement label",
        detail: "Statement labels identify IR nodes in placement sets, motion logs, and \
                 profiles; every label must occur at exactly one tree position.",
    },
    RuleDoc {
        code: "IR003",
        summary: "variable not declared in this function",
        detail: "An operand references a VarId outside the function's variable table.",
    },
    RuleDoc {
        code: "IR004",
        summary: "type error in basic statement",
        detail: "Operand, field, or struct typing is inconsistent: wrong field for the \
                 pointed-to struct, struct id out of range, or mismatched operand types in \
                 an assignment or comparison.",
    },
    RuleDoc {
        code: "IR005",
        summary: "shared-memory operation on a non-shared variable",
        detail: "`valueof` and atomic operations are only meaningful on variables marked \
                 shared; on private variables they indicate a lowering bug.",
    },
    RuleDoc {
        code: "IR006",
        summary: "malformed blkmov",
        detail: "A blkmov must pair a struct pointer with a matching local struct buffer, \
                 and an optional word range must stay within the struct's size.",
    },
    RuleDoc {
        code: "IR007",
        summary: "malformed call",
        detail: "Callee function id out of range, or a void function's result is assigned.",
    },
    RuleDoc {
        code: "IR008",
        summary: "dangling label never allocated by this function",
        detail: "Every label must come from the owning function's allocator; labels beyond \
                 the allocation bound break the label-keyed side tables.",
    },
    RuleDoc {
        code: "IR009",
        summary: "malformed structured statement",
        detail: "Duplicate switch case values, or a forall whose init/step are not basic \
                 statements.",
    },
    RuleDoc {
        code: "IR010",
        summary: "label has an unstable SiteId",
        detail: "A label occurring at more than one tree position cannot be given a stable \
                 SiteId, so profile feedback keyed on it would be ambiguous.",
    },
    RuleDoc {
        code: "PAR000",
        summary: "verdict for a parallel construct (note, not an error)",
        detail: "Every forall and parallel sequence receives one PAR000 note classifying it \
                 as provably independent or possibly racy, with the conflict count.",
    },
    RuleDoc {
        code: "PAR001",
        summary: "heap conflict across forall iterations",
        detail: "A heap write in the forall body may conflict with a connected heap access \
                 in another iteration, so iterations are not independent.",
    },
    RuleDoc {
        code: "PAR002",
        summary: "variable read before written inside a forall body",
        detail: "An upward-exposed read of a written variable carries a value between \
                 iterations; the variable is not privatizable per iteration.",
    },
    RuleDoc {
        code: "PAR003",
        summary: "heap conflict between arms of a parallel sequence",
        detail: "A heap write in one arm may conflict with a connected heap access in a \
                 concurrently executing arm.",
    },
    RuleDoc {
        code: "PAR004",
        summary: "stack variable conflict between arms of a parallel sequence",
        detail: "A variable written by one arm is read or written by another arm running \
                 concurrently.",
    },
    RuleDoc {
        code: "PLC001",
        summary: "base pointer redefined between a read's issue and its use",
        detail: "A hoisted read's base pointer must hold the same value at the new issue \
                 point as at every covered use; an intervening redefinition means the read \
                 would fetch from the wrong node.",
    },
    RuleDoc {
        code: "PLC002",
        summary: "connected region written between a read's issue and its use",
        detail: "A store to a heap region connected to the read's base may change the value \
                 between the early issue and the original access, so the hoisted read could \
                 observe stale data.",
    },
    RuleDoc {
        code: "PLC003",
        summary: "base pointer redefined before a buffered write-back flushed",
        detail: "Block writes are buffered locally and flushed by one blkmov; redefining \
                 the base before the flush would write the buffer to the wrong region.",
    },
    RuleDoc {
        code: "PLC004",
        summary: "connected region accessed while writes were still buffered",
        detail: "Between a buffered store and its delayed flush, any connected heap access \
                 could observe the stale pre-span value or be overwritten by the flush.",
    },
    RuleDoc {
        code: "PLC005",
        summary: "malformed motion entry (unknown or empty label sets)",
        detail: "A motion log entry references labels that do not exist in the \
                 pre-optimization body, or covers no original accesses at all.",
    },
];

/// Looks up the documentation for `code` (exact, case-sensitive match).
pub fn lookup(code: &str) -> Option<&'static RuleDoc> {
    RULES
        .binary_search_by(|r| r.code.cmp(code))
        .ok()
        .map(|i| &RULES[i])
}

/// The distinct code families, in registry order (e.g. `ALP`, `IR`, ...).
pub fn families() -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::new();
    for r in RULES {
        let fam = &r.code[..r.code.len() - 3];
        if out.last() != Some(&fam) {
            out.push(fam);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for w in RULES.windows(2) {
            assert!(w[0].code < w[1].code, "{} !< {}", w[0].code, w[1].code);
        }
    }

    #[test]
    fn lookup_finds_every_rule() {
        for r in RULES {
            assert_eq!(lookup(r.code).unwrap().code, r.code);
        }
        assert!(lookup("PLC999").is_none());
        assert!(lookup("plc001").is_none());
    }

    #[test]
    fn families_are_complete() {
        assert_eq!(families(), vec!["ALP", "DCM", "ESC", "IR", "PAR", "PLC"]);
    }

    #[test]
    fn every_validator_code_is_documented() {
        // The IR validator's own codes resolve through the registry.
        for code in [
            "IR001", "IR002", "IR003", "IR004", "IR005", "IR006", "IR007", "IR008", "IR009",
            "IR010",
        ] {
            assert!(lookup(code).is_some(), "{code} undocumented");
        }
    }
}
