//! Pretty-printer for the SIMPLE IR.
//!
//! Output mimics the paper's presentation: three-address statements, one per
//! line, with potentially-remote dereferences printed as `p~>f` (the paper
//! underlines them; plain text cannot) while local struct-field accesses are
//! printed `s.f` and local dereferences `p->f`.

use crate::func::{FuncId, Function, Program};
use crate::stmt::{AtTarget, Basic, BlkDir, Cond, MemRef, Operand, Place, Rvalue, Stmt, StmtKind};
use crate::types::StructId;
use std::fmt::Write;

/// Options controlling pretty-printing.
#[derive(Debug, Clone)]
pub struct PrettyOptions {
    /// Prefix each basic statement with its label (`S4:`).
    pub show_labels: bool,
    /// Spaces per indentation level.
    pub indent: usize,
}

impl Default for PrettyOptions {
    fn default() -> Self {
        PrettyOptions {
            show_labels: true,
            indent: 2,
        }
    }
}

/// Renders a whole program.
pub fn print_program(prog: &Program) -> String {
    let opts = PrettyOptions::default();
    let mut out = String::new();
    for (i, s) in prog.structs().iter().enumerate() {
        let _ = writeln!(out, "struct {} {{ /* {} words */", s.name, s.size_words());
        for f in &s.fields {
            let _ = writeln!(out, "  {} {};", ty_name(prog, f.ty), f.name);
        }
        let _ = writeln!(out, "}};");
        if i + 1 < prog.structs().len() {
            out.push('\n');
        }
    }
    if !prog.structs().is_empty() {
        out.push('\n');
    }
    for (id, _) in prog.iter_functions() {
        out.push_str(&print_function(prog, id, &opts));
        out.push('\n');
    }
    out
}

/// Renders one function with default options.
pub fn print_function_default(prog: &Program, id: FuncId) -> String {
    print_function(prog, id, &PrettyOptions::default())
}

/// Renders one function.
pub fn print_function(prog: &Program, id: FuncId, opts: &PrettyOptions) -> String {
    let f = prog.function(id);
    let mut p = Printer {
        prog,
        func: f,
        opts,
        out: String::new(),
        level: 0,
    };
    p.function();
    p.out
}

fn ty_name(prog: &Program, ty: crate::types::Ty) -> String {
    use crate::types::Ty;
    match ty {
        Ty::Int => "int".into(),
        Ty::Double => "double".into(),
        Ty::Ptr(s) => format!("{}*", struct_name(prog, s)),
        Ty::Struct(s) => struct_name(prog, s),
    }
}

fn struct_name(prog: &Program, s: StructId) -> String {
    prog.struct_def(s).name.clone()
}

struct Printer<'a> {
    prog: &'a Program,
    func: &'a Function,
    opts: &'a PrettyOptions,
    out: String,
    level: usize,
}

impl Printer<'_> {
    fn function(&mut self) {
        let ret = self
            .func
            .ret_ty
            .map(|t| ty_name(self.prog, t))
            .unwrap_or_else(|| "void".into());
        let params: Vec<String> = self
            .func
            .params
            .iter()
            .map(|&v| {
                let d = self.func.var(v);
                let loc = if d.ty.is_ptr() && !d.deref_is_remote() {
                    " local"
                } else {
                    ""
                };
                format!("{}{} {}", ty_name(self.prog, d.ty), loc, d.name)
            })
            .collect();
        let _ = writeln!(
            self.out,
            "{ret} {}({}) {{",
            self.func.name,
            params.join(", ")
        );
        self.level += 1;
        // Declarations for non-parameter variables.
        for (v, d) in self.func.iter_vars() {
            if self.func.params.contains(&v) {
                continue;
            }
            let quals = match (d.shared, d.ty.is_ptr() && !d.deref_is_remote()) {
                (true, _) => "shared ",
                (false, true) => "local ",
                _ => "",
            };
            self.line(&format!(
                "{}{} {};",
                quals,
                ty_name(self.prog, d.ty),
                d.name
            ));
        }
        self.stmt_children_of_body();
        self.level -= 1;
        let _ = writeln!(self.out, "}}");
    }

    fn stmt_children_of_body(&mut self) {
        // The body is a Seq; print its children without an extra brace level.
        let body = self.func.body.clone();
        if let StmtKind::Seq(ss) = &body.kind {
            for s in ss {
                self.stmt(s);
            }
        } else {
            self.stmt(&body);
        }
    }

    fn indent_str(&self) -> String {
        " ".repeat(self.level * self.opts.indent)
    }

    fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "{}{}", self.indent_str(), text);
    }

    fn labelled_line(&mut self, s: &Stmt, text: &str) {
        if self.opts.show_labels {
            self.line(&format!("{}: {}", s.label, text));
        } else {
            self.line(text);
        }
    }

    fn block(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Seq(ss) => {
                for c in ss {
                    self.stmt(c);
                }
            }
            _ => self.stmt(s),
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Seq(ss) => {
                self.line("{");
                self.level += 1;
                for c in ss {
                    self.stmt(c);
                }
                self.level -= 1;
                self.line("}");
            }
            StmtKind::Basic(b) => {
                let text = self.basic(b);
                self.labelled_line(s, &text);
            }
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                self.labelled_line(s, &format!("if ({}) {{", self.cond(cond)));
                self.level += 1;
                self.block(then_s);
                self.level -= 1;
                if else_s.is_empty_seq() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.level += 1;
                    self.block(else_s);
                    self.level -= 1;
                    self.line("}");
                }
            }
            StmtKind::Switch {
                scrut,
                cases,
                default,
            } => {
                self.labelled_line(s, &format!("switch ({}) {{", self.operand(*scrut)));
                self.level += 1;
                for (v, cs) in cases {
                    self.line(&format!("case {v}:"));
                    self.level += 1;
                    self.block(cs);
                    self.line("break;");
                    self.level -= 1;
                }
                if !default.is_empty_seq() {
                    self.line("default:");
                    self.level += 1;
                    self.block(default);
                    self.level -= 1;
                }
                self.level -= 1;
                self.line("}");
            }
            StmtKind::While { cond, body } => {
                self.labelled_line(s, &format!("while ({}) {{", self.cond(cond)));
                self.level += 1;
                self.block(body);
                self.level -= 1;
                self.line("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.labelled_line(s, "do {");
                self.level += 1;
                self.block(body);
                self.level -= 1;
                self.line(&format!("}} while ({});", self.cond(cond)));
            }
            StmtKind::ParSeq(arms) => {
                self.labelled_line(s, "{^");
                self.level += 1;
                for (i, arm) in arms.iter().enumerate() {
                    if i > 0 {
                        self.line("//  ||");
                    }
                    self.block(arm);
                }
                self.level -= 1;
                self.line("^}");
            }
            StmtKind::Forall {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = match &init.kind {
                    StmtKind::Basic(b) => self.basic_expr_only(b),
                    _ => "...".into(),
                };
                let step_s = match &step.kind {
                    StmtKind::Basic(b) => self.basic_expr_only(b),
                    _ => "...".into(),
                };
                self.labelled_line(
                    s,
                    &format!("forall ({init_s}; {}; {step_s}) {{", self.cond(cond)),
                );
                self.level += 1;
                self.block(body);
                self.level -= 1;
                self.line("}");
            }
        }
    }

    fn cond(&self, c: &Cond) -> String {
        format!(
            "{} {} {}",
            self.operand(c.lhs),
            c.op.symbol(),
            self.operand(c.rhs)
        )
    }

    fn operand(&self, o: Operand) -> String {
        match o {
            Operand::Var(v) => self.func.var(v).name.clone(),
            Operand::Const(c) => c.to_string(),
        }
    }

    fn memref(&self, m: MemRef) -> String {
        let base = self.func.var(m.base()).name.clone();
        let field = self.field_name(m);
        match m {
            MemRef::Deref { base: b, .. } => {
                if self.func.deref_is_remote(b) {
                    format!("{base}~>{field}")
                } else {
                    format!("{base}->{field}")
                }
            }
            MemRef::Field { .. } => format!("{base}.{field}"),
        }
    }

    fn field_name(&self, m: MemRef) -> String {
        let base_ty = self.func.var(m.base()).ty;
        match base_ty.struct_id() {
            Some(sid) => self.prog.struct_def(sid).field(m.field()).name.clone(),
            None => m.field().to_string(),
        }
    }

    fn rvalue(&self, r: &Rvalue) -> String {
        match r {
            Rvalue::Use(o) => self.operand(*o),
            Rvalue::Unary(op, a) => {
                let sym = match op {
                    crate::stmt::UnOp::Neg => "-",
                    crate::stmt::UnOp::Not => "!",
                };
                format!("{sym}{}", self.operand(*a))
            }
            Rvalue::Binary(op, a, b) => {
                format!("{} {} {}", self.operand(*a), op.symbol(), self.operand(*b))
            }
            Rvalue::Load(m) => self.memref(*m),
            Rvalue::Malloc { struct_id, on } => match on {
                Some(o) => format!(
                    "malloc_on({}, sizeof({}))",
                    self.operand(*o),
                    struct_name(self.prog, *struct_id)
                ),
                None => format!("malloc(sizeof({}))", struct_name(self.prog, *struct_id)),
            },
            Rvalue::Builtin { builtin, args } => {
                let args: Vec<String> = args.iter().map(|a| self.operand(*a)).collect();
                format!("{}({})", builtin.name(), args.join(", "))
            }
            Rvalue::ValueOf(v) => format!("valueof(&{})", self.func.var(*v).name),
        }
    }

    fn basic(&self, b: &Basic) -> String {
        match b {
            Basic::Assign { dst, src } => {
                let d = match dst {
                    Place::Var(v) => self.func.var(*v).name.clone(),
                    Place::Mem(m) => self.memref(*m),
                };
                format!("{d} = {};", self.rvalue(src))
            }
            Basic::Call {
                dst,
                func,
                args,
                at,
            } => {
                let callee = self.prog.function(*func).name.clone();
                let args_s: Vec<String> = args.iter().map(|a| self.operand(*a)).collect();
                let at_s = match at {
                    Some(AtTarget::OwnerOf(p)) => {
                        format!(" @OWNER_OF({})", self.func.var(*p).name)
                    }
                    Some(AtTarget::Node(n)) => format!(" @{}", self.operand(*n)),
                    None => String::new(),
                };
                match dst {
                    Some(d) => format!(
                        "{} = {callee}({}){at_s};",
                        self.func.var(*d).name,
                        args_s.join(", ")
                    ),
                    None => format!("{callee}({}){at_s};", args_s.join(", ")),
                }
            }
            Basic::Return(op) => match op {
                Some(o) => format!("return {};", self.operand(*o)),
                None => "return;".into(),
            },
            Basic::BlkMov {
                dir,
                ptr,
                buf,
                range,
            } => {
                let p = self.func.var(*ptr).name.clone();
                let b = self.func.var(*buf).name.clone();
                let size = match range {
                    Some((first, words)) => format!("{words} words @ {first}"),
                    None => format!("sizeof(*{p})"),
                };
                match dir {
                    BlkDir::RemoteToLocal => format!("blkmov({p}, &{b}, {size});"),
                    BlkDir::LocalToRemote => format!("blkmov(&{b}, {p}, {size});"),
                }
            }
            Basic::AtomicWrite { var, value } => format!(
                "writeto(&{}, {});",
                self.func.var(*var).name,
                self.operand(*value)
            ),
            Basic::AtomicAdd { var, value } => format!(
                "addto(&{}, {});",
                self.func.var(*var).name,
                self.operand(*value)
            ),
        }
    }

    /// A basic statement rendered without the trailing semicolon, for use in
    /// `forall (...)` headers.
    fn basic_expr_only(&self, b: &Basic) -> String {
        let mut s = self.basic(b);
        if s.ends_with(';') {
            s.pop();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::BinOp;
    use crate::types::{StructDef, Ty};
    use crate::var::VarDecl;
    use crate::Program;

    fn sample() -> Program {
        let mut prog = Program::new();
        let mut point = StructDef::new("Point");
        let fx = point.add_field("x", Ty::Double);
        let pt = prog.add_struct(point);

        let mut fb = FunctionBuilder::new("get_x", Some(Ty::Double));
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let q = fb.param(VarDecl::local("q", Ty::Ptr(pt)));
        let t = fb.var(VarDecl::new("t", Ty::Double));
        fb.load_deref(t, p, fx);
        fb.load_deref(t, q, fx);
        fb.ret(Some(Operand::Var(t)));
        prog.add_function(fb.finish());
        prog
    }

    #[test]
    fn remote_deref_marked() {
        let prog = sample();
        let s = print_program(&prog);
        assert!(s.contains("p~>x"), "remote deref should use ~>: {s}");
        assert!(s.contains("q->x"), "local deref should use ->: {s}");
        assert!(s.contains("struct Point"));
        assert!(s.contains("Point* local q"));
    }

    #[test]
    fn labels_can_be_hidden() {
        let prog = sample();
        let id = prog.function_by_name("get_x").unwrap();
        let with = print_function(&prog, id, &PrettyOptions::default());
        let without = print_function(
            &prog,
            id,
            &PrettyOptions {
                show_labels: false,
                ..Default::default()
            },
        );
        assert!(with.contains("S1:"));
        assert!(!without.contains("S1:"));
    }

    #[test]
    fn control_flow_renders() {
        let mut prog = Program::new();
        let mut fb = FunctionBuilder::new("f", None);
        let i = fb.var(VarDecl::new("i", Ty::Int));
        fb.while_loop(
            Cond::new(BinOp::Lt, Operand::Var(i), Operand::int(3)),
            |b| {
                b.if_then_else(
                    Cond::new(BinOp::Eq, Operand::Var(i), Operand::int(0)),
                    |b| b.assign(i, Operand::int(1)),
                    |b| b.assign(i, Operand::int(2)),
                );
            },
        );
        fb.ret(None);
        let id = prog.add_function(fb.finish());
        let s = print_function_default(&prog, id);
        assert!(s.contains("while (i < 3)"));
        assert!(s.contains("} else {"));
        assert!(s.contains("return;"));
    }
}
