//! Statements of the SIMPLE IR.
//!
//! SIMPLE (the McCAT intermediate representation) is *compositional*: a
//! program is a tree of statements rather than a control-flow graph. Basic
//! statements are in three-address form and contain **at most one remote
//! memory operation** — the invariant the paper's placement analysis relies
//! on. Compound statements are sequences, conditionals, structured loops,
//! and the EARTH-C parallel constructs (parallel sequences and `forall`).
//!
//! Every statement node carries a unique [`Label`]; the label of a basic
//! statement is the `Dlist` entry used by the possible-placement analysis.

use crate::types::{FieldId, StructId};
use crate::var::VarId;
use std::fmt;

/// Unique identifier of a statement node within a function.
///
/// Labels identify *all* statement nodes (basic and compound); the paper
/// only labels basic statements, but giving compound statements labels lets
/// the communication-selection transformation anchor insertions precisely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A compile-time constant operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),
    /// The null pointer.
    Null,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Double(v) => write!(f, "{v}"),
            Const::Null => write!(f, "NULL"),
        }
    }
}

/// An operand of a three-address statement: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A local variable or parameter.
    Var(VarId),
    /// A constant.
    Const(Const),
}

impl Operand {
    /// The variable referenced, if this operand is a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// Convenience constructor for an integer constant operand.
    pub fn int(v: i64) -> Self {
        Operand::Const(Const::Int(v))
    }

    /// Convenience constructor for a double constant operand.
    pub fn double(v: f64) -> Self {
        Operand::Const(Const::Double(v))
    }

    /// The null-pointer constant operand.
    pub fn null() -> Self {
        Operand::Const(Const::Null)
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operator names are self-explanatory
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    /// Comparison operators produce `int` 0 or 1.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Whether this operator is a comparison (result is `int` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Source-level spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`int` 0/1 result).
    Not,
}

/// Built-in functions provided by the EARTH runtime / math library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `sqrt(double) -> double`
    Sqrt,
    /// `fabs(double) -> double`
    Fabs,
    /// `rand() -> int` — deterministic per-simulation LCG in `[0, 2^31)`.
    Rand,
    /// `num_nodes() -> int` — number of EARTH nodes in the machine.
    NumNodes,
    /// `my_node() -> int` — node id the current thread runs on.
    MyNode,
    /// `owner_of(ptr) -> int` — node id owning the pointed-to object.
    OwnerOf,
    /// `print_int(int)` / debugging aid; returns its argument.
    PrintInt,
    /// `print_double(double)`; returns its argument.
    PrintDouble,
    /// `fence()` — blocks until all remote writes issued by this thread
    /// have completed (EARTH synchronizes on write completion at thread
    /// boundaries; `fence` exposes that synchronization point explicitly,
    /// which the Table I microbenchmarks need). Returns 0.
    Fence,
}

impl Builtin {
    /// Runtime name, as written in EARTH-C source.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Sqrt => "sqrt",
            Builtin::Fabs => "fabs",
            Builtin::Rand => "rand",
            Builtin::NumNodes => "num_nodes",
            Builtin::MyNode => "my_node",
            Builtin::OwnerOf => "owner_of",
            Builtin::PrintInt => "print_int",
            Builtin::PrintDouble => "print_double",
            Builtin::Fence => "fence",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Rand | Builtin::NumNodes | Builtin::MyNode | Builtin::Fence => 0,
            Builtin::Sqrt
            | Builtin::Fabs
            | Builtin::OwnerOf
            | Builtin::PrintInt
            | Builtin::PrintDouble => 1,
        }
    }

    /// Looks a builtin up by its source-level name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "sqrt" => Sqrt,
            "fabs" => Fabs,
            "rand" => Rand,
            "num_nodes" => NumNodes,
            "my_node" => MyNode,
            "owner_of" => OwnerOf,
            "print_int" => PrintInt,
            "print_double" => PrintDouble,
            "fence" => Fence,
            _ => return None,
        })
    }
}

/// A memory reference appearing in a basic statement.
///
/// `Deref` (`p->f`) may be a *remote* operation depending on the locality of
/// `base`; `Field` (`s.f`) accesses a field of a struct-typed local variable
/// and is always local (this is how block-move buffers are read after a
/// `blkmov`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MemRef {
    /// `base->field` where `base` is a pointer variable.
    Deref { base: VarId, field: FieldId },
    /// `base.field` where `base` is a struct-typed local variable.
    Field { base: VarId, field: FieldId },
}

impl MemRef {
    /// The base variable of the reference.
    pub fn base(self) -> VarId {
        match self {
            MemRef::Deref { base, .. } | MemRef::Field { base, .. } => base,
        }
    }

    /// The field accessed.
    pub fn field(self) -> FieldId {
        match self {
            MemRef::Deref { field, .. } | MemRef::Field { field, .. } => field,
        }
    }

    /// Whether this is a pointer dereference (`p->f`).
    pub fn is_deref(self) -> bool {
        matches!(self, MemRef::Deref { .. })
    }
}

/// The right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum Rvalue {
    /// `dst = operand`
    Use(Operand),
    /// `dst = op operand`
    Unary(UnOp, Operand),
    /// `dst = a op b`
    Binary(BinOp, Operand, Operand),
    /// `dst = p->f` or `dst = s.f`
    Load(MemRef),
    /// `dst = malloc(sizeof(struct S)) [@ on]` — allocates on node `on`
    /// (current node when `None`).
    Malloc {
        struct_id: StructId,
        on: Option<Operand>,
    },
    /// `dst = builtin(args...)`
    Builtin {
        builtin: Builtin,
        args: Vec<Operand>,
    },
    /// `dst = valueof(&shared_var)` — atomic read of a shared variable.
    ValueOf(VarId),
}

/// The destination of an assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Place {
    /// An ordinary variable.
    Var(VarId),
    /// A memory location (`p->f` or `s.f`).
    Mem(MemRef),
}

/// Direction of a block move between a remote object and a local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlkDir {
    /// `blkmov(ptr, &buf, sizeof(*ptr))` — fetch the remote struct into the
    /// local buffer.
    RemoteToLocal,
    /// `blkmov(&buf, ptr, sizeof(*ptr))` — write the local buffer back to
    /// the remote struct.
    LocalToRemote,
}

/// Where a call executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AtTarget {
    /// `f(...) @ OWNER_OF(p)` — execute at the node owning `*p`.
    OwnerOf(VarId),
    /// `f(...) @ node` — execute at an explicit node id.
    Node(Operand),
}

/// A basic (three-address) statement.
///
/// Invariant (checked by [`validate`](crate::validate::validate_program)):
/// a basic statement contains **at most one** `MemRef::Deref`, i.e. at most
/// one potentially-remote memory operation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum Basic {
    /// `place = rvalue`
    Assign { dst: Place, src: Rvalue },
    /// `dst = f(args...) [@target]` — user function call; `dst` is `None`
    /// for `void` calls.
    Call {
        dst: Option<VarId>,
        func: crate::func::FuncId,
        args: Vec<Operand>,
        at: Option<AtTarget>,
    },
    /// `return [operand]`
    Return(Option<Operand>),
    /// `blkmov` between `*ptr` and a local struct buffer `buf`.
    ///
    /// `range` selects a contiguous word range `(first_field, words)` of
    /// the struct to transfer; `None` moves the whole struct. Partial
    /// block moves implement the paper's §7 extension: after field
    /// reordering clusters the remotely-accessed fields, only that
    /// cluster needs to cross the network.
    BlkMov {
        dir: BlkDir,
        ptr: VarId,
        buf: VarId,
        range: Option<(u32, u32)>,
    },
    /// `writeto(&var, value)` — atomic store to a shared variable.
    AtomicWrite { var: VarId, value: Operand },
    /// `addto(&var, value)` — atomic add to a shared variable.
    AtomicAdd { var: VarId, value: Operand },
}

/// A simple relational condition, as required by SIMPLE loop and branch
/// forms: no memory accesses, operands are variables or constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)]
pub struct Cond {
    pub op: BinOp,
    pub lhs: Operand,
    pub rhs: Operand,
}

impl Cond {
    /// Builds a condition, asserting the operator is a comparison.
    pub fn new(op: BinOp, lhs: Operand, rhs: Operand) -> Self {
        assert!(op.is_comparison(), "Cond requires a comparison operator");
        Cond { op, lhs, rhs }
    }

    /// Variables mentioned by the condition.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        [self.lhs, self.rhs].into_iter().filter_map(Operand::as_var)
    }
}

/// A statement node: a unique label plus the statement kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Unique within the enclosing function.
    pub label: Label,
    /// The statement's form and children.
    pub kind: StmtKind,
}

/// The statement forms of SIMPLE plus the EARTH-C parallel constructs.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are documented on the variants
pub enum StmtKind {
    /// A statement sequence `{ s1; ...; sn }`.
    Seq(Vec<Stmt>),
    /// A basic three-address statement.
    Basic(Basic),
    /// `if (cond) then_s else else_s` — an empty `Seq` serves as a missing
    /// else branch.
    If {
        cond: Cond,
        then_s: Box<Stmt>,
        else_s: Box<Stmt>,
    },
    /// `switch (scrut) { case v: ...; default: ... }`.
    Switch {
        scrut: Operand,
        cases: Vec<(i64, Stmt)>,
        default: Box<Stmt>,
    },
    /// `while (cond) body`.
    While { cond: Cond, body: Box<Stmt> },
    /// `do body while (cond)` — the body executes at least once, which the
    /// placement analysis exploits for remote writes (`executesOnce`).
    DoWhile { body: Box<Stmt>, cond: Cond },
    /// Parallel statement sequence `{^ s1; ...; sn ^}` — all arms may run
    /// concurrently; execution joins at the end.
    ParSeq(Vec<Stmt>),
    /// `forall (init; cond; step) body` — iterations are independent and may
    /// run concurrently; joins at loop exit. `init` and `step` are basic
    /// statements, per SIMPLE's structured `for`.
    Forall {
        init: Box<Stmt>,
        cond: Cond,
        step: Box<Stmt>,
        body: Box<Stmt>,
    },
}

impl Stmt {
    /// Whether this is an empty sequence (used as a no-op/absent branch).
    pub fn is_empty_seq(&self) -> bool {
        matches!(&self.kind, StmtKind::Seq(v) if v.is_empty())
    }

    /// The basic statement payload, if this node is basic.
    pub fn as_basic(&self) -> Option<&Basic> {
        match &self.kind {
            StmtKind::Basic(b) => Some(b),
            _ => None,
        }
    }

    /// Depth-first pre-order traversal over this statement and all nested
    /// statements.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        visit(self);
        match &self.kind {
            StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
                for s in ss {
                    s.walk(visit);
                }
            }
            StmtKind::Basic(_) => {}
            StmtKind::If { then_s, else_s, .. } => {
                then_s.walk(visit);
                else_s.walk(visit);
            }
            StmtKind::Switch { cases, default, .. } => {
                for (_, s) in cases {
                    s.walk(visit);
                }
                default.walk(visit);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => body.walk(visit),
            StmtKind::Forall {
                init, step, body, ..
            } => {
                init.walk(visit);
                step.walk(visit);
                body.walk(visit);
            }
        }
    }

    /// Mutable depth-first pre-order traversal. The visitor may rewrite the
    /// node in place (including replacing children wholesale); children are
    /// walked *after* the visit, so newly inserted subtrees are visited too.
    pub fn walk_mut(&mut self, visit: &mut dyn FnMut(&mut Stmt)) {
        visit(self);
        match &mut self.kind {
            StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
                for s in ss {
                    s.walk_mut(visit);
                }
            }
            StmtKind::Basic(_) => {}
            StmtKind::If { then_s, else_s, .. } => {
                then_s.walk_mut(visit);
                else_s.walk_mut(visit);
            }
            StmtKind::Switch { cases, default, .. } => {
                for (_, s) in cases {
                    s.walk_mut(visit);
                }
                default.walk_mut(visit);
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => body.walk_mut(visit),
            StmtKind::Forall {
                init, step, body, ..
            } => {
                init.walk_mut(visit);
                step.walk_mut(visit);
                body.walk_mut(visit);
            }
        }
    }

    /// All labels of this statement and its descendants, in pre-order.
    pub fn labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        self.walk(&mut |s| out.push(s.label));
        out
    }
}

impl Basic {
    /// The single potentially-remote memory dereference of this statement,
    /// if any, together with whether it is a read or a write.
    ///
    /// Block moves are reported with the *pointer* variable and no field.
    pub fn deref_access(&self) -> Option<DerefAccess> {
        match self {
            Basic::Assign { dst, src } => {
                if let Place::Mem(MemRef::Deref { base, field }) = dst {
                    return Some(DerefAccess {
                        base: *base,
                        field: Some(*field),
                        is_write: true,
                    });
                }
                if let Rvalue::Load(MemRef::Deref { base, field }) = src {
                    return Some(DerefAccess {
                        base: *base,
                        field: Some(*field),
                        is_write: false,
                    });
                }
                None
            }
            Basic::BlkMov { dir, ptr, .. } => Some(DerefAccess {
                base: *ptr,
                field: None,
                is_write: matches!(dir, BlkDir::LocalToRemote),
            }),
            _ => None,
        }
    }

    /// Operands read by this basic statement (not including memory loads).
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Basic::Assign { src, .. } => match src {
                Rvalue::Use(a) | Rvalue::Unary(_, a) => vec![*a],
                Rvalue::Binary(_, a, b) => vec![*a, *b],
                Rvalue::Load(_) => vec![],
                Rvalue::Malloc { on, .. } => on.iter().copied().collect(),
                Rvalue::Builtin { args, .. } => args.clone(),
                Rvalue::ValueOf(_) => vec![],
            },
            Basic::Call { args, at, .. } => {
                let mut v = args.clone();
                if let Some(AtTarget::Node(op)) = at {
                    v.push(*op);
                }
                v
            }
            Basic::Return(op) => op.iter().copied().collect(),
            Basic::BlkMov { .. } => vec![],
            Basic::AtomicWrite { value, .. } | Basic::AtomicAdd { value, .. } => vec![*value],
        }
    }
}

/// Description of the single pointer dereference in a basic statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DerefAccess {
    /// The pointer variable being dereferenced.
    pub base: VarId,
    /// The field accessed; `None` for whole-struct block moves.
    pub field: Option<FieldId>,
    /// `true` for a store through the pointer, `false` for a load.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn cond_requires_comparison() {
        let c = Cond::new(BinOp::Lt, Operand::Var(v(0)), Operand::int(3));
        assert_eq!(c.vars().collect::<Vec<_>>(), vec![v(0)]);
    }

    #[test]
    #[should_panic(expected = "comparison")]
    fn cond_rejects_arithmetic() {
        let _ = Cond::new(BinOp::Add, Operand::int(1), Operand::int(2));
    }

    #[test]
    fn deref_access_read_and_write() {
        let read = Basic::Assign {
            dst: Place::Var(v(0)),
            src: Rvalue::Load(MemRef::Deref {
                base: v(1),
                field: FieldId(0),
            }),
        };
        let acc = read.deref_access().unwrap();
        assert_eq!(acc.base, v(1));
        assert_eq!(acc.field, Some(FieldId(0)));
        assert!(!acc.is_write);

        let write = Basic::Assign {
            dst: Place::Mem(MemRef::Deref {
                base: v(2),
                field: FieldId(1),
            }),
            src: Rvalue::Use(Operand::Var(v(0))),
        };
        let acc = write.deref_access().unwrap();
        assert_eq!(acc.base, v(2));
        assert!(acc.is_write);
    }

    #[test]
    fn struct_field_access_is_not_deref() {
        let s = Basic::Assign {
            dst: Place::Var(v(0)),
            src: Rvalue::Load(MemRef::Field {
                base: v(1),
                field: FieldId(0),
            }),
        };
        assert!(s.deref_access().is_none());
    }

    #[test]
    fn blkmov_reports_direction() {
        let r = Basic::BlkMov {
            dir: BlkDir::RemoteToLocal,
            ptr: v(1),
            buf: v(2),
            range: None,
        };
        assert!(!r.deref_access().unwrap().is_write);
        let w = Basic::BlkMov {
            dir: BlkDir::LocalToRemote,
            ptr: v(1),
            buf: v(2),
            range: Some((1, 2)),
        };
        assert!(w.deref_access().unwrap().is_write);
    }

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::Var(v(4)).as_var(), Some(v(4)));
        assert_eq!(Operand::int(7).as_var(), None);
        assert_eq!(Operand::null(), Operand::Const(Const::Null));
    }

    #[test]
    fn builtin_names_round_trip() {
        for b in [
            Builtin::Sqrt,
            Builtin::Fabs,
            Builtin::Rand,
            Builtin::NumNodes,
            Builtin::MyNode,
            Builtin::OwnerOf,
            Builtin::PrintInt,
            Builtin::PrintDouble,
            Builtin::Fence,
        ] {
            assert_eq!(Builtin::by_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::by_name("nope"), None);
    }

    #[test]
    fn walk_visits_nested() {
        let mk = |label, kind| Stmt {
            label: Label(label),
            kind,
        };
        let inner = mk(2, StmtKind::Basic(Basic::Return(None)));
        let body = mk(1, StmtKind::Seq(vec![inner]));
        let loop_s = mk(
            0,
            StmtKind::While {
                cond: Cond::new(BinOp::Ne, Operand::int(0), Operand::int(1)),
                body: Box::new(body),
            },
        );
        assert_eq!(loop_s.labels(), vec![Label(0), Label(1), Label(2)]);
    }
}
