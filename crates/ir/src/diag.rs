//! Unified diagnostics for the EARTH-C toolchain.
//!
//! Every checking layer — IR validation ([`crate::validate`]), the frontend's
//! error paths, and the `earth-lint` translation validator and race linter —
//! reports problems as [`Diagnostic`] values: a stable code, a severity, the
//! enclosing function, statement labels pinpointing the offending SIMPLE
//! statements, and free-form notes.
//!
//! Diagnostics render two ways:
//!
//! * [`Diagnostic::render`] — human-readable terminal output;
//! * [`Diagnostic::to_json`] / [`Diagnostic::from_json`] — a hand-rolled,
//!   dependency-free machine-readable JSON encoding that round-trips exactly
//!   (the workspace builds offline, so no serde).
//!
//! # Examples
//!
//! ```
//! use earth_ir::diag::{Diagnostic, Severity};
//! use earth_ir::Label;
//!
//! let d = Diagnostic::error("PLC001", "hoisted read crosses a killing write")
//!     .in_func("walk")
//!     .with_label(Label(4), "read inserted here")
//!     .with_label(Label(9), "this statement writes the base pointer")
//!     .with_note("re-derived from the pre-optimization rw-sets");
//! assert!(d.render().contains("error[PLC001]"));
//! let back = Diagnostic::from_json(&d.to_json()).unwrap();
//! assert_eq!(d, back);
//! ```

use crate::json::{self, ObjectExt as _};
use crate::stmt::Label;
use std::fmt;

pub use crate::json::JsonError;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational remark (e.g. a construct proven independent).
    Note,
    /// Possible problem; the toolchain continues.
    Warning,
    /// Confirmed violation of an invariant.
    Error,
}

impl Severity {
    /// Lowercase name used in rendering and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    fn from_name(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A statement label attached to a diagnostic, with its own message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagLabel {
    /// The SIMPLE statement the message points at.
    pub label: Label,
    /// What this statement has to do with the problem.
    pub message: String,
}

/// One diagnostic: code, severity, location, message, and notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (e.g. `IR001`, `PLC002`, `RACE001`).
    pub code: String,
    /// Severity class.
    pub severity: Severity,
    /// Function the problem was found in, if any.
    pub func: Option<String>,
    /// Primary human-readable message.
    pub message: String,
    /// Statement labels involved, in order of relevance.
    pub labels: Vec<DiagLabel>,
    /// Additional free-form explanations.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with the given severity.
    pub fn new(severity: Severity, code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            func: None,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self::new(Severity::Error, code, message)
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self::new(Severity::Warning, code, message)
    }

    /// A note-severity diagnostic.
    pub fn note(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self::new(Severity::Note, code, message)
    }

    /// Sets the enclosing function.
    pub fn in_func(mut self, name: impl Into<String>) -> Self {
        self.func = Some(name.into());
        self
    }

    /// Attaches a statement label with a message.
    pub fn with_label(mut self, label: Label, message: impl Into<String>) -> Self {
        self.labels.push(DiagLabel {
            label,
            message: message.into(),
        });
        self
    }

    /// Attaches a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Pretty terminal rendering, e.g.:
    ///
    /// ```text
    /// error[PLC001] in `walk`: hoisted read crosses a killing write
    ///   --> S4: read inserted here
    ///   --> S9: this statement writes the base pointer
    ///   note: re-derived from the pre-optimization rw-sets
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}[{}]", self.severity, self.code));
        if let Some(f) = &self.func {
            out.push_str(&format!(" in `{f}`"));
        }
        out.push_str(&format!(": {}", self.message));
        for l in &self.labels {
            out.push_str(&format!("\n  --> {}: {}", l.label, l.message));
        }
        for n in &self.notes {
            out.push_str(&format!("\n  note: {n}"));
        }
        out
    }

    /// Machine-readable JSON encoding (one object).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"code\":{}", json::string(&self.code)));
        s.push_str(&format!(
            ",\"severity\":{}",
            json::string(self.severity.name())
        ));
        match &self.func {
            Some(f) => s.push_str(&format!(",\"func\":{}", json::string(f))),
            None => s.push_str(",\"func\":null"),
        }
        s.push_str(&format!(",\"message\":{}", json::string(&self.message)));
        s.push_str(",\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"label\":{},\"message\":{}}}",
                l.label.0,
                json::string(&l.message)
            ));
        }
        s.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json::string(n));
        }
        s.push_str("]}");
        s
    }

    /// Parses a diagnostic back from its [`Diagnostic::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON or a well-formed value of
    /// the wrong shape.
    pub fn from_json(src: &str) -> Result<Diagnostic, JsonError> {
        let v = json::parse(src)?;
        Self::from_value(&v)
    }

    fn from_value(v: &json::Value) -> Result<Diagnostic, JsonError> {
        let obj = v.as_object("diagnostic")?;
        let code = obj.get_str("code")?;
        let severity = Severity::from_name(&obj.get_str("severity")?)
            .ok_or_else(|| JsonError::shape("unknown severity"))?;
        let func = match obj.field("func") {
            None | Some(json::Value::Null) => None,
            Some(json::Value::Str(s)) => Some(s.clone()),
            Some(_) => return Err(JsonError::shape("`func` must be a string or null")),
        };
        let message = obj.get_str("message")?;
        let mut labels = Vec::new();
        for lv in obj.get_array("labels")? {
            let lo = lv.as_object("label entry")?;
            labels.push(DiagLabel {
                label: Label(lo.get_u32("label")?),
                message: lo.get_str("message")?,
            });
        }
        let mut notes = Vec::new();
        for nv in obj.get_array("notes")? {
            match nv {
                json::Value::Str(s) => notes.push(s.clone()),
                _ => return Err(JsonError::shape("notes must be strings")),
            }
        }
        Ok(Diagnostic {
            code,
            severity,
            func,
            message,
            labels,
            notes,
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders a batch of diagnostics, one per paragraph.
pub fn render_all(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Encodes a batch of diagnostics as a JSON array.
pub fn to_json_array(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&d.to_json());
    }
    s.push(']');
    s
}

/// Parses a batch of diagnostics from a JSON array.
///
/// # Errors
///
/// Returns a [`JsonError`] for malformed JSON or mis-shaped entries.
pub fn from_json_array(src: &str) -> Result<Vec<Diagnostic>, JsonError> {
    let v = json::parse(src)?;
    let json::Value::Array(items) = v else {
        return Err(JsonError::shape("expected a JSON array"));
    };
    items.iter().map(Diagnostic::from_value).collect()
}

// `JsonError` and the reader/writer live in [`crate::json`], shared by
// every hand-rolled JSON surface in the workspace; `diag` re-exports the
// error type so existing `diag::JsonError` users keep compiling.

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::error("PLC001", "hoisted read of `p->x` crosses a killing write")
            .in_func("walk")
            .with_label(Label(4), "read inserted before this statement")
            .with_label(Label(9), "offending write of base `p`")
            .with_note("re-derived from rw-sets of the pre-optimization IR")
    }

    #[test]
    fn render_mentions_everything() {
        let r = sample().render();
        assert!(r.contains("error[PLC001]"));
        assert!(r.contains("in `walk`"));
        assert!(r.contains("S4"));
        assert!(r.contains("S9"));
        assert!(r.contains("note:"));
    }

    #[test]
    fn json_round_trips() {
        let d = sample();
        assert_eq!(Diagnostic::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn json_round_trips_with_escapes_and_no_func() {
        let d = Diagnostic::warning("RACE002", "tab\there \"quoted\" back\\slash\nnewline")
            .with_note("unicode: λ → ∀");
        assert_eq!(Diagnostic::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn json_round_trips_control_characters() {
        let mut msg = String::from("ctrl:");
        for cp in 0u32..0x20 {
            msg.push(char::from_u32(cp).unwrap());
        }
        let d = Diagnostic::error("IR000", msg.clone()).with_note(msg);
        let enc = d.to_json();
        assert!(enc.chars().all(|c| (c as u32) >= 0x20), "{enc:?}");
        assert_eq!(Diagnostic::from_json(&enc).unwrap(), d);
    }

    #[test]
    fn json_array_round_trips() {
        let batch = vec![
            sample(),
            Diagnostic::note("RACE000", "forall is independent"),
        ];
        let enc = to_json_array(&batch);
        assert_eq!(from_json_array(&enc).unwrap(), batch);
        assert_eq!(from_json_array("[]").unwrap(), Vec::new());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Diagnostic::from_json("{").is_err());
        assert!(Diagnostic::from_json("[]").is_err());
        assert!(Diagnostic::from_json("{\"code\":3}").is_err());
        assert!(from_json_array("{\"code\":3}").is_err());
        let bad_sev = "{\"code\":\"X\",\"severity\":\"fatal\",\"func\":null,\
                       \"message\":\"m\",\"labels\":[],\"notes\":[]}";
        assert!(Diagnostic::from_json(bad_sev).is_err());
    }

    #[test]
    fn severity_ordering_puts_errors_last() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
