//! Convenience builders for constructing SIMPLE IR by hand.
//!
//! The frontend produces IR from EARTH-C source; the builders below are the
//! programmatic alternative, used heavily by tests and by generated
//! workloads. Labels are assigned automatically.
//!
//! # Examples
//!
//! ```
//! use earth_ir::builder::FunctionBuilder;
//! use earth_ir::{BinOp, Cond, Operand, Program, StructDef, Ty, VarDecl};
//!
//! let mut prog = Program::new();
//! let mut point = StructDef::new("Point");
//! let fx = point.add_field("x", Ty::Double);
//! let pt = prog.add_struct(point);
//!
//! let mut fb = FunctionBuilder::new("get_x", Some(Ty::Double));
//! let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
//! let t = fb.var(VarDecl::new("t", Ty::Double));
//! fb.load_deref(t, p, fx); // t = p->x (remote)
//! fb.ret(Some(Operand::Var(t)));
//! prog.add_function(fb.finish());
//! assert!(prog.function_by_name("get_x").is_some());
//! ```

use crate::func::{FuncId, Function};
use crate::stmt::{
    AtTarget, Basic, BinOp, BlkDir, Builtin, Cond, MemRef, Operand, Place, Rvalue, Stmt, StmtKind,
    UnOp,
};
use crate::types::{FieldId, StructId, Ty};
use crate::var::{VarDecl, VarId, VarOrigin};

/// Builds a [`Function`] incrementally, maintaining a stack of open
/// statement sequences so nested control flow reads naturally.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    /// Stack of open statement lists; the innermost is last.
    frames: Vec<Vec<Stmt>>,
    temp_counter: u32,
}

impl FunctionBuilder {
    /// Starts building a function with the given name and return type.
    pub fn new(name: impl Into<String>, ret_ty: Option<Ty>) -> Self {
        FunctionBuilder {
            func: Function::new(name, ret_ty),
            frames: vec![Vec::new()],
            temp_counter: 0,
        }
    }

    /// Declares a parameter.
    pub fn param(&mut self, decl: VarDecl) -> VarId {
        self.func.add_param(decl)
    }

    /// Declares a local variable.
    pub fn var(&mut self, decl: VarDecl) -> VarId {
        self.func.add_var(decl)
    }

    /// Declares a fresh simplifier temporary of type `ty`.
    pub fn temp(&mut self, ty: Ty) -> VarId {
        self.temp_counter += 1;
        let name = format!("temp{}", self.temp_counter);
        self.func.add_var(VarDecl {
            origin: VarOrigin::SimplifyTemp,
            ..VarDecl::new(name, ty)
        })
    }

    /// Read-only access to the function under construction.
    pub fn function(&self) -> &Function {
        &self.func
    }

    fn push(&mut self, kind: StmtKind) {
        let label = self.func.fresh_label();
        self.frames
            .last_mut()
            .expect("builder frame stack is never empty")
            .push(Stmt { label, kind });
    }

    /// Emits an arbitrary basic statement.
    pub fn basic(&mut self, b: Basic) {
        self.push(StmtKind::Basic(b));
    }

    /// `dst = src`
    pub fn assign(&mut self, dst: VarId, src: Operand) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Use(src),
        });
    }

    /// `dst = a op b`
    pub fn binop(&mut self, dst: VarId, op: BinOp, a: Operand, b: Operand) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Binary(op, a, b),
        });
    }

    /// `dst = op a`
    pub fn unop(&mut self, dst: VarId, op: UnOp, a: Operand) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Unary(op, a),
        });
    }

    /// `dst = base->field` — a potentially remote read.
    pub fn load_deref(&mut self, dst: VarId, base: VarId, field: FieldId) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Load(MemRef::Deref { base, field }),
        });
    }

    /// `base->field = src` — a potentially remote write.
    pub fn store_deref(&mut self, base: VarId, field: FieldId, src: Operand) {
        self.basic(Basic::Assign {
            dst: Place::Mem(MemRef::Deref { base, field }),
            src: Rvalue::Use(src),
        });
    }

    /// `dst = base.field` — a local struct-variable field read.
    pub fn load_field(&mut self, dst: VarId, base: VarId, field: FieldId) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Load(MemRef::Field { base, field }),
        });
    }

    /// `base.field = src` — a local struct-variable field write.
    pub fn store_field(&mut self, base: VarId, field: FieldId, src: Operand) {
        self.basic(Basic::Assign {
            dst: Place::Mem(MemRef::Field { base, field }),
            src: Rvalue::Use(src),
        });
    }

    /// `dst = malloc(sizeof(S))`, optionally on an explicit node.
    pub fn malloc(&mut self, dst: VarId, struct_id: StructId, on: Option<Operand>) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Malloc { struct_id, on },
        });
    }

    /// `dst = builtin(args...)`
    pub fn builtin(&mut self, dst: VarId, builtin: Builtin, args: Vec<Operand>) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::Builtin { builtin, args },
        });
    }

    /// `dst = f(args...) [@at]`
    pub fn call(&mut self, dst: Option<VarId>, func: FuncId, args: Vec<Operand>) {
        self.basic(Basic::Call {
            dst,
            func,
            args,
            at: None,
        });
    }

    /// `dst = f(args...) @ OWNER_OF(p)`
    pub fn call_at_owner(
        &mut self,
        dst: Option<VarId>,
        func: FuncId,
        args: Vec<Operand>,
        p: VarId,
    ) {
        self.basic(Basic::Call {
            dst,
            func,
            args,
            at: Some(AtTarget::OwnerOf(p)),
        });
    }

    /// `dst = f(args...) @ node`
    pub fn call_at_node(
        &mut self,
        dst: Option<VarId>,
        func: FuncId,
        args: Vec<Operand>,
        node: Operand,
    ) {
        self.basic(Basic::Call {
            dst,
            func,
            args,
            at: Some(AtTarget::Node(node)),
        });
    }

    /// `return [op]`
    pub fn ret(&mut self, op: Option<Operand>) {
        self.basic(Basic::Return(op));
    }

    /// `blkmov(ptr, &buf, ...)` or `blkmov(&buf, ptr, ...)` over the whole
    /// struct.
    pub fn blkmov(&mut self, dir: BlkDir, ptr: VarId, buf: VarId) {
        self.basic(Basic::BlkMov {
            dir,
            ptr,
            buf,
            range: None,
        });
    }

    /// Partial `blkmov` transferring `words` words starting at field
    /// `first`.
    pub fn blkmov_range(&mut self, dir: BlkDir, ptr: VarId, buf: VarId, first: u32, words: u32) {
        self.basic(Basic::BlkMov {
            dir,
            ptr,
            buf,
            range: Some((first, words)),
        });
    }

    /// `writeto(&var, value)`
    pub fn atomic_write(&mut self, var: VarId, value: Operand) {
        self.basic(Basic::AtomicWrite { var, value });
    }

    /// `addto(&var, value)`
    pub fn atomic_add(&mut self, var: VarId, value: Operand) {
        self.basic(Basic::AtomicAdd { var, value });
    }

    /// `dst = valueof(&var)`
    pub fn value_of(&mut self, dst: VarId, var: VarId) {
        self.basic(Basic::Assign {
            dst: Place::Var(dst),
            src: Rvalue::ValueOf(var),
        });
    }

    // ---- structured control flow -------------------------------------

    fn open(&mut self) {
        self.frames.push(Vec::new());
    }

    fn close(&mut self) -> Stmt {
        let body = self
            .frames
            .pop()
            .expect("builder frame stack is never empty");
        let label = self.func.fresh_label();
        Stmt {
            label,
            kind: StmtKind::Seq(body),
        }
    }

    // ---- imperative control-flow primitives ---------------------------
    //
    // The closure-based helpers below are convenient for infallible
    // construction; fallible producers (like the frontend's lowering, which
    // must propagate type errors out of nested blocks) use these explicit
    // begin/end primitives instead.

    /// Opens a nested statement sequence; statements emitted afterwards go
    /// into it until the matching [`FunctionBuilder::end_seq`].
    pub fn begin_seq(&mut self) {
        self.open();
    }

    /// Closes the innermost open sequence and returns it as a statement
    /// (without attaching it anywhere).
    ///
    /// # Panics
    ///
    /// Panics if there is no matching [`FunctionBuilder::begin_seq`].
    pub fn end_seq(&mut self) -> Stmt {
        assert!(self.frames.len() > 1, "end_seq without begin_seq");
        self.close()
    }

    /// Emits an `if` from pre-built branches (see
    /// [`FunctionBuilder::end_seq`]).
    pub fn emit_if(&mut self, cond: Cond, then_s: Stmt, else_s: Stmt) {
        self.push(StmtKind::If {
            cond,
            then_s: Box::new(then_s),
            else_s: Box::new(else_s),
        });
    }

    /// Emits a `switch` from pre-built case bodies.
    pub fn emit_switch(&mut self, scrut: Operand, cases: Vec<(i64, Stmt)>, default: Stmt) {
        self.push(StmtKind::Switch {
            scrut,
            cases,
            default: Box::new(default),
        });
    }

    /// Emits a `while` from a pre-built body.
    pub fn emit_while(&mut self, cond: Cond, body: Stmt) {
        self.push(StmtKind::While {
            cond,
            body: Box::new(body),
        });
    }

    /// Emits a `do ... while` from a pre-built body.
    pub fn emit_do_while(&mut self, body: Stmt, cond: Cond) {
        self.push(StmtKind::DoWhile {
            body: Box::new(body),
            cond,
        });
    }

    /// Emits a parallel sequence from pre-built arms.
    pub fn emit_par_seq(&mut self, arms: Vec<Stmt>) {
        self.push(StmtKind::ParSeq(arms));
    }

    /// Emits a `forall` from pre-built pieces. `init` and `step` must be
    /// basic statements.
    pub fn emit_forall(&mut self, init: Basic, cond: Cond, step: Basic, body: Stmt) {
        let init_label = self.func.fresh_label();
        let step_label = self.func.fresh_label();
        self.push(StmtKind::Forall {
            init: Box::new(Stmt {
                label: init_label,
                kind: StmtKind::Basic(init),
            }),
            cond,
            step: Box::new(Stmt {
                label: step_label,
                kind: StmtKind::Basic(step),
            }),
            body: Box::new(body),
        });
    }

    /// `if (cond) { then() }`
    pub fn if_then(&mut self, cond: Cond, then_b: impl FnOnce(&mut Self)) {
        self.if_then_else(cond, then_b, |_| {});
    }

    /// `if (cond) { then() } else { else() }`
    pub fn if_then_else(
        &mut self,
        cond: Cond,
        then_b: impl FnOnce(&mut Self),
        else_b: impl FnOnce(&mut Self),
    ) {
        self.open();
        then_b(self);
        let then_s = self.close();
        self.open();
        else_b(self);
        let else_s = self.close();
        self.push(StmtKind::If {
            cond,
            then_s: Box::new(then_s),
            else_s: Box::new(else_s),
        });
    }

    /// `switch (scrut) { case v_i: case_i() ... default: default_b() }`
    #[allow(clippy::type_complexity)] // boxed-closure arms are the natural shape here
    pub fn switch(
        &mut self,
        scrut: Operand,
        cases: Vec<(i64, Box<dyn FnOnce(&mut Self) + '_>)>,
        default_b: impl FnOnce(&mut Self),
    ) {
        let mut built = Vec::with_capacity(cases.len());
        for (val, f) in cases {
            self.open();
            f(self);
            built.push((val, self.close()));
        }
        self.open();
        default_b(self);
        let default = self.close();
        self.push(StmtKind::Switch {
            scrut,
            cases: built,
            default: Box::new(default),
        });
    }

    /// `while (cond) { body() }`
    pub fn while_loop(&mut self, cond: Cond, body: impl FnOnce(&mut Self)) {
        self.open();
        body(self);
        let body_s = self.close();
        self.push(StmtKind::While {
            cond,
            body: Box::new(body_s),
        });
    }

    /// `do { body() } while (cond)`
    pub fn do_while(&mut self, body: impl FnOnce(&mut Self), cond: Cond) {
        self.open();
        body(self);
        let body_s = self.close();
        self.push(StmtKind::DoWhile {
            body: Box::new(body_s),
            cond,
        });
    }

    /// `{^ arm_1; ...; arm_n ^}` — a parallel statement sequence.
    #[allow(clippy::type_complexity)]
    pub fn par_seq(&mut self, arms: Vec<Box<dyn FnOnce(&mut Self) + '_>>) {
        let mut built = Vec::with_capacity(arms.len());
        for f in arms {
            self.open();
            f(self);
            built.push(self.close());
        }
        self.push(StmtKind::ParSeq(built));
    }

    /// `forall (init; cond; step) { body() }`
    ///
    /// `init` and `step` are single basic statements, per SIMPLE's
    /// structured `for` form.
    pub fn forall(&mut self, init: Basic, cond: Cond, step: Basic, body: impl FnOnce(&mut Self)) {
        let init_label = self.func.fresh_label();
        let step_label = self.func.fresh_label();
        self.open();
        body(self);
        let body_s = self.close();
        self.push(StmtKind::Forall {
            init: Box::new(Stmt {
                label: init_label,
                kind: StmtKind::Basic(init),
            }),
            cond,
            step: Box::new(Stmt {
                label: step_label,
                kind: StmtKind::Basic(step),
            }),
            body: Box::new(body_s),
        });
    }

    /// Finishes the function: the top-level statement list becomes the body.
    ///
    /// # Panics
    ///
    /// Panics if control-flow builders were left unbalanced (can only happen
    /// through incorrect internal use; the closure-based API keeps the stack
    /// balanced by construction).
    pub fn finish(mut self) -> Function {
        assert_eq!(self.frames.len(), 1, "unbalanced builder frames");
        let body = self.frames.pop().expect("frame stack has one entry");
        let label = self.func.fresh_label();
        self.func.body = Stmt {
            label,
            kind: StmtKind::Seq(body),
        };
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StructDef;
    use crate::Program;

    #[test]
    fn builds_nested_control_flow() {
        let mut prog = Program::new();
        let mut node = StructDef::new("Node");
        let next = node.add_field("next", Ty::Ptr(StructId(0)));
        let val = node.add_field("value", Ty::Int);
        let sid = prog.add_struct(node);

        let mut fb = FunctionBuilder::new("sum", Some(Ty::Int));
        let head = fb.param(VarDecl::new("head", Ty::Ptr(sid)));
        let p = fb.var(VarDecl::new("p", Ty::Ptr(sid)));
        let acc = fb.var(VarDecl::new("acc", Ty::Int));
        let t = fb.temp(Ty::Int);
        fb.assign(acc, Operand::int(0));
        fb.assign(p, Operand::Var(head));
        fb.while_loop(
            Cond::new(BinOp::Ne, Operand::Var(p), Operand::null()),
            |b| {
                b.load_deref(t, p, val);
                b.binop(acc, BinOp::Add, Operand::Var(acc), Operand::Var(t));
                b.load_deref(p, p, next);
            },
        );
        fb.ret(Some(Operand::Var(acc)));
        let f = fb.finish();

        // Labels must be unique.
        let labels = f.body.labels();
        let mut sorted = labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());

        // The loop body contains three basic statements.
        assert_eq!(f.basic_stmts().len(), 6);
        prog.add_function(f);
    }

    #[test]
    fn par_seq_and_forall() {
        let mut fb = FunctionBuilder::new("par", None);
        let i = fb.var(VarDecl::new("i", Ty::Int));
        fb.par_seq(vec![
            Box::new(move |b: &mut FunctionBuilder| b.assign(i, Operand::int(1))),
            Box::new(move |b: &mut FunctionBuilder| b.assign(i, Operand::int(2))),
        ]);
        fb.forall(
            Basic::Assign {
                dst: Place::Var(i),
                src: Rvalue::Use(Operand::int(0)),
            },
            Cond::new(BinOp::Lt, Operand::Var(i), Operand::int(10)),
            Basic::Assign {
                dst: Place::Var(i),
                src: Rvalue::Binary(BinOp::Add, Operand::Var(i), Operand::int(1)),
            },
            |b| b.assign(i, Operand::Var(i)),
        );
        let f = fb.finish();
        let mut kinds = Vec::new();
        f.body.walk(&mut |s| {
            kinds.push(std::mem::discriminant(&s.kind));
        });
        assert!(f.body.labels().windows(2).all(|w| w[0] != w[1]));
        assert_eq!(f.basic_stmts().len(), 5); // 2 par arms + init + step + body
    }

    #[test]
    fn temps_are_named_sequentially() {
        let mut fb = FunctionBuilder::new("t", None);
        let a = fb.temp(Ty::Int);
        let b = fb.temp(Ty::Double);
        let f = fb.finish();
        assert_eq!(f.var(a).name, "temp1");
        assert_eq!(f.var(b).name, "temp2");
        assert_eq!(f.var(a).origin, VarOrigin::SimplifyTemp);
    }
}
