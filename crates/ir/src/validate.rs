//! Structural validation of SIMPLE IR programs.
//!
//! The validator enforces the invariants the analyses and the simulator rely
//! on, most importantly the SIMPLE property that a basic statement carries
//! **at most one** potentially-remote memory operation.

use crate::func::{FuncId, Function, Program};
use crate::stmt::{Basic, Cond, MemRef, Operand, Place, Rvalue, Stmt, StmtKind};
use crate::types::Ty;
use crate::var::VarId;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// Function in which the problem was found, if any.
    pub func: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for ValidateError {}

/// Validates a whole program.
///
/// # Errors
///
/// Returns the first violated invariant:
/// * out-of-range variable / field / struct / function references,
/// * duplicate statement labels within a function,
/// * more than one pointer dereference in a basic statement,
/// * struct-typed variables used where a scalar is required,
/// * `Cond` operands that are not scalar variables or constants,
/// * atomic operations applied to non-`shared` variables (or vice versa),
/// * block moves whose buffer is not a local struct variable of the
///   pointee's type.
pub fn validate_program(prog: &Program) -> Result<(), ValidateError> {
    for (id, f) in prog.iter_functions() {
        validate_function(prog, id).map_err(|mut e| {
            e.func = Some(f.name.clone());
            e
        })?;
    }
    Ok(())
}

/// Validates a single function.
///
/// # Errors
///
/// See [`validate_program`].
pub fn validate_function(prog: &Program, id: FuncId) -> Result<(), ValidateError> {
    let f = prog.function(id);
    let mut v = Validator {
        prog,
        func: f,
        seen_labels: HashSet::new(),
    };
    v.stmt(&f.body)
}

fn err(message: impl Into<String>) -> ValidateError {
    ValidateError {
        func: None,
        message: message.into(),
    }
}

struct Validator<'a> {
    prog: &'a Program,
    func: &'a Function,
    seen_labels: HashSet<u32>,
}

impl Validator<'_> {
    fn var_ty(&self, v: VarId) -> Result<Ty, ValidateError> {
        if v.index() >= self.func.vars().len() {
            return Err(err(format!("variable {v} out of range")));
        }
        Ok(self.func.var(v).ty)
    }

    fn check_operand(&self, o: Operand) -> Result<(), ValidateError> {
        if let Operand::Var(v) = o {
            let ty = self.var_ty(v)?;
            if ty.is_struct() {
                return Err(err(format!(
                    "struct variable `{}` used as scalar operand",
                    self.func.var(v).name
                )));
            }
        }
        Ok(())
    }

    fn check_memref(&self, m: MemRef) -> Result<(), ValidateError> {
        let base_ty = self.var_ty(m.base())?;
        let sid = match (m, base_ty) {
            (MemRef::Deref { .. }, Ty::Ptr(s)) => s,
            (MemRef::Field { .. }, Ty::Struct(s)) => s,
            (MemRef::Deref { .. }, _) => {
                return Err(err(format!(
                    "`{}` dereferenced but is not a pointer",
                    self.func.var(m.base()).name
                )))
            }
            (MemRef::Field { .. }, _) => {
                return Err(err(format!(
                    "`.field` access on non-struct variable `{}`",
                    self.func.var(m.base()).name
                )))
            }
        };
        if sid.index() >= self.prog.structs().len() {
            return Err(err(format!("{sid} out of range")));
        }
        let def = self.prog.struct_def(sid);
        if m.field().index() >= def.fields.len() {
            return Err(err(format!(
                "field {} out of range for struct `{}`",
                m.field(),
                def.name
            )));
        }
        Ok(())
    }

    fn check_cond(&self, c: &Cond) -> Result<(), ValidateError> {
        if !c.op.is_comparison() {
            return Err(err("loop/branch condition must be a comparison"));
        }
        self.check_operand(c.lhs)?;
        self.check_operand(c.rhs)
    }

    fn count_derefs(b: &Basic) -> usize {
        let mut n = 0;
        if let Basic::Assign { dst, src } = b {
            if matches!(dst, Place::Mem(MemRef::Deref { .. })) {
                n += 1;
            }
            if matches!(src, Rvalue::Load(MemRef::Deref { .. })) {
                n += 1;
            }
        }
        if matches!(b, Basic::BlkMov { .. }) {
            n += 1;
        }
        n
    }

    fn basic(&self, b: &Basic) -> Result<(), ValidateError> {
        if Self::count_derefs(b) > 1 {
            return Err(err(
                "basic statement contains more than one potentially-remote operation",
            ));
        }
        for o in b.operands() {
            self.check_operand(o)?;
        }
        match b {
            Basic::Assign { dst, src } => {
                match dst {
                    Place::Var(v) => {
                        let ty = self.var_ty(*v)?;
                        if ty.is_struct() && !matches!(src, Rvalue::Use(_)) {
                            return Err(err(format!(
                                "struct variable `{}` may only be block-moved or copied",
                                self.func.var(*v).name
                            )));
                        }
                    }
                    Place::Mem(m) => self.check_memref(*m)?,
                }
                match src {
                    Rvalue::Load(m) => self.check_memref(*m)?,
                    Rvalue::Malloc { struct_id, .. }
                        if struct_id.index() >= self.prog.structs().len() => {
                            return Err(err(format!("{struct_id} out of range in malloc")));
                        }
                    Rvalue::Builtin { builtin, args }
                        if args.len() != builtin.arity() => {
                            return Err(err(format!(
                                "builtin `{}` expects {} arguments, got {}",
                                builtin.name(),
                                builtin.arity(),
                                args.len()
                            )));
                        }
                    Rvalue::ValueOf(v) => {
                        self.var_ty(*v)?;
                        if !self.func.var(*v).shared {
                            return Err(err(format!(
                                "valueof on non-shared variable `{}`",
                                self.func.var(*v).name
                            )));
                        }
                    }
                    _ => {}
                }
            }
            Basic::Call { dst, func, .. } => {
                if func.index() >= self.prog.functions().len() {
                    return Err(err(format!("{func} out of range in call")));
                }
                if let Some(d) = dst {
                    self.var_ty(*d)?;
                    let callee = self.prog.function(*func);
                    if callee.ret_ty.is_none() {
                        return Err(err(format!(
                            "call to void function `{}` assigns a result",
                            callee.name
                        )));
                    }
                }
            }
            Basic::Return(_) => {}
            Basic::BlkMov { ptr, buf, range, .. } => {
                let pty = self.var_ty(*ptr)?;
                let bty = self.var_ty(*buf)?;
                let sid = match (pty, bty) {
                    (Ty::Ptr(a), Ty::Struct(b)) if a == b => a,
                    _ => {
                        return Err(err(format!(
                            "blkmov requires pointer `{}` and matching local struct buffer `{}`",
                            self.func.var(*ptr).name,
                            self.func.var(*buf).name
                        )))
                    }
                };
                if let Some((first, words)) = range {
                    let size = self.prog.struct_def(sid).size_words() as u32;
                    if *words == 0 || first + words > size {
                        return Err(err(format!(
                            "blkmov range [{first}, {first}+{words}) out of bounds for {size}-word struct"
                        )));
                    }
                }
            }
            Basic::AtomicWrite { var, .. } | Basic::AtomicAdd { var, .. } => {
                self.var_ty(*var)?;
                if !self.func.var(*var).shared {
                    return Err(err(format!(
                        "atomic operation on non-shared variable `{}`",
                        self.func.var(*var).name
                    )));
                }
            }
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), ValidateError> {
        if !self.seen_labels.insert(s.label.0) {
            return Err(err(format!("duplicate statement label {}", s.label)));
        }
        match &s.kind {
            StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
                for c in ss {
                    self.stmt(c)?;
                }
            }
            StmtKind::Basic(b) => self.basic(b)?,
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                self.check_cond(cond)?;
                self.stmt(then_s)?;
                self.stmt(else_s)?;
            }
            StmtKind::Switch {
                scrut,
                cases,
                default,
            } => {
                self.check_operand(*scrut)?;
                let mut vals = HashSet::new();
                for (v, cs) in cases {
                    if !vals.insert(*v) {
                        return Err(err(format!("duplicate switch case {v}")));
                    }
                    self.stmt(cs)?;
                }
                self.stmt(default)?;
            }
            StmtKind::While { cond, body } => {
                self.check_cond(cond)?;
                self.stmt(body)?;
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmt(body)?;
                self.check_cond(cond)?;
            }
            StmtKind::Forall {
                init,
                cond,
                step,
                body,
            } => {
                if !matches!(init.kind, StmtKind::Basic(_)) || !matches!(step.kind, StmtKind::Basic(_))
                {
                    return Err(err("forall init/step must be basic statements"));
                }
                self.stmt(init)?;
                self.check_cond(cond)?;
                self.stmt(step)?;
                self.stmt(body)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::{BinOp, BlkDir, Label};
    use crate::types::{StructDef, StructId};
    use crate::var::VarDecl;

    fn point_program() -> (Program, StructId) {
        let mut prog = Program::new();
        let mut point = StructDef::new("Point");
        point.add_field("x", Ty::Double);
        point.add_field("y", Ty::Double);
        let pt = prog.add_struct(point);
        (prog, pt)
    }

    #[test]
    fn valid_program_passes() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", Some(Ty::Double));
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let t = fb.var(VarDecl::new("t", Ty::Double));
        fb.load_deref(t, p, crate::types::FieldId(0));
        fb.ret(Some(Operand::Var(t)));
        prog.add_function(fb.finish());
        validate_program(&prog).unwrap();
    }

    #[test]
    fn two_derefs_rejected() {
        let (mut prog, pt) = point_program();
        let mut f = Function::new("bad", None);
        let p = f.add_param(VarDecl::new("p", Ty::Ptr(pt)));
        let q = f.add_param(VarDecl::new("q", Ty::Ptr(pt)));
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: l1,
                kind: StmtKind::Basic(Basic::Assign {
                    dst: Place::Mem(MemRef::Deref {
                        base: p,
                        field: crate::types::FieldId(0),
                    }),
                    src: Rvalue::Load(MemRef::Deref {
                        base: q,
                        field: crate::types::FieldId(1),
                    }),
                }),
            }]),
        };
        let id = prog.add_function(f);
        let e = validate_function(&prog, id).unwrap_err();
        assert!(e.message.contains("more than one"));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("dup", None);
        f.body = Stmt {
            label: Label(1),
            kind: StmtKind::Seq(vec![Stmt {
                label: Label(1),
                kind: StmtKind::Basic(Basic::Return(None)),
            }]),
        };
        let id = prog.add_function(f);
        assert!(validate_function(&prog, id).is_err());
    }

    #[test]
    fn atomic_on_ordinary_var_rejected() {
        let (mut prog, _) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let c = fb.var(VarDecl::new("c", Ty::Int));
        fb.atomic_add(c, Operand::int(1));
        let id = prog.add_function(fb.finish());
        let e = validate_function(&prog, id).unwrap_err();
        assert!(e.message.contains("non-shared"));
    }

    #[test]
    fn blkmov_type_mismatch_rejected() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let buf = fb.var(VarDecl::new("buf", Ty::Int));
        fb.blkmov(BlkDir::RemoteToLocal, p, buf);
        let id = prog.add_function(fb.finish());
        assert!(validate_function(&prog, id).is_err());
    }

    #[test]
    fn valid_blkmov_passes() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let buf = fb.var(VarDecl::new("bcomm1", Ty::Struct(pt)));
        fb.blkmov(BlkDir::RemoteToLocal, p, buf);
        fb.ret(None);
        let id = prog.add_function(fb.finish());
        validate_function(&prog, id).unwrap();
    }

    #[test]
    fn cond_with_struct_var_rejected() {
        let (mut prog, pt) = point_program();
        let mut f = Function::new("f", None);
        let s = f.add_var(VarDecl::new("s", Ty::Struct(pt)));
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        let l2 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: l1,
                kind: StmtKind::While {
                    cond: Cond::new(BinOp::Ne, Operand::Var(s), Operand::int(0)),
                    body: Box::new(Stmt {
                        label: l2,
                        kind: StmtKind::Seq(vec![]),
                    }),
                },
            }]),
        };
        let id = prog.add_function(f);
        assert!(validate_function(&prog, id).is_err());
    }

    #[test]
    fn error_display_includes_function() {
        let e = ValidateError {
            func: Some("foo".into()),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "in function `foo`: boom");
    }
}
