//! Structural validation of SIMPLE IR programs.
//!
//! The validator enforces the invariants the analyses and the simulator rely
//! on, most importantly the SIMPLE property that a basic statement carries
//! **at most one** potentially-remote memory operation.
//!
//! Violations are reported as [`Diagnostic`] values with stable codes:
//!
//! | code | invariant |
//! |---|---|
//! | `IR001` | at most one potentially-remote operation per basic statement |
//! | `IR002` | statement labels are unique within a function |
//! | `IR003` | every referenced `VarId` is declared in the function |
//! | `IR004` | operands, dereferences, and conditions are well-typed |
//! | `IR005` | atomic operations and `valueof` target `shared` variables |
//! | `IR006` | `blkmov` moves between a pointer and a matching struct buffer |
//! | `IR007` | calls reference real functions and respect `void` |
//! | `IR008` | every label was allocated by the owning function (no dangling labels) |
//! | `IR009` | `switch` cases are distinct; `forall` init/step are basic |
//! | `IR010` | every label maps to a single [`SiteId`](crate::site::SiteId) (stable profile sites) |
//!
//! [`validate_program`] keeps the original fail-fast [`ValidateError`] API on
//! top of the diagnostic collector.

use crate::diag::Diagnostic;
use crate::func::{FuncId, Function, Program};
use crate::stmt::{Basic, Cond, Label, MemRef, Operand, Place, Rvalue, Stmt, StmtKind};
use crate::types::Ty;
use crate::var::VarId;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A validation failure (first error found, fail-fast API).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    /// Function in which the problem was found, if any.
    pub func: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for ValidateError {}

impl From<Diagnostic> for ValidateError {
    fn from(d: Diagnostic) -> Self {
        ValidateError {
            func: d.func,
            message: d.message,
        }
    }
}

/// Validates a whole program, fail-fast.
///
/// # Errors
///
/// Returns the first violated invariant (see the module table of codes).
pub fn validate_program(prog: &Program) -> Result<(), ValidateError> {
    match validate_program_diags(prog).into_iter().next() {
        Some(d) => Err(d.into()),
        None => Ok(()),
    }
}

/// Validates a single function, fail-fast.
///
/// # Errors
///
/// See [`validate_program`].
pub fn validate_function(prog: &Program, id: FuncId) -> Result<(), ValidateError> {
    match validate_function_diags(prog, id).into_iter().next() {
        Some(d) => Err(d.into()),
        None => Ok(()),
    }
}

/// Validates a whole program, collecting **all** violations as diagnostics.
pub fn validate_program_diags(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, _) in prog.iter_functions() {
        out.extend(validate_function_diags(prog, id));
    }
    out
}

/// Validates a single function, collecting all violations as diagnostics.
pub fn validate_function_diags(prog: &Program, id: FuncId) -> Vec<Diagnostic> {
    let f = prog.function(id);
    let mut v = Validator {
        prog,
        func: f,
        seen_labels: HashSet::new(),
        diags: Vec::new(),
    };
    v.stmt(&f.body);
    let mut diags = v.diags;
    // IR010: a label occurring at more than one tree position cannot be
    // given a stable SiteId, so profile feedback keyed on it is ambiguous.
    for (label, a, b) in crate::site::duplicate_site_labels(id, f) {
        diags.push(err(
            "IR010",
            label,
            format!("label {label} has an unstable SiteId: occurs at both {a} and {b}"),
        ));
    }
    diags
        .into_iter()
        .map(|d| d.in_func(f.name.clone()))
        .collect()
}

fn err(code: &str, at: Label, message: impl Into<String>) -> Diagnostic {
    Diagnostic::error(code, message).with_label(at, "here")
}

struct Validator<'a> {
    prog: &'a Program,
    func: &'a Function,
    seen_labels: HashSet<u32>,
    diags: Vec<Diagnostic>,
}

// Internal helpers thread `Diagnostic` (128 bytes) through cold error
// paths only; boxing would just add noise at every `err(...)` site.
#[allow(clippy::result_large_err)]
impl Validator<'_> {
    fn var_ty(&self, v: VarId, at: Label) -> Result<Ty, Diagnostic> {
        if v.index() >= self.func.vars().len() {
            return Err(err(
                "IR003",
                at,
                format!(
                    "variable {v} is not declared in this function ({} declared)",
                    self.func.vars().len()
                ),
            ));
        }
        Ok(self.func.var(v).ty)
    }

    fn check_operand(&self, o: Operand, at: Label) -> Result<(), Diagnostic> {
        if let Operand::Var(v) = o {
            let ty = self.var_ty(v, at)?;
            if ty.is_struct() {
                return Err(err(
                    "IR004",
                    at,
                    format!(
                        "struct variable `{}` used as scalar operand",
                        self.func.var(v).name
                    ),
                ));
            }
        }
        Ok(())
    }

    fn check_memref(&self, m: MemRef, at: Label) -> Result<(), Diagnostic> {
        let base_ty = self.var_ty(m.base(), at)?;
        let sid = match (m, base_ty) {
            (MemRef::Deref { .. }, Ty::Ptr(s)) => s,
            (MemRef::Field { .. }, Ty::Struct(s)) => s,
            (MemRef::Deref { .. }, _) => {
                return Err(err(
                    "IR004",
                    at,
                    format!(
                        "`{}` dereferenced but is not a pointer",
                        self.func.var(m.base()).name
                    ),
                ))
            }
            (MemRef::Field { .. }, _) => {
                return Err(err(
                    "IR004",
                    at,
                    format!(
                        "`.field` access on non-struct variable `{}`",
                        self.func.var(m.base()).name
                    ),
                ))
            }
        };
        if sid.index() >= self.prog.structs().len() {
            return Err(err("IR004", at, format!("{sid} out of range")));
        }
        let def = self.prog.struct_def(sid);
        if m.field().index() >= def.fields.len() {
            return Err(err(
                "IR004",
                at,
                format!("field {} out of range for struct `{}`", m.field(), def.name),
            ));
        }
        Ok(())
    }

    fn check_cond(&self, c: &Cond, at: Label) -> Result<(), Diagnostic> {
        if !c.op.is_comparison() {
            return Err(err(
                "IR004",
                at,
                "loop/branch condition must be a comparison",
            ));
        }
        self.check_operand(c.lhs, at)?;
        self.check_operand(c.rhs, at)
    }

    fn count_derefs(b: &Basic) -> usize {
        let mut n = 0;
        if let Basic::Assign { dst, src } = b {
            if matches!(dst, Place::Mem(MemRef::Deref { .. })) {
                n += 1;
            }
            if matches!(src, Rvalue::Load(MemRef::Deref { .. })) {
                n += 1;
            }
        }
        if matches!(b, Basic::BlkMov { .. }) {
            n += 1;
        }
        n
    }

    fn basic(&self, b: &Basic, at: Label) -> Result<(), Diagnostic> {
        if Self::count_derefs(b) > 1 {
            return Err(err(
                "IR001",
                at,
                "basic statement contains more than one potentially-remote operation",
            ));
        }
        for o in b.operands() {
            self.check_operand(o, at)?;
        }
        match b {
            Basic::Assign { dst, src } => {
                match dst {
                    Place::Var(v) => {
                        let ty = self.var_ty(*v, at)?;
                        if ty.is_struct() && !matches!(src, Rvalue::Use(_)) {
                            return Err(err(
                                "IR004",
                                at,
                                format!(
                                    "struct variable `{}` may only be block-moved or copied",
                                    self.func.var(*v).name
                                ),
                            ));
                        }
                    }
                    Place::Mem(m) => self.check_memref(*m, at)?,
                }
                match src {
                    Rvalue::Load(m) => self.check_memref(*m, at)?,
                    Rvalue::Malloc { struct_id, .. }
                        if struct_id.index() >= self.prog.structs().len() =>
                    {
                        return Err(err(
                            "IR004",
                            at,
                            format!("{struct_id} out of range in malloc"),
                        ));
                    }
                    Rvalue::Builtin { builtin, args } if args.len() != builtin.arity() => {
                        return Err(err(
                            "IR004",
                            at,
                            format!(
                                "builtin `{}` expects {} arguments, got {}",
                                builtin.name(),
                                builtin.arity(),
                                args.len()
                            ),
                        ));
                    }
                    Rvalue::ValueOf(v) => {
                        self.var_ty(*v, at)?;
                        if !self.func.var(*v).shared {
                            return Err(err(
                                "IR005",
                                at,
                                format!(
                                    "valueof on non-shared variable `{}`",
                                    self.func.var(*v).name
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
            Basic::Call { dst, func, .. } => {
                if func.index() >= self.prog.functions().len() {
                    return Err(err("IR007", at, format!("{func} out of range in call")));
                }
                if let Some(d) = dst {
                    self.var_ty(*d, at)?;
                    let callee = self.prog.function(*func);
                    if callee.ret_ty.is_none() {
                        return Err(err(
                            "IR007",
                            at,
                            format!("call to void function `{}` assigns a result", callee.name),
                        ));
                    }
                }
            }
            Basic::Return(_) => {}
            Basic::BlkMov {
                ptr, buf, range, ..
            } => {
                let pty = self.var_ty(*ptr, at)?;
                let bty = self.var_ty(*buf, at)?;
                let sid = match (pty, bty) {
                    (Ty::Ptr(a), Ty::Struct(b)) if a == b => a,
                    _ => {
                        return Err(err(
                            "IR006",
                            at,
                            format!(
                            "blkmov requires pointer `{}` and matching local struct buffer `{}`",
                            self.func.var(*ptr).name,
                            self.func.var(*buf).name
                        ),
                        ))
                    }
                };
                if let Some((first, words)) = range {
                    let size = self.prog.struct_def(sid).size_words() as u32;
                    if *words == 0 || first + words > size {
                        return Err(err(
                            "IR006",
                            at,
                            format!(
                                "blkmov range [{first}, {first}+{words}) out of bounds for {size}-word struct"
                            ),
                        ));
                    }
                }
            }
            Basic::AtomicWrite { var, .. } | Basic::AtomicAdd { var, .. } => {
                self.var_ty(*var, at)?;
                if !self.func.var(*var).shared {
                    return Err(err(
                        "IR005",
                        at,
                        format!(
                            "atomic operation on non-shared variable `{}`",
                            self.func.var(*var).name
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn record(&mut self, r: Result<(), Diagnostic>) {
        if let Err(d) = r {
            self.diags.push(d);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        if !self.seen_labels.insert(s.label.0) {
            self.diags.push(err(
                "IR002",
                s.label,
                format!("duplicate statement label {}", s.label),
            ));
        }
        if s.label.0 as usize >= self.func.label_bound() {
            self.diags.push(err(
                "IR008",
                s.label,
                format!(
                    "dangling label {}: never allocated by this function (bound {})",
                    s.label,
                    self.func.label_bound()
                ),
            ));
        }
        match &s.kind {
            StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
                for c in ss {
                    self.stmt(c);
                }
            }
            StmtKind::Basic(b) => {
                let r = self.basic(b, s.label);
                self.record(r);
            }
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                let r = self.check_cond(cond, s.label);
                self.record(r);
                self.stmt(then_s);
                self.stmt(else_s);
            }
            StmtKind::Switch {
                scrut,
                cases,
                default,
            } => {
                let r = self.check_operand(*scrut, s.label);
                self.record(r);
                let mut vals = HashSet::new();
                for (v, cs) in cases {
                    if !vals.insert(*v) {
                        self.diags.push(err(
                            "IR009",
                            s.label,
                            format!("duplicate switch case {v}"),
                        ));
                    }
                    self.stmt(cs);
                }
                self.stmt(default);
            }
            StmtKind::While { cond, body } => {
                let r = self.check_cond(cond, s.label);
                self.record(r);
                self.stmt(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.stmt(body);
                let r = self.check_cond(cond, s.label);
                self.record(r);
            }
            StmtKind::Forall {
                init,
                cond,
                step,
                body,
            } => {
                if !matches!(init.kind, StmtKind::Basic(_))
                    || !matches!(step.kind, StmtKind::Basic(_))
                {
                    self.diags.push(err(
                        "IR009",
                        s.label,
                        "forall init/step must be basic statements",
                    ));
                }
                self.stmt(init);
                let r = self.check_cond(cond, s.label);
                self.record(r);
                self.stmt(step);
                self.stmt(body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::{BinOp, BlkDir, Label};
    use crate::types::{StructDef, StructId};
    use crate::var::VarDecl;

    fn point_program() -> (Program, StructId) {
        let mut prog = Program::new();
        let mut point = StructDef::new("Point");
        point.add_field("x", Ty::Double);
        point.add_field("y", Ty::Double);
        let pt = prog.add_struct(point);
        (prog, pt)
    }

    #[test]
    fn valid_program_passes() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", Some(Ty::Double));
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let t = fb.var(VarDecl::new("t", Ty::Double));
        fb.load_deref(t, p, crate::types::FieldId(0));
        fb.ret(Some(Operand::Var(t)));
        prog.add_function(fb.finish());
        validate_program(&prog).unwrap();
        assert!(validate_program_diags(&prog).is_empty());
    }

    #[test]
    fn two_derefs_rejected() {
        let (mut prog, pt) = point_program();
        let mut f = Function::new("bad", None);
        let p = f.add_param(VarDecl::new("p", Ty::Ptr(pt)));
        let q = f.add_param(VarDecl::new("q", Ty::Ptr(pt)));
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: l1,
                kind: StmtKind::Basic(Basic::Assign {
                    dst: Place::Mem(MemRef::Deref {
                        base: p,
                        field: crate::types::FieldId(0),
                    }),
                    src: Rvalue::Load(MemRef::Deref {
                        base: q,
                        field: crate::types::FieldId(1),
                    }),
                }),
            }]),
        };
        let id = prog.add_function(f);
        let e = validate_function(&prog, id).unwrap_err();
        assert!(e.message.contains("more than one"));
        let diags = validate_function_diags(&prog, id);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "IR001");
        assert_eq!(diags[0].labels[0].label, l1);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("dup", None);
        let a = f.fresh_label();
        let _ = f.fresh_label();
        f.body = Stmt {
            label: a,
            kind: StmtKind::Seq(vec![Stmt {
                label: a,
                kind: StmtKind::Basic(Basic::Return(None)),
            }]),
        };
        let id = prog.add_function(f);
        let diags = validate_function_diags(&prog, id);
        assert!(diags.iter().any(|d| d.code == "IR002"), "{diags:?}");
    }

    #[test]
    fn unstable_site_id_rejected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("twin", None);
        let a = f.fresh_label();
        let b = f.fresh_label();
        // The same label `b` appears at two tree positions, so its SiteId
        // is ambiguous: a profile keyed by it cannot be attributed.
        f.body = Stmt {
            label: a,
            kind: StmtKind::Seq(vec![
                Stmt {
                    label: b,
                    kind: StmtKind::Basic(Basic::Return(None)),
                },
                Stmt {
                    label: b,
                    kind: StmtKind::Basic(Basic::Return(None)),
                },
            ]),
        };
        let id = prog.add_function(f);
        let diags = validate_function_diags(&prog, id);
        let ir010: Vec<_> = diags.iter().filter(|d| d.code == "IR010").collect();
        assert_eq!(ir010.len(), 1, "{diags:?}");
        assert!(ir010[0].message.contains("unstable SiteId"));
        assert!(ir010[0].message.contains("f0:0"), "{}", ir010[0].message);
        assert!(ir010[0].message.contains("f0:1"), "{}", ir010[0].message);
        // The plain duplicate-label check still fires alongside it.
        assert!(diags.iter().any(|d| d.code == "IR002"));
    }

    #[test]
    fn dangling_label_rejected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("dangling", None);
        let l0 = f.fresh_label();
        // Label 99 was never allocated through `fresh_label`.
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: Label(99),
                kind: StmtKind::Basic(Basic::Return(None)),
            }]),
        };
        let id = prog.add_function(f);
        let diags = validate_function_diags(&prog, id);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "IR008");
        assert!(diags[0].message.contains("dangling label S99"));
    }

    #[test]
    fn undeclared_var_rejected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("ghost", None);
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: l1,
                kind: StmtKind::Basic(Basic::Assign {
                    dst: Place::Var(VarId(7)),
                    src: Rvalue::Use(Operand::int(0)),
                }),
            }]),
        };
        let id = prog.add_function(f);
        let diags = validate_function_diags(&prog, id);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "IR003");
        assert!(diags[0].message.contains("not declared"));
    }

    #[test]
    fn multiple_violations_all_collected() {
        let (mut prog, _) = point_program();
        let mut f = Function::new("multi", None);
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![
                Stmt {
                    label: l1,
                    kind: StmtKind::Basic(Basic::Assign {
                        dst: Place::Var(VarId(7)),
                        src: Rvalue::Use(Operand::int(0)),
                    }),
                },
                Stmt {
                    label: Label(42),
                    kind: StmtKind::Basic(Basic::Return(None)),
                },
            ]),
        };
        let id = prog.add_function(f);
        let diags = validate_function_diags(&prog, id);
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"IR003"), "{codes:?}");
        assert!(codes.contains(&"IR008"), "{codes:?}");
    }

    #[test]
    fn atomic_on_ordinary_var_rejected() {
        let (mut prog, _) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let c = fb.var(VarDecl::new("c", Ty::Int));
        fb.atomic_add(c, Operand::int(1));
        let id = prog.add_function(fb.finish());
        let e = validate_function(&prog, id).unwrap_err();
        assert!(e.message.contains("non-shared"));
        assert_eq!(validate_function_diags(&prog, id)[0].code, "IR005");
    }

    #[test]
    fn blkmov_type_mismatch_rejected() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let buf = fb.var(VarDecl::new("buf", Ty::Int));
        fb.blkmov(BlkDir::RemoteToLocal, p, buf);
        let id = prog.add_function(fb.finish());
        assert!(validate_function(&prog, id).is_err());
        assert_eq!(validate_function_diags(&prog, id)[0].code, "IR006");
    }

    #[test]
    fn valid_blkmov_passes() {
        let (mut prog, pt) = point_program();
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
        let buf = fb.var(VarDecl::new("bcomm1", Ty::Struct(pt)));
        fb.blkmov(BlkDir::RemoteToLocal, p, buf);
        fb.ret(None);
        let id = prog.add_function(fb.finish());
        validate_function(&prog, id).unwrap();
    }

    #[test]
    fn cond_with_struct_var_rejected() {
        let (mut prog, pt) = point_program();
        let mut f = Function::new("f", None);
        let s = f.add_var(VarDecl::new("s", Ty::Struct(pt)));
        let l0 = f.fresh_label();
        let l1 = f.fresh_label();
        let l2 = f.fresh_label();
        f.body = Stmt {
            label: l0,
            kind: StmtKind::Seq(vec![Stmt {
                label: l1,
                kind: StmtKind::While {
                    cond: Cond::new(BinOp::Ne, Operand::Var(s), Operand::int(0)),
                    body: Box::new(Stmt {
                        label: l2,
                        kind: StmtKind::Seq(vec![]),
                    }),
                },
            }]),
        };
        let id = prog.add_function(f);
        assert!(validate_function(&prog, id).is_err());
    }

    #[test]
    fn error_display_includes_function() {
        let e = ValidateError {
            func: Some("foo".into()),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "in function `foo`: boom");
    }

    #[test]
    fn diagnostics_name_the_function() {
        let (mut prog, _) = point_program();
        let mut fb = FunctionBuilder::new("culprit", None);
        let c = fb.var(VarDecl::new("c", Ty::Int));
        fb.atomic_add(c, Operand::int(1));
        prog.add_function(fb.finish());
        let diags = validate_program_diags(&prog);
        assert_eq!(diags[0].func.as_deref(), Some("culprit"));
    }
}
