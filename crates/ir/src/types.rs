//! Type system of the SIMPLE IR.
//!
//! The IR is deliberately small: scalar `int` and `double`, pointers to
//! struct types, and struct types themselves (used only for local block-move
//! buffers and struct-typed variables). Nested struct fields from the source
//! language are flattened by the frontend, so every field of an IR struct is
//! a scalar or a pointer and occupies exactly one machine word. This mirrors
//! the EARTH-MANNA view where `blkmov` cost is counted in words.

use std::fmt;

/// Identifies a struct type within a [`Program`](crate::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructId(pub u32);

/// Identifies a field within its [`StructDef`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u32);

impl StructId {
    /// Zero-based index into [`Program::structs`](crate::Program::structs).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FieldId {
    /// Zero-based index into [`StructDef::fields`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct#{}", self.0)
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field#{}", self.0)
    }
}

/// A type in the SIMPLE IR.
///
/// Booleans are represented as `Int` (zero = false). Characters are not
/// modelled; the Olden benchmarks reproduced here do not need them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer (one machine word).
    Int,
    /// 64-bit IEEE double (one machine word).
    Double,
    /// Pointer to a heap-allocated struct (one machine word).
    Ptr(StructId),
    /// A struct value held directly in a variable. Only used for local
    /// block-move buffers (`bcomm` in the paper) and by-value struct locals.
    Struct(StructId),
}

impl Ty {
    /// Whether this is a pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Whether this is a struct value type.
    pub fn is_struct(self) -> bool {
        matches!(self, Ty::Struct(_))
    }

    /// The struct referred to by a pointer or struct type, if any.
    pub fn struct_id(self) -> Option<StructId> {
        match self {
            Ty::Ptr(s) | Ty::Struct(s) => Some(s),
            _ => None,
        }
    }

    /// Whether a value of this type occupies exactly one machine word.
    pub fn is_word(self) -> bool {
        !self.is_struct()
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Double => write!(f, "double"),
            Ty::Ptr(s) => write!(f, "{s}*"),
            Ty::Struct(s) => write!(f, "{s}"),
        }
    }
}

/// A field of a struct type. Always one word wide (scalars and pointers
/// only; the frontend flattens nested structs).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    /// Source-level name (possibly a flattened path such as `D_P`).
    pub name: String,
    /// Field type; never [`Ty::Struct`].
    pub ty: Ty,
}

/// A struct type definition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StructDef {
    /// Source-level struct name.
    pub name: String,
    /// Ordered fields; field order defines the memory layout used by
    /// block moves.
    pub fields: Vec<FieldDef>,
}

impl StructDef {
    /// Creates an empty struct definition with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        StructDef {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Appends a field and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is a struct value type; fields must be one word wide.
    pub fn add_field(&mut self, name: impl Into<String>, ty: Ty) -> FieldId {
        assert!(!ty.is_struct(), "struct-typed fields must be flattened");
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(FieldDef {
            name: name.into(),
            ty,
        });
        id
    }

    /// Looks a field up by name.
    pub fn field_by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u32))
    }

    /// The field definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn field(&self, id: FieldId) -> &FieldDef {
        &self.fields[id.index()]
    }

    /// Size of the struct in machine words (= number of flattened fields).
    pub fn size_words(&self) -> usize {
        self.fields.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_fields_round_trip() {
        let mut s = StructDef::new("Point");
        let x = s.add_field("x", Ty::Double);
        let y = s.add_field("y", Ty::Double);
        assert_eq!(s.field_by_name("x"), Some(x));
        assert_eq!(s.field_by_name("y"), Some(y));
        assert_eq!(s.field_by_name("z"), None);
        assert_eq!(s.field(x).name, "x");
        assert_eq!(s.size_words(), 2);
    }

    #[test]
    fn ty_predicates() {
        let p = Ty::Ptr(StructId(0));
        assert!(p.is_ptr());
        assert!(!p.is_struct());
        assert!(p.is_word());
        assert_eq!(p.struct_id(), Some(StructId(0)));
        assert!(Ty::Struct(StructId(1)).is_struct());
        assert!(!Ty::Struct(StructId(1)).is_word());
        assert_eq!(Ty::Int.struct_id(), None);
        assert!(Ty::Double.is_word());
    }

    #[test]
    #[should_panic(expected = "flattened")]
    fn struct_field_of_struct_type_panics() {
        let mut s = StructDef::new("Bad");
        s.add_field("inner", Ty::Struct(StructId(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::Ptr(StructId(3)).to_string(), "struct#3*");
        assert_eq!(FieldId(2).to_string(), "field#2");
    }
}
