//! Provenance-stable statement **site identifiers**.
//!
//! A [`SiteId`] names a statement by its *position in the statement tree*:
//! the owning [`FuncId`] plus the child-index path from the function body
//! root down to the node. Unlike a [`Label`] — which is an allocation-order
//! artifact of whoever built the IR — a path only depends on the shape of
//! the tree, so two compilations that reach the same IR shape assign the
//! same `SiteId` to the same source statement.
//!
//! # Stability argument
//!
//! Profile-guided optimization records per-site counters in one compile and
//! consumes them in a later compile of the same program. For the feedback to
//! land on the right statements, `SiteId`s must agree across the two
//! compiles. They do, because:
//!
//! 1. sites are assigned at a fixed pipeline point — after the deterministic
//!    pre-passes (inline, field-reorder, locality) and *before* communication
//!    selection rewrites the tree — so both compiles see the same tree, and
//! 2. the path encoding below is a pure function of that tree: no label
//!    counters, no hash ordering, no allocation order.
//!
//! Statements inserted later (by communication selection) get fresh labels
//! with no assigned site and are simply unprofiled; original statements keep
//! their labels, so the `Label → SiteId` map survives optimization.
//!
//! # Path encoding
//!
//! | parent | child | index |
//! |---|---|---|
//! | `Seq` / `ParSeq` | i-th element | `i` |
//! | `If` | then / else | `0` / `1` |
//! | `Switch` | case i / default | `i` / `#cases` |
//! | `While` / `DoWhile` | body | `0` |
//! | `Forall` | init / step / body | `0` / `1` / `2` |
//!
//! The body root has the empty path, printed `f3:` for function 3; a nested
//! site prints as `f3:0.2.1`.

use crate::func::{FuncId, Function, Program};
use crate::stmt::{Label, Stmt, StmtKind};
use std::collections::BTreeMap;
use std::fmt;

/// A provenance-stable statement identifier: function + tree path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId {
    /// The function whose body contains the site.
    pub func: FuncId,
    /// Child indices from the body root to the statement (empty = the root).
    pub path: Vec<u32>,
}

impl SiteId {
    /// Builds a site id from its parts.
    pub fn new(func: FuncId, path: Vec<u32>) -> Self {
        SiteId { func, path }
    }

    /// Parses the [`Display`](fmt::Display) form (`"f3:0.2.1"`, `"f0:"`).
    pub fn parse(s: &str) -> Option<SiteId> {
        let rest = s.strip_prefix('f')?;
        let (func, path) = rest.split_once(':')?;
        let func = FuncId(func.parse().ok()?);
        let path = if path.is_empty() {
            Vec::new()
        } else {
            path.split('.')
                .map(|p| p.parse().ok())
                .collect::<Option<Vec<u32>>>()?
        };
        Some(SiteId { func, path })
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:", self.func.0)?;
        for (i, p) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// The `Label → SiteId` assignment for one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteMap {
    map: BTreeMap<Label, SiteId>,
}

impl SiteMap {
    /// The site of the statement labelled `label`, if one was assigned.
    pub fn get(&self, label: Label) -> Option<&SiteId> {
        self.map.get(&label)
    }

    /// Number of assigned sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no sites were assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(Label, SiteId)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &SiteId)> + '_ {
        self.map.iter().map(|(l, s)| (*l, s))
    }
}

/// Assigns a [`SiteId`] to every statement node of `f`'s body.
///
/// When the body contains duplicate labels (invalid IR — see validator check
/// `IR010`), the *first* pre-order occurrence wins, keeping the result
/// deterministic; use [`duplicate_site_labels`] to detect the conflict.
pub fn assign_sites(func: FuncId, f: &Function) -> SiteMap {
    let mut map = BTreeMap::new();
    let mut path = Vec::new();
    visit(func, &f.body, &mut path, &mut |label, site| {
        map.entry(label).or_insert(site);
    });
    SiteMap { map }
}

/// Labels that occur at more than one tree position, each with the first two
/// conflicting site paths. A non-empty result means `SiteId`s for those
/// labels are *unstable*: a profile keyed by them cannot be attributed.
pub fn duplicate_site_labels(func: FuncId, f: &Function) -> Vec<(Label, SiteId, SiteId)> {
    let mut first: BTreeMap<Label, SiteId> = BTreeMap::new();
    let mut dups: BTreeMap<Label, (SiteId, SiteId)> = BTreeMap::new();
    let mut path = Vec::new();
    visit(func, &f.body, &mut path, &mut |label, site| {
        if let Some(prev) = first.get(&label) {
            dups.entry(label).or_insert((prev.clone(), site));
        } else {
            first.insert(label, site);
        }
    });
    dups.into_iter().map(|(l, (a, b))| (l, a, b)).collect()
}

fn visit(func: FuncId, s: &Stmt, path: &mut Vec<u32>, record: &mut dyn FnMut(Label, SiteId)) {
    record(s.label, SiteId::new(func, path.clone()));
    let mut child = |i: u32, s: &Stmt, record: &mut dyn FnMut(Label, SiteId)| {
        path.push(i);
        visit(func, s, path, record);
        path.pop();
    };
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            for (i, s) in ss.iter().enumerate() {
                child(i as u32, s, record);
            }
        }
        StmtKind::Basic(_) => {}
        StmtKind::If { then_s, else_s, .. } => {
            child(0, then_s, record);
            child(1, else_s, record);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (i, (_, s)) in cases.iter().enumerate() {
                child(i as u32, s, record);
            }
            child(cases.len() as u32, default, record);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => {
            child(0, body, record);
        }
        StmtKind::Forall {
            init, step, body, ..
        } => {
            child(0, init, record);
            child(1, step, record);
            child(2, body, record);
        }
    }
}

/// Per-function [`SiteMap`]s for a whole program, indexable by [`FuncId`].
#[derive(Debug, Clone, Default)]
pub struct ProgramSites {
    per_func: Vec<SiteMap>,
}

impl ProgramSites {
    /// The site of `label` in function `func`, if assigned.
    pub fn get(&self, func: FuncId, label: Label) -> Option<&SiteId> {
        self.per_func.get(func.index()).and_then(|m| m.get(label))
    }

    /// The whole map for one function.
    pub fn function(&self, func: FuncId) -> Option<&SiteMap> {
        self.per_func.get(func.index())
    }

    /// Total number of assigned sites across all functions.
    pub fn len(&self) -> usize {
        self.per_func.iter().map(SiteMap::len).sum()
    }

    /// Whether no sites were assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Assigns sites for every function of `prog`.
pub fn assign_program_sites(prog: &Program) -> ProgramSites {
    ProgramSites {
        per_func: prog
            .iter_functions()
            .map(|(fid, f)| assign_sites(fid, f))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{Basic, BinOp, Cond, Operand};

    fn mk(label: u32, kind: StmtKind) -> Stmt {
        Stmt {
            label: Label(label),
            kind,
        }
    }

    fn ret(label: u32) -> Stmt {
        mk(label, StmtKind::Basic(Basic::Return(None)))
    }

    fn cond() -> Cond {
        Cond::new(BinOp::Lt, Operand::int(0), Operand::int(1))
    }

    #[test]
    fn display_parse_round_trip() {
        for s in [
            SiteId::new(FuncId(3), vec![0, 2, 1]),
            SiteId::new(FuncId(0), vec![]),
            SiteId::new(FuncId(17), vec![5]),
        ] {
            assert_eq!(SiteId::parse(&s.to_string()), Some(s));
        }
        assert_eq!(SiteId::parse("nope"), None);
        assert_eq!(SiteId::parse("f3"), None);
        assert_eq!(SiteId::parse("f3:0..1"), None);
    }

    #[test]
    fn paths_follow_tree_shape() {
        let mut f = Function::new("g", None);
        // { if (c) { return } else { } ; while (c) { return } }
        f.body = mk(
            0,
            StmtKind::Seq(vec![
                mk(
                    1,
                    StmtKind::If {
                        cond: cond(),
                        then_s: Box::new(ret(2)),
                        else_s: Box::new(mk(3, StmtKind::Seq(vec![]))),
                    },
                ),
                mk(
                    4,
                    StmtKind::While {
                        cond: cond(),
                        body: Box::new(ret(5)),
                    },
                ),
            ]),
        );
        f.sync_label_counter();
        let sites = assign_sites(FuncId(7), &f);
        assert_eq!(sites.len(), 6);
        assert_eq!(sites.get(Label(0)).unwrap().to_string(), "f7:");
        assert_eq!(sites.get(Label(2)).unwrap().to_string(), "f7:0.0");
        assert_eq!(sites.get(Label(3)).unwrap().to_string(), "f7:0.1");
        assert_eq!(sites.get(Label(5)).unwrap().to_string(), "f7:1.0");
    }

    #[test]
    fn sites_independent_of_label_numbering() {
        // The same shape with a different label allocation order must yield
        // the same set of site paths.
        let shape = |l: [u32; 3]| {
            let mut f = Function::new("g", None);
            f.body = mk(l[0], StmtKind::Seq(vec![ret(l[1]), ret(l[2])]));
            f.sync_label_counter();
            f
        };
        let a = assign_sites(FuncId(0), &shape([0, 1, 2]));
        let b = assign_sites(FuncId(0), &shape([9, 4, 7]));
        let paths = |m: &SiteMap| {
            let mut v: Vec<_> = m.iter().map(|(_, s)| s.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(paths(&a), paths(&b));
    }

    #[test]
    fn duplicate_labels_detected() {
        let mut f = Function::new("g", None);
        f.body = mk(0, StmtKind::Seq(vec![ret(1), ret(1)]));
        f.sync_label_counter();
        let dups = duplicate_site_labels(FuncId(2), &f);
        assert_eq!(dups.len(), 1);
        let (l, a, b) = &dups[0];
        assert_eq!(*l, Label(1));
        assert_eq!(a.to_string(), "f2:0");
        assert_eq!(b.to_string(), "f2:1");
        // assign_sites keeps the first occurrence.
        let sites = assign_sites(FuncId(2), &f);
        assert_eq!(sites.get(Label(1)).unwrap().to_string(), "f2:0");
    }

    #[test]
    fn program_sites_cover_all_functions() {
        let mut p = Program::new();
        let mut f = Function::new("a", None);
        f.body = ret(0);
        p.add_function(f);
        let mut g = Function::new("b", None);
        g.body = mk(0, StmtKind::Seq(vec![ret(1)]));
        p.add_function(g);
        let sites = assign_program_sites(&p);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites.get(FuncId(1), Label(1)).unwrap().to_string(), "f1:0");
        assert!(sites.get(FuncId(0), Label(9)).is_none());
    }
}
