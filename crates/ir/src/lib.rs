//! # earth-ir — the McCAT SIMPLE intermediate representation
//!
//! This crate defines the compositional intermediate representation used by
//! the reproduction of Zhu & Hendren, *Communication Optimizations for
//! Parallel C Programs* (PLDI 1998).
//!
//! SIMPLE programs are trees of structured statements — there is no
//! control-flow graph and no `goto` (the original compiler ran
//! goto-elimination first). Basic statements are in three-address form and
//! contain **at most one** potentially-remote memory operation, which is the
//! invariant the paper's possible-placement analysis is built on.
//!
//! The crate provides:
//!
//! * the IR data types ([`Program`], [`Function`], [`Stmt`], [`Basic`], ...),
//! * a fluent [`builder`] API used by tests and generated workloads,
//! * a [`pretty`]-printer whose output mirrors the paper's listings
//!   (potentially-remote dereferences are printed `p~>f`),
//! * a [`validate`] pass that checks the SIMPLE invariants.
//!
//! # Examples
//!
//! Build the `distance` function of the paper's Figure 3 and print it:
//!
//! ```
//! use earth_ir::builder::FunctionBuilder;
//! use earth_ir::{pretty, BinOp, Builtin, Operand, Program, StructDef, Ty, VarDecl};
//!
//! let mut prog = Program::new();
//! let mut point = StructDef::new("Point");
//! let fx = point.add_field("x", Ty::Double);
//! let fy = point.add_field("y", Ty::Double);
//! let pt = prog.add_struct(point);
//!
//! let mut fb = FunctionBuilder::new("distance", Some(Ty::Double));
//! let p = fb.param(VarDecl::new("p", Ty::Ptr(pt)));
//! let (t1, t3, t4, t6, t7, d) = (
//!     fb.temp(Ty::Double), fb.temp(Ty::Double), fb.temp(Ty::Double),
//!     fb.temp(Ty::Double), fb.temp(Ty::Double), fb.temp(Ty::Double),
//! );
//! fb.load_deref(t1, p, fx);
//! fb.binop(t3, BinOp::Mul, Operand::Var(t1), Operand::Var(t1));
//! fb.load_deref(t4, p, fy);
//! fb.binop(t6, BinOp::Mul, Operand::Var(t4), Operand::Var(t4));
//! fb.binop(t7, BinOp::Add, Operand::Var(t3), Operand::Var(t6));
//! fb.builtin(d, Builtin::Sqrt, vec![Operand::Var(t7)]);
//! fb.ret(Some(Operand::Var(d)));
//! prog.add_function(fb.finish());
//!
//! let listing = pretty::print_program(&prog);
//! assert!(listing.contains("p~>x")); // a remote read
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod diag;
pub mod func;
pub mod json;
pub mod pretty;
pub mod rules;
pub mod site;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod var;

pub use diag::{DiagLabel, Diagnostic, Severity};
pub use func::{FuncId, Function, Program};
pub use rules::{lookup as rule_lookup, RuleDoc, RULES};
pub use site::{assign_program_sites, assign_sites, ProgramSites, SiteId, SiteMap};
pub use stmt::{
    AtTarget, Basic, BinOp, BlkDir, Builtin, Cond, Const, DerefAccess, Label, MemRef, Operand,
    Place, Rvalue, Stmt, StmtKind, UnOp,
};
pub use types::{FieldDef, FieldId, StructDef, StructId, Ty};
pub use validate::{
    validate_function, validate_function_diags, validate_program, validate_program_diags,
    ValidateError,
};
pub use var::{Locality, VarDecl, VarId, VarOrigin};
