//! Variables and their EARTH-C qualifiers.

use crate::types::Ty;
use std::fmt;

/// Identifies a variable (parameter, local, or compiler temporary) within
/// its enclosing [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Zero-based index into the function's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Locality of a pointer variable, as known to the compiler.
///
/// In EARTH-C, direct references to parameters and locals are always local,
/// but an *indirect* reference `p->f` is a remote memory operation unless
/// `p` is declared (or inferred by locality analysis) to be a `local`
/// pointer. Non-pointer variables are always [`Locality::Local`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Locality {
    /// Dereferences through this pointer are local memory accesses.
    Local,
    /// Dereferences through this pointer may touch remote memory and must be
    /// compiled to EARTH split-phase operations.
    #[default]
    MaybeRemote,
}

/// How a variable was introduced; affects pretty-printing and lets the
/// optimizer distinguish its own temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarOrigin {
    /// Written by the programmer.
    #[default]
    Source,
    /// Introduced by the simplifier (`temp1`, `temp2`, ... in the paper).
    SimplifyTemp,
    /// Communication temporary introduced by communication selection
    /// (`comm1`, `comm2`, ...).
    CommTemp,
    /// Local block-move buffer introduced by blocking (`bcomm1`, ...).
    BlockBuffer,
}

/// A variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Source-level (or generated) name.
    pub name: String,
    /// The variable's type.
    pub ty: Ty,
    /// Locality qualifier; meaningful only for pointers.
    pub locality: Locality,
    /// Whether this is an EARTH-C `shared` variable (accessed via atomic
    /// operations, visible to concurrently running threads).
    pub shared: bool,
    /// Provenance of the variable.
    pub origin: VarOrigin,
}

impl VarDecl {
    /// Declares an ordinary (non-shared) variable with default locality.
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        VarDecl {
            name: name.into(),
            ty,
            locality: Locality::default(),
            shared: false,
            origin: VarOrigin::Source,
        }
    }

    /// Declares a `local`-qualified pointer.
    pub fn local(name: impl Into<String>, ty: Ty) -> Self {
        VarDecl {
            locality: Locality::Local,
            ..VarDecl::new(name, ty)
        }
    }

    /// Declares a `shared` variable.
    pub fn shared(name: impl Into<String>, ty: Ty) -> Self {
        VarDecl {
            shared: true,
            ..VarDecl::new(name, ty)
        }
    }

    /// Whether a dereference through this variable is a (potentially)
    /// remote memory operation.
    pub fn deref_is_remote(&self) -> bool {
        self.ty.is_ptr() && self.locality == Locality::MaybeRemote
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StructId;

    #[test]
    fn remote_deref_logic() {
        let p = VarDecl::new("p", Ty::Ptr(StructId(0)));
        assert!(p.deref_is_remote());
        let q = VarDecl::local("q", Ty::Ptr(StructId(0)));
        assert!(!q.deref_is_remote());
        let i = VarDecl::new("i", Ty::Int);
        assert!(!i.deref_is_remote());
    }

    #[test]
    fn shared_flag() {
        let c = VarDecl::shared("count", Ty::Int);
        assert!(c.shared);
        assert!(!c.deref_is_remote());
    }
}
