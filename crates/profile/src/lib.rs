//! # earth-profile — execution profiles for profile-guided optimization
//!
//! The static communication optimizer guesses execution frequencies: every
//! `if` arm is taken half the time, every loop body runs
//! `loop_factor` times. This crate replaces the guesses with *measured*
//! counts. A program compiled with
//! [`record_sites`](earth_sim::CodegenOptions) attributes every remote
//! memory operation and branch to a provenance-stable [`SiteId`]; the
//! simulator's [`SiteTrace`] is folded into a [`Profile`] — a map from
//! `SiteId` to event counters — which can be serialized, merged across
//! runs, and fed back into placement and selection through a
//! [`ProfileDb`].
//!
//! # Determinism
//!
//! Profiles are ordered maps written with a canonical JSON encoding, so
//! equal profiles serialize to identical bytes. [`Profile::merge`] is
//! pointwise saturating addition: commutative, associative, with the empty
//! profile as identity (property-tested). Event counters (`execs`,
//! `bytes`, `taken`, `not_taken`) depend only on the program, not on the
//! machine configuration; only `stall_ns` is timing-sensitive, and
//! [`Profile::canonical`] strips it for cross-configuration comparison.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use earth_ir::json;
use earth_ir::{assign_sites, FuncId, Function, Label, SiteId};
pub use earth_sim::SiteCounters;
use earth_sim::{CompiledProgram, SiteTrace};
use std::collections::BTreeMap;
use std::fmt;

/// Current on-disk format version, written to and required in the JSON.
pub const FORMAT_VERSION: u64 = 1;

/// An execution profile: event counters keyed by stable statement site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    sites: BTreeMap<SiteId, SiteCounters>,
}

impl Profile {
    /// An empty profile (the identity of [`merge`](Profile::merge)).
    pub fn new() -> Self {
        Profile::default()
    }

    /// Adds `counters` into the entry for `site`.
    pub fn record(&mut self, site: SiteId, counters: SiteCounters) {
        if !counters.is_zero() {
            *self.sites.entry(site).or_default() += counters;
        }
    }

    /// The counters recorded for `site`, if any.
    pub fn get(&self, site: &SiteId) -> Option<&SiteCounters> {
        self.sites.get(site)
    }

    /// Number of sites with recorded events.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates `(site, counters)` in site order.
    pub fn iter(&self) -> impl Iterator<Item = (&SiteId, &SiteCounters)> + '_ {
        self.sites.iter()
    }

    /// Sum of all counters across sites.
    pub fn total(&self) -> SiteCounters {
        let mut acc = SiteCounters::default();
        for c in self.sites.values() {
            acc += *c;
        }
        acc
    }

    /// Folds another profile into this one (pointwise addition). Merging
    /// is commutative and associative, with [`Profile::new`] as identity,
    /// so per-node or per-run profiles can be combined in any order with
    /// an identical result.
    pub fn merge(&mut self, other: &Profile) {
        for (site, c) in &other.sites {
            self.record(site.clone(), *c);
        }
    }

    /// This profile with timing-dependent counters (`stall_ns`) zeroed.
    /// Canonical profiles of the same program are byte-identical across
    /// machine configurations (node counts), because the remaining
    /// counters only depend on what the program executed.
    pub fn canonical(&self) -> Profile {
        let mut p = Profile::new();
        for (site, c) in &self.sites {
            p.record(site.clone(), SiteCounters { stall_ns: 0, ..*c });
        }
        p
    }

    /// Collects one profile per node from a run's [`SiteTrace`]. The trace
    /// indexes sites positionally; `prog.site_table` maps them back to
    /// stable [`SiteId`]s.
    pub fn per_node(prog: &CompiledProgram, trace: &SiteTrace) -> Vec<Profile> {
        let nodes = trace.per_site.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = vec![Profile::new(); nodes];
        for (idx, per_node) in trace.per_site.iter().enumerate() {
            for (node, c) in per_node.iter().enumerate() {
                out[node].record(prog.site_table[idx].clone(), *c);
            }
        }
        out
    }

    /// Collects the whole-run profile (all nodes merged).
    pub fn from_trace(prog: &CompiledProgram, trace: &SiteTrace) -> Profile {
        let mut p = Profile::new();
        for (idx, per_node) in trace.per_site.iter().enumerate() {
            for c in per_node {
                p.record(prog.site_table[idx].clone(), *c);
            }
        }
        p
    }

    /// Serializes to the canonical JSON encoding: keys in site order, no
    /// whitespace, every counter field present. Equal profiles produce
    /// byte-identical output.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.sites.len() * 80);
        s.push_str("{\"version\":");
        s.push_str(&FORMAT_VERSION.to_string());
        s.push_str(",\"sites\":{");
        for (i, (site, c)) in self.sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            use std::fmt::Write;
            json::push_string(&mut s, &site.to_string());
            let _ = write!(
                s,
                ":{{\"execs\":{},\"bytes\":{},\"stall_ns\":{},\"taken\":{},\"not_taken\":{}}}",
                c.execs, c.bytes, c.stall_ns, c.taken, c.not_taken
            );
        }
        s.push_str("}}");
        s
    }

    /// Parses the JSON encoding produced by [`to_json`](Profile::to_json)
    /// (whitespace and key order are tolerated).
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] describing the first syntax problem,
    /// unknown key, or version mismatch.
    pub fn from_json(text: &str) -> Result<Profile, ProfileError> {
        let err = |message: String| ProfileError { pos: 0, message };
        let v = json::parse(text).map_err(ProfileError::from)?;
        let top = v.as_object("profile").map_err(ProfileError::from)?;
        let mut profile = Profile::new();
        let mut version = None;
        for (key, val) in top {
            match key.as_str() {
                "version" => {
                    version = Some(val.as_u64("`version`").map_err(ProfileError::from)?);
                }
                "sites" => {
                    let sites = val.as_object("`sites`").map_err(ProfileError::from)?;
                    for (site_key, counters) in sites {
                        let site = SiteId::parse(site_key)
                            .ok_or_else(|| err(format!("invalid site id `{site_key}`")))?;
                        let fields = counters
                            .as_object("site counters")
                            .map_err(ProfileError::from)?;
                        let mut c = SiteCounters::default();
                        for (name, value) in fields {
                            let n = value
                                .as_u64(&format!("counter `{name}`"))
                                .map_err(ProfileError::from)?;
                            match name.as_str() {
                                "execs" => c.execs = n,
                                "bytes" => c.bytes = n,
                                "stall_ns" => c.stall_ns = n,
                                "taken" => c.taken = n,
                                "not_taken" => c.not_taken = n,
                                other => return Err(err(format!("unknown counter `{other}`"))),
                            }
                        }
                        profile.record(site, c);
                    }
                }
                other => return Err(err(format!("unknown key `{other}`"))),
            }
        }
        match version {
            Some(FORMAT_VERSION) => Ok(profile),
            Some(v) => Err(err(format!(
                "unsupported profile version {v} (expected {FORMAT_VERSION})"
            ))),
            None => Err(err("missing `version` field".into())),
        }
    }
}

/// A malformed profile encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// Byte offset of the problem in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile parse error at byte {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for ProfileError {}

impl From<json::JsonError> for ProfileError {
    fn from(e: json::JsonError) -> Self {
        ProfileError {
            pos: e.offset.unwrap_or(0),
            message: e.message,
        }
    }
}

/// The feedback side: measured frequencies and volumes looked up by the
/// optimizer. Wraps a merged [`Profile`] and answers the questions
/// placement and selection actually ask — how often does this branch go
/// each way, how many times does this loop iterate per entry, how hot is
/// this statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileDb {
    profile: Profile,
}

impl ProfileDb {
    /// Builds a database over a merged profile.
    pub fn new(profile: Profile) -> Self {
        ProfileDb { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Raw counters for a site.
    pub fn get(&self, site: &SiteId) -> Option<&SiteCounters> {
        self.profile.get(site)
    }

    /// Resolves this function's statement labels against the profile.
    /// Site assignment here must see the same tree shape the instrumented
    /// compile saw (see [`earth_ir::site`] for the stability argument).
    pub fn function_view(&self, func: FuncId, f: &Function) -> FuncProfile {
        let mut by_label = BTreeMap::new();
        let mut matched = 0usize;
        for (label, site) in assign_sites(func, f).iter() {
            if let Some(c) = self.profile.get(site) {
                matched += 1;
                by_label.insert(label, *c);
            }
        }
        FuncProfile { by_label, matched }
    }
}

/// A [`ProfileDb`] resolved against one function's labels, so the
/// optimizer can query by the [`Label`]s it already holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncProfile {
    by_label: BTreeMap<Label, SiteCounters>,
    matched: usize,
}

impl FuncProfile {
    /// Counters for the statement labelled `label`, if profiled.
    pub fn get(&self, label: Label) -> Option<&SiteCounters> {
        self.by_label.get(&label)
    }

    /// How many of the function's sites had profile entries (used for
    /// the `sites_matched` feedback counter).
    pub fn matched(&self) -> usize {
        self.matched
    }

    /// Whether no sites matched.
    pub fn is_empty(&self) -> bool {
        self.by_label.is_empty()
    }

    /// Measured probability that the branch at `label` was taken
    /// (then-arm / loop-continue), if its branch executed at all.
    pub fn branch_prob(&self, label: Label) -> Option<f64> {
        let c = self.by_label.get(&label)?;
        let n = c.taken + c.not_taken;
        if n == 0 {
            return None;
        }
        Some(c.taken as f64 / n as f64)
    }

    /// Measured mean iterations per loop entry for the loop at `label`.
    /// Each entry eventually exits once (`not_taken`), and every body
    /// iteration re-takes the back edge (`taken`).
    pub fn loop_trips(&self, label: Label) -> Option<f64> {
        let c = self.by_label.get(&label)?;
        if c.taken + c.not_taken == 0 {
            return None;
        }
        Some(c.taken as f64 / (c.not_taken.max(1)) as f64)
    }

    /// Measured executions of the remote operation at `label` (zero if
    /// the statement never ran).
    pub fn execs(&self, label: Label) -> Option<u64> {
        self.by_label.get(&label).map(|c| c.execs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(f: u32, path: &[u32]) -> SiteId {
        SiteId::new(FuncId(f), path.to_vec())
    }

    fn counters(rng: &mut earth_qcheck::Rng) -> SiteCounters {
        SiteCounters {
            execs: rng.range(0, 1000) as u64,
            bytes: rng.range(0, 100_000) as u64,
            stall_ns: rng.range(0, 1_000_000) as u64,
            taken: rng.range(0, 500) as u64,
            not_taken: rng.range(0, 500) as u64,
        }
    }

    fn arbitrary(rng: &mut earth_qcheck::Rng) -> Profile {
        let mut p = Profile::new();
        for _ in 0..rng.index(8) {
            let depth = rng.index(4);
            let path: Vec<u32> = (0..depth).map(|_| rng.range(0, 6) as u32).collect();
            p.record(site(rng.range(0, 4) as u32, &path), counters(rng));
        }
        p
    }

    #[test]
    fn json_round_trips() {
        earth_qcheck::cases(128, |rng| {
            let p = arbitrary(rng);
            let json = p.to_json();
            assert_eq!(Profile::from_json(&json).unwrap(), p);
            // Canonical encoding: serializing again is byte-identical.
            assert_eq!(Profile::from_json(&json).unwrap().to_json(), json);
        });
    }

    #[test]
    fn merge_laws() {
        earth_qcheck::cases(128, |rng| {
            let (a, b, c) = (arbitrary(rng), arbitrary(rng), arbitrary(rng));
            // Commutativity.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba);
            // Associativity.
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc);
            // Identity.
            let mut ae = a.clone();
            ae.merge(&Profile::new());
            assert_eq!(ae, a);
            let mut ea = Profile::new();
            ea.merge(&a);
            assert_eq!(ea, a);
        });
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"version\":2,\"sites\":{}}",
            "{\"version\":1,\"sites\":{\"nope\":{}}}",
            "{\"version\":1,\"sites\":{\"f0:\":{\"mystery\":3}}}",
            "{\"version\":1,\"sites\":{}}x",
        ] {
            assert!(Profile::from_json(bad).is_err(), "accepted: {bad}");
        }
        // Whitespace and key reordering are fine.
        let ok =
            "{ \"sites\" : { \"f0:1\" : { \"taken\" : 2 , \"execs\" : 1 } } , \"version\" : 1 }";
        let p = Profile::from_json(ok).unwrap();
        let c = p.get(&site(0, &[1])).unwrap();
        assert_eq!((c.execs, c.taken, c.bytes), (1, 2, 0));
    }

    #[test]
    fn record_drops_zero_counters() {
        let mut p = Profile::new();
        p.record(site(0, &[]), SiteCounters::default());
        assert!(p.is_empty());
        p.record(
            site(0, &[]),
            SiteCounters {
                execs: 1,
                ..SiteCounters::default()
            },
        );
        assert_eq!(p.len(), 1);
        assert_eq!(p.total().execs, 1);
    }

    #[test]
    fn collect_from_run_and_cross_node_canonical_determinism() {
        let src = r#"
            struct node { node* next; int v; };
            int main() {
                node *head;
                node *n;
                node *p;
                int i;
                int acc;
                head = NULL;
                for (i = 1; i <= 5; i = i + 1) {
                    n = malloc(sizeof(node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                acc = 0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#;
        let prog = earth_frontend::compile(src).unwrap();
        let opts = earth_sim::CodegenOptions {
            record_sites: true,
            ..earth_sim::CodegenOptions::default()
        };
        let compiled = earth_sim::compile(&prog, opts).unwrap();
        let entry = compiled.function_by_name("main").unwrap();
        let run_at = |nodes: u16| {
            let mut m = earth_sim::Machine::new(earth_sim::MachineConfig::with_nodes(nodes));
            m.run(&compiled, entry, &[]).unwrap()
        };
        let r1 = run_at(1);
        let p1 = Profile::from_trace(&compiled, &r1.site_trace);
        assert!(!p1.is_empty());
        // Per-node collection merges to the whole-run profile.
        let mut merged = Profile::new();
        for node in Profile::per_node(&compiled, &r1.site_trace) {
            merged.merge(&node);
        }
        assert_eq!(merged, p1);
        // Event counts are machine-independent: canonical profiles are
        // byte-identical across node counts.
        let r4 = run_at(4);
        let p4 = Profile::from_trace(&compiled, &r4.site_trace);
        assert_eq!(p1.canonical().to_json(), p4.canonical().to_json());
        // The loop site is queryable through the feedback view.
        let db = ProfileDb::new(p1);
        let (fid, f) = prog
            .iter_functions()
            .find(|(_, f)| f.name == "main")
            .unwrap();
        let view = db.function_view(fid, f);
        assert!(view.matched() > 0);
        let mut trip = None;
        f.body.walk(&mut |s| {
            if trip.is_none() && matches!(s.kind, earth_ir::StmtKind::While { .. }) {
                trip = view.loop_trips(s.label);
            }
        });
        let trip = trip.expect("while loop has a measured trip count");
        assert!((trip - 5.0).abs() < 1e-9, "trips = {trip}");
    }
}
