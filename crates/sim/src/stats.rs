//! Communication and execution statistics.

use std::fmt;
use std::ops::AddAssign;

/// Dynamic operation counts and timing collected during a run. The
/// communication categories (`read_data`, `write_data`, `blkmov`) are the
/// ones reported in the paper's Figure 10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Remote word reads issued (the paper's "read-data").
    pub read_data: u64,
    /// Remote word writes issued (the paper's "write-data").
    pub write_data: u64,
    /// Block moves issued, either direction (the paper's "blkmov").
    pub blkmov: u64,
    /// Words carried by block moves (for bandwidth accounting).
    pub blkmov_words: u64,
    /// Remote atomic operations on shared variables.
    pub atomic_remote: u64,
    /// Remote function invocations (`@OWNER_OF` / `@node` to another
    /// node).
    pub remote_calls: u64,
    /// Threads spawned (parallel-sequence arms + forall iterations).
    pub spawns: u64,
    /// Local memory accesses.
    pub local_mem: u64,
    /// Bytecode operations executed.
    pub ops: u64,
    /// Total time threads spent stalled waiting for split-phase results.
    pub stall_ns: u64,
}

impl Stats {
    /// Total remote communication operations (Figure 10's metric).
    pub fn total_comm(&self) -> u64 {
        self.read_data + self.write_data + self.blkmov
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, o: Stats) {
        self.read_data += o.read_data;
        self.write_data += o.write_data;
        self.blkmov += o.blkmov;
        self.blkmov_words += o.blkmov_words;
        self.atomic_remote += o.atomic_remote;
        self.remote_calls += o.remote_calls;
        self.spawns += o.spawns;
        self.local_mem += o.local_mem;
        self.ops += o.ops;
        self.stall_ns += o.stall_ns;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read-data {} | write-data {} | blkmov {} ({} words) | remote-calls {} | atomics {} | spawns {} | ops {}",
            self.read_data,
            self.write_data,
            self.blkmov,
            self.blkmov_words,
            self.remote_calls,
            self.atomic_remote,
            self.spawns,
            self.ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_add() {
        let mut a = Stats {
            read_data: 2,
            write_data: 3,
            blkmov: 1,
            ..Stats::default()
        };
        assert_eq!(a.total_comm(), 6);
        let b = Stats {
            read_data: 1,
            ..Stats::default()
        };
        a += b;
        assert_eq!(a.read_data, 3);
        assert!(a.to_string().contains("read-data 3"));
    }
}
