//! Communication and execution statistics.

use std::fmt;
use std::ops::AddAssign;

/// Dynamic operation counts and timing collected during a run. The
/// communication categories (`read_data`, `write_data`, `blkmov`) are the
/// ones reported in the paper's Figure 10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Remote word reads issued (the paper's "read-data").
    pub read_data: u64,
    /// Remote word writes issued (the paper's "write-data").
    pub write_data: u64,
    /// Block moves issued, either direction (the paper's "blkmov").
    pub blkmov: u64,
    /// Words carried by block moves (for bandwidth accounting).
    pub blkmov_words: u64,
    /// Remote atomic operations on shared variables.
    pub atomic_remote: u64,
    /// Remote function invocations (`@OWNER_OF` / `@node` to another
    /// node).
    pub remote_calls: u64,
    /// Threads spawned (parallel-sequence arms + forall iterations).
    pub spawns: u64,
    /// Local memory accesses.
    pub local_mem: u64,
    /// Bytecode operations executed.
    pub ops: u64,
    /// Total time threads spent stalled waiting for split-phase results.
    pub stall_ns: u64,
}

impl Stats {
    /// Total remote communication operations (Figure 10's metric).
    pub fn total_comm(&self) -> u64 {
        self.read_data + self.write_data + self.blkmov
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, o: Stats) {
        self.read_data += o.read_data;
        self.write_data += o.write_data;
        self.blkmov += o.blkmov;
        self.blkmov_words += o.blkmov_words;
        self.atomic_remote += o.atomic_remote;
        self.remote_calls += o.remote_calls;
        self.spawns += o.spawns;
        self.local_mem += o.local_mem;
        self.ops += o.ops;
        self.stall_ns += o.stall_ns;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read-data {} | write-data {} | blkmov {} ({} words) | remote-calls {} | atomics {} | spawns {} | ops {}",
            self.read_data,
            self.write_data,
            self.blkmov,
            self.blkmov_words,
            self.remote_calls,
            self.atomic_remote,
            self.spawns,
            self.ops
        )
    }
}

/// Event counters for one profile site (one statement) on one node,
/// collected when the program was compiled with
/// [`record_sites`](crate::codegen::CodegenOptions::record_sites).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Executions of the site's instrumented operation (remote memory op
    /// or branch).
    pub execs: u64,
    /// Bytes moved by remote reads/writes/block moves at this site
    /// (8 bytes per word).
    pub bytes: u64,
    /// Nanoseconds the EU stalled on a not-yet-ready input at this site.
    pub stall_ns: u64,
    /// Branch outcomes: condition true (loop continues / then-branch).
    pub taken: u64,
    /// Branch outcomes: condition false (loop exits / else-branch).
    pub not_taken: u64,
}

impl SiteCounters {
    /// Whether nothing was recorded at this site.
    pub fn is_zero(&self) -> bool {
        *self == SiteCounters::default()
    }
}

impl AddAssign for SiteCounters {
    fn add_assign(&mut self, o: SiteCounters) {
        self.execs += o.execs;
        self.bytes += o.bytes;
        self.stall_ns += o.stall_ns;
        self.taken += o.taken;
        self.not_taken += o.not_taken;
    }
}

/// Per-site, per-node counters of one run; `per_site[site][node]` where
/// `site` indexes [`CompiledProgram::site_table`](crate::bytecode::CompiledProgram::site_table).
///
/// Empty when the program was compiled without site recording.
#[derive(Debug, Clone, Default)]
pub struct SiteTrace {
    /// Counters indexed `[site][node]`.
    pub per_site: Vec<Vec<SiteCounters>>,
}

impl SiteTrace {
    /// A trace sized for `sites` sites on `nodes` nodes.
    pub fn sized(sites: usize, nodes: usize) -> Self {
        SiteTrace {
            per_site: vec![vec![SiteCounters::default(); nodes]; sites],
        }
    }

    /// Whether any site recorded any event.
    pub fn any_events(&self) -> bool {
        self.per_site
            .iter()
            .any(|ns| ns.iter().any(|c| !c.is_zero()))
    }

    /// Sums a site's counters across nodes.
    pub fn site_total(&self, site: usize) -> SiteCounters {
        let mut acc = SiteCounters::default();
        for c in &self.per_site[site] {
            acc += *c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_counters_add_and_total() {
        let mut t = SiteTrace::sized(2, 2);
        t.per_site[1][0].execs = 3;
        t.per_site[1][0].bytes = 24;
        t.per_site[1][1].execs = 2;
        assert!(t.any_events());
        let total = t.site_total(1);
        assert_eq!(total.execs, 5);
        assert_eq!(total.bytes, 24);
        assert!(t.site_total(0).is_zero());
        assert!(!SiteTrace::default().any_events());
    }

    #[test]
    fn totals_and_add() {
        let mut a = Stats {
            read_data: 2,
            write_data: 3,
            blkmov: 1,
            ..Stats::default()
        };
        assert_eq!(a.total_comm(), 6);
        let b = Stats {
            read_data: 1,
            ..Stats::default()
        };
        a += b;
        assert_eq!(a.read_data, 3);
        assert!(a.to_string().contains("read-data 3"));
    }
}
