//! Threaded bytecode — the simulator's analogue of the EARTH-McCAT
//! compiler's Phase III output (Threaded-C).
//!
//! Functions are flat instruction sequences over a frame of value slots.
//! Scalar variables occupy one slot; struct-typed variables (block-move
//! buffers) occupy a contiguous range of slots, one per word, so buffer
//! field accesses compile to plain register moves.

use crate::value::Value;
use earth_ir::{BinOp, FuncId, UnOp};

/// A frame slot index.
pub type Slot = u32;

/// A bytecode program counter.
pub type Pc = u32;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Opnd {
    /// Read a frame slot.
    Slot(Slot),
    /// An immediate value.
    Imm(Value),
}

/// Where a call executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CallAt {
    /// On the current node (an ordinary call).
    Local,
    /// On the node owning the object the pointer slot points to.
    OwnerOf(Slot),
    /// On an explicit node id.
    Node(Opnd),
}

/// A threaded bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // operand fields are described on the variants
pub enum Op {
    /// `dst = src`
    Mov { dst: Slot, src: Opnd },
    /// `dst = a <op> b`
    Bin {
        dst: Slot,
        op: BinOp,
        a: Opnd,
        b: Opnd,
    },
    /// `dst = <op> a`
    Un { dst: Slot, op: UnOp, a: Opnd },
    /// Local pointer dereference read; aborts if the address is remote
    /// (validates locality analysis).
    LoadLocal { dst: Slot, ptr: Slot, field: u32 },
    /// Split-phase remote read: issues and continues; `dst` becomes ready
    /// after the read latency.
    LoadRemote { dst: Slot, ptr: Slot, field: u32 },
    /// Local pointer dereference write.
    StoreLocal { ptr: Slot, field: u32, src: Opnd },
    /// Split-phase remote write (fire-and-forget; `fence` observes
    /// completion).
    StoreRemote { ptr: Slot, field: u32, src: Opnd },
    /// Remote block read of `words` words starting at field `off` into
    /// slots `buf+off .. buf+off+words`.
    BlkRead {
        ptr: Slot,
        buf: Slot,
        off: u32,
        words: u32,
    },
    /// Remote block write of slots `buf+off .. buf+off+words` to fields
    /// `off ..` of `*ptr`.
    BlkWrite {
        ptr: Slot,
        buf: Slot,
        off: u32,
        words: u32,
    },
    /// Struct-variable copy: `dst..dst+words = src..src+words`.
    CopySlots { dst: Slot, src: Slot, words: u32 },
    /// Heap allocation of `words` words on `node` (`None` = current node).
    Malloc {
        dst: Slot,
        words: u32,
        node: Option<Opnd>,
    },
    /// Allocate a shared-variable cell on the current node, storing its
    /// address in `dst` (runs at function entry).
    AllocShared { dst: Slot },
    /// Atomic store to the shared cell pointed to by `cell`.
    AtomicWrite { cell: Slot, src: Opnd },
    /// Atomic add to the shared cell pointed to by `cell`.
    AtomicAdd { cell: Slot, src: Opnd },
    /// Atomic read of the shared cell pointed to by `cell`.
    ValueOf { dst: Slot, cell: Slot },
    /// Function call.
    Call {
        dst: Option<Slot>,
        func: FuncId,
        args: Vec<Opnd>,
        at: CallAt,
    },
    /// Built-in invocation.
    Builtin {
        dst: Slot,
        which: earth_ir::Builtin,
        args: Vec<Opnd>,
    },
    /// Return from the current function.
    Ret { val: Option<Opnd> },
    /// Unconditional jump.
    Jmp(Pc),
    /// Conditional branch: jump to `then_pc` when `a <op> b`, else
    /// `else_pc`.
    Br {
        op: BinOp,
        a: Opnd,
        b: Opnd,
        then_pc: Pc,
        else_pc: Pc,
    },
    /// Multi-way dispatch.
    Switch {
        scrut: Opnd,
        table: Vec<(i64, Pc)>,
        default_pc: Pc,
    },
    /// Spawn the arms of a parallel sequence, sharing this frame; resume
    /// at `cont` once every arm has finished.
    Fork { arms: Vec<Pc>, cont: Pc },
    /// Spawn one forall iteration at `body` with a *copy* of the current
    /// frame; increments the thread's outstanding-iteration counter.
    SpawnIter { body: Pc },
    /// Wait until all outstanding forall iterations have finished.
    JoinIters,
    /// Terminate a parallel arm / forall iteration thread.
    EndArm,
}

/// Sentinel site index: the instruction is not attributed to any profile
/// site (sites were not recorded, or the statement was inserted after site
/// assignment).
pub const NO_SITE: u32 = u32::MAX;

/// A compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Source-level name.
    pub name: String,
    /// Instructions; entry point is pc 0.
    pub ops: Vec<Op>,
    /// Total frame slots.
    pub n_slots: u32,
    /// Slots receiving the arguments, in order.
    pub param_slots: Vec<Slot>,
    /// Per-op index into [`CompiledProgram::site_table`] ([`NO_SITE`] when
    /// unattributed); parallel to `ops`. Empty when sites were not
    /// recorded.
    pub site_of: Vec<u32>,
}

/// A compiled program, indexed by [`FuncId`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Compiled functions, parallel to the IR program's function table.
    pub functions: Vec<CompiledFunction>,
    /// Struct sizes in words, parallel to the IR struct table (used by
    /// `malloc` and block moves).
    pub struct_words: Vec<u32>,
    /// Interned statement sites referenced by [`CompiledFunction::site_of`]
    /// (empty unless compiled with
    /// [`record_sites`](crate::codegen::CodegenOptions::record_sites)).
    pub site_table: Vec<earth_ir::SiteId>,
}

impl CompiledProgram {
    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }
}
