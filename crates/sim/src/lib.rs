//! # earth-sim — a discrete-event simulator for EARTH-MANNA
//!
//! The execution substrate for the reproduction of Zhu & Hendren (PLDI
//! 1998). The paper evaluates its communication optimizations on the
//! EARTH-MANNA distributed-memory multithreaded machine; this crate
//! provides a deterministic simulator of that machine:
//!
//! * [`codegen`] lowers SIMPLE IR to threaded bytecode (the analogue of
//!   the compiler's Phase III),
//! * [`machine`] executes the bytecode on a configurable number of nodes
//!   with split-phase remote operations, per-node EUs with ready queues,
//!   thread spawning/joining for `{^ ... ^}` and `forall`, and remote
//!   function invocation for `@OWNER_OF` placement,
//! * [`cost`] holds the timing model calibrated to the paper's Table I,
//! * [`stats`] counts the communication operations reported in Figure 10.
//!
//! # Examples
//!
//! ```
//! use earth_sim::{compile, CodegenOptions, Machine, MachineConfig, Value};
//!
//! let prog = earth_frontend::compile(r#"
//!     struct Point { double x; double y; };
//!     double distance(Point *p) {
//!         double d;
//!         d = sqrt(p->x * p->x + p->y * p->y);
//!         return d;
//!     }
//!     double main() {
//!         Point *p;
//!         p = malloc(sizeof(Point));
//!         p->x = 3.0;
//!         p->y = 4.0;
//!         return distance(p);
//!     }
//! "#).unwrap();
//! let compiled = compile(&prog, CodegenOptions::default()).unwrap();
//! let mut m = Machine::new(MachineConfig::with_nodes(2));
//! let entry = compiled.function_by_name("main").unwrap();
//! let result = m.run(&compiled, entry, &[]).unwrap();
//! assert_eq!(result.ret, Value::Double(5.0));
//! assert!(result.stats.total_comm() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytecode;
pub mod codegen;
pub mod cost;
pub mod ddg;
pub mod machine;
pub mod stats;
pub mod value;

pub use bytecode::{CompiledFunction, CompiledProgram, NO_SITE};
pub use codegen::{compile_program as compile, CodegenError, CodegenOptions};
pub use cost::CostModel;
pub use ddg::{build_ddg, render_fibers, FiberReport};
pub use machine::{Machine, MachineConfig, RunResult, SimError};
pub use stats::{SiteCounters, SiteTrace, Stats};
pub use value::{Addr, NodeId, Value};

use earth_ir::Program;

/// Convenience: compile `prog` and run `entry` with `args` on a machine
/// with `n_nodes` nodes and default costs.
///
/// # Errors
///
/// Propagates [`CodegenError`] (wrapped) and [`SimError`].
pub fn run_program(
    prog: &Program,
    entry: &str,
    args: &[Value],
    n_nodes: u16,
) -> Result<RunResult, SimError> {
    let compiled = compile(prog, CodegenOptions::default()).map_err(|e| SimError {
        time_ns: 0,
        message: e.to_string(),
    })?;
    let fid = compiled.function_by_name(entry).ok_or_else(|| SimError {
        time_ns: 0,
        message: format!("no function named `{entry}`"),
    })?;
    let mut m = Machine::new(MachineConfig::with_nodes(n_nodes));
    m.run(&compiled, fid, args)
}

/// Convenience: run the *pure sequential C* build (every access local, one
/// node) — the paper's "Sequential" baseline column.
///
/// # Errors
///
/// Propagates [`CodegenError`] (wrapped) and [`SimError`].
pub fn run_sequential(prog: &Program, entry: &str, args: &[Value]) -> Result<RunResult, SimError> {
    let compiled = compile(
        prog,
        CodegenOptions {
            force_local: true,
            ..CodegenOptions::default()
        },
    )
    .map_err(|e| SimError {
        time_ns: 0,
        message: e.to_string(),
    })?;
    let fid = compiled.function_by_name(entry).ok_or_else(|| SimError {
        time_ns: 0,
        message: format!("no function named `{entry}`"),
    })?;
    let mut m = Machine::new(MachineConfig::with_nodes(1));
    m.run(&compiled, fid, args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run1(src: &str) -> RunResult {
        let prog = earth_frontend::compile(src).unwrap();
        run_program(&prog, "main", &[], 1).unwrap()
    }

    fn run_n(src: &str, n: u16) -> RunResult {
        let prog = earth_frontend::compile(src).unwrap();
        run_program(&prog, "main", &[], n).unwrap()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let r = run1(
            r#"
            struct S { int x; };
            int main() {
                int i;
                int acc;
                acc = 0;
                for (i = 1; i <= 10; i = i + 1) {
                    if (i % 2 == 0) { acc = acc + i; }
                }
                return acc;
            }
        "#,
        );
        assert_eq!(r.ret, Value::Int(30));
        assert_eq!(r.stats.total_comm(), 0);
    }

    #[test]
    fn linked_list_sum() {
        let r = run1(
            r#"
            struct node { node* next; int v; };
            int main() {
                node *head;
                node *n;
                node *p;
                int i;
                int acc;
                head = NULL;
                for (i = 1; i <= 5; i = i + 1) {
                    n = malloc(sizeof(node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                acc = 0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        );
        assert_eq!(r.ret, Value::Int(15));
        // On one node every remote op is pseudo-remote but still counted.
        assert!(r.stats.read_data > 0);
    }

    #[test]
    fn remote_allocation_and_access() {
        let r = run_n(
            r#"
            struct node { int v; };
            int main() {
                node *p;
                p = malloc_on(1, sizeof(node));
                p->v = 41;
                return p->v + 1;
            }
        "#,
            2,
        );
        assert_eq!(r.ret, Value::Int(42));
        assert_eq!(r.stats.read_data, 1);
        assert_eq!(r.stats.write_data, 1);
    }

    #[test]
    fn owner_of_call_runs_remotely() {
        let r = run_n(
            r#"
            struct node { int v; };
            int where(node local *p) {
                return my_node();
            }
            int main() {
                node *p;
                p = malloc_on(3, sizeof(node));
                return where(p) @ OWNER_OF(p);
            }
        "#,
            4,
        );
        assert_eq!(r.ret, Value::Int(3));
        assert_eq!(r.stats.remote_calls, 1);
    }

    #[test]
    fn locality_violation_detected() {
        let prog = earth_frontend::compile(
            r#"
            struct node { int v; };
            int peek(node local *p) { return p->v; }
            int main() {
                node *p;
                p = malloc_on(1, sizeof(node));
                p->v = 7;
                return peek(p);
            }
        "#,
        )
        .unwrap();
        let e = run_program(&prog, "main", &[], 2).unwrap_err();
        assert!(e.message.contains("locality violation"), "{e}");
    }

    #[test]
    fn parallel_sequence_joins_and_overlaps() {
        let r = run_n(
            r#"
            struct node { int v; };
            int slowpoke(node local *p) {
                int i;
                int acc;
                acc = 0;
                for (i = 0; i < 100; i = i + 1) { acc = acc + p->v; }
                return acc;
            }
            int main() {
                node *a;
                node *b;
                int r1;
                int r2;
                a = malloc_on(1, sizeof(node));
                b = malloc_on(2, sizeof(node));
                a->v = 1;
                b->v = 2;
                {^
                    r1 = slowpoke(a) @ OWNER_OF(a);
                    r2 = slowpoke(b) @ OWNER_OF(b);
                ^}
                return r1 + r2;
            }
        "#,
            3,
        );
        assert_eq!(r.ret, Value::Int(300));
        assert_eq!(r.stats.remote_calls, 2);
        assert_eq!(r.stats.spawns, 2);
    }

    #[test]
    fn parallel_arms_actually_overlap_in_time() {
        // Two remote calls to different nodes in a parallel sequence should
        // take roughly the time of one, not two.
        let work = r#"
            struct node { int v; };
            int work(node local *p) {
                int i;
                int acc;
                acc = 0;
                for (i = 0; i < 1000; i = i + 1) { acc = acc + p->v; }
                return acc;
            }
        "#;
        let src_par = format!(
            "{work}
            int main() {{
                node *a;
                node *b;
                int r1;
                int r2;
                a = malloc_on(1, sizeof(node));
                b = malloc_on(2, sizeof(node));
                a->v = 1;
                b->v = 1;
                {{^
                    r1 = work(a) @ OWNER_OF(a);
                    r2 = work(b) @ OWNER_OF(b);
                ^}}
                return r1 + r2;
            }}"
        );
        let src_seq = format!(
            "{work}
            int main() {{
                node *a;
                node *b;
                int r1;
                int r2;
                a = malloc_on(1, sizeof(node));
                b = malloc_on(2, sizeof(node));
                a->v = 1;
                b->v = 1;
                r1 = work(a) @ OWNER_OF(a);
                r2 = work(b) @ OWNER_OF(b);
                return r1 + r2;
            }}"
        );
        let par = run_n(&src_par, 3);
        let seq = run_n(&src_seq, 3);
        assert_eq!(par.ret, Value::Int(2000));
        assert_eq!(seq.ret, Value::Int(2000));
        assert!(
            (par.time_ns as f64) < 0.7 * seq.time_ns as f64,
            "parallel {} vs sequential {}",
            par.time_ns,
            seq.time_ns
        );
    }

    #[test]
    fn forall_with_shared_counter() {
        let r = run1(
            r#"
            struct node { node* next; int v; };
            int main() {
                node *head;
                node *n;
                node *p;
                int i;
                int total;
                shared int cnt;
                head = NULL;
                for (i = 1; i <= 8; i = i + 1) {
                    n = malloc(sizeof(node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                writeto(&cnt, 0);
                forall (p = head; p != NULL; p = p->next) {
                    addto(&cnt, p->v);
                }
                total = valueof(&cnt);
                return total;
            }
        "#,
        );
        assert_eq!(r.ret, Value::Int(36));
        assert_eq!(r.stats.spawns, 8);
    }

    #[test]
    fn split_phase_reads_overlap() {
        // Two independent remote reads take ~issue+latency, not 2×latency.
        let src = r#"
            struct P { double x; double y; };
            double main() {
                P *p;
                double a;
                double b;
                p = malloc_on(1, sizeof(P));
                p->x = 1.0;
                p->y = 2.0;
                a = p->x;
                b = p->y;
                return a + b;
            }
        "#;
        let r = run_n(src, 2);
        assert_eq!(r.ret, Value::Double(3.0));
        // Both reads were issued before either value was used, so the
        // total stall is roughly one latency, not two.
        assert!(
            r.stats.stall_ns < 9000,
            "expected overlapping reads, stalled {}ns",
            r.stats.stall_ns
        );
    }

    #[test]
    fn dependent_reads_serialize() {
        let src = r#"
            struct N { N* next; int v; };
            int main() {
                N *a;
                N *b;
                N *p;
                a = malloc_on(1, sizeof(N));
                b = malloc_on(1, sizeof(N));
                a->next = b;
                b->v = 9;
                p = a->next;
                return p->v;
            }
        "#;
        let r = run_n(src, 2);
        assert_eq!(r.ret, Value::Int(9));
        // The second read depends on the first: total stall ≥ one latency.
        assert!(r.stats.stall_ns > 5000, "stall {}", r.stats.stall_ns);
    }

    #[test]
    fn sequential_build_has_no_communication() {
        let prog = earth_frontend::compile(
            r#"
            struct node { node* next; int v; };
            int main() {
                node *n;
                n = malloc(sizeof(node));
                n->v = 5;
                return n->v;
            }
        "#,
        )
        .unwrap();
        let r = run_sequential(&prog, "main", &[]).unwrap();
        assert_eq!(r.ret, Value::Int(5));
        assert_eq!(r.stats.total_comm(), 0);
        assert!(r.stats.local_mem > 0);
    }

    #[test]
    fn recursion_works() {
        let r = run1(
            r#"
            struct S { int x; };
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
        "#,
        );
        assert_eq!(r.ret, Value::Int(144));
    }

    #[test]
    fn builtins_work() {
        let r = run1(
            r#"
            struct S { int x; };
            int main() {
                double d;
                int a;
                d = sqrt(16.0) + fabs(0.0 - 2.0);
                a = rand() % 100;
                if (a < 0) { return 0 - 1; }
                if (num_nodes() != 1) { return 0 - 2; }
                if (my_node() != 0) { return 0 - 3; }
                print_int(7);
                return d;
            }
        "#,
        );
        // Dynamic typing: the double expression survives the int return.
        assert_eq!(r.ret, Value::Double(6.0));
        assert_eq!(r.output, vec!["7".to_string()]);
    }

    #[test]
    fn fence_waits_for_writes() {
        let src = r#"
            struct P { int v; };
            int main() {
                P *p;
                int i;
                p = malloc_on(1, sizeof(P));
                p->v = 1;
                i = fence();
                return i;
            }
        "#;
        let r = run_n(src, 2);
        assert_eq!(r.ret, Value::Int(0));
        // The fence stalls until the write latency elapses.
        assert!(r.stats.stall_ns > 3000, "stall {}", r.stats.stall_ns);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = r#"
            struct node { node* next; int v; };
            int main() {
                int i;
                int acc;
                acc = 0;
                for (i = 0; i < 50; i = i + 1) { acc = acc + rand() % 10; }
                return acc;
            }
        "#;
        let a = run1(src);
        let b = run1(src);
        assert_eq!(a.ret, b.ret);
        assert_eq!(a.time_ns, b.time_ns);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn infinite_loop_guard() {
        let prog = earth_frontend::compile(
            r#"
            struct S { int x; };
            int main() {
                int i;
                i = 0;
                while (i < 1) { i = 0; }
                return i;
            }
        "#,
        )
        .unwrap();
        let compiled = compile(&prog, CodegenOptions::default()).unwrap();
        let mut m = Machine::new(MachineConfig {
            max_ops: 10_000,
            ..MachineConfig::default()
        });
        let entry = compiled.function_by_name("main").unwrap();
        let e = m.run(&compiled, entry, &[]).unwrap_err();
        assert!(e.message.contains("budget"), "{e}");
    }

    #[test]
    fn null_local_deref_is_an_error() {
        let prog = earth_frontend::compile(
            r#"
            struct S { int x; };
            int main() {
                S local *p;
                p = NULL;
                return p->x;
            }
        "#,
        )
        .unwrap();
        let e = run_program(&prog, "main", &[], 1).unwrap_err();
        assert!(e.message.contains("NULL"), "{e}");
    }

    #[test]
    fn site_trace_counts_remote_ops_and_branches() {
        let src = r#"
            struct node { node* next; int v; };
            int main() {
                node *head;
                node *n;
                node *p;
                int i;
                int acc;
                head = NULL;
                for (i = 1; i <= 5; i = i + 1) {
                    n = malloc(sizeof(node));
                    n->v = i;
                    n->next = head;
                    head = n;
                }
                acc = 0;
                p = head;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#;
        let prog = earth_frontend::compile(src).unwrap();
        let opts = CodegenOptions {
            record_sites: true,
            ..CodegenOptions::default()
        };
        let compiled = compile(&prog, opts).unwrap();
        let entry = compiled.function_by_name("main").unwrap();
        let mut m = Machine::new(MachineConfig::with_nodes(1));
        let r = m.run(&compiled, entry, &[]).unwrap();
        assert_eq!(r.ret, Value::Int(15));
        assert!(r.site_trace.any_events());
        // Total per-site remote-read executions match the global counter.
        let total_reads: u64 = (0..compiled.site_table.len())
            .map(|s| r.site_trace.site_total(s))
            .map(|c| c.bytes / 8)
            .sum::<u64>();
        assert!(total_reads >= r.stats.read_data + r.stats.write_data);
        // The while loop's branch site saw 5 taken + 1 not-taken.
        let loop_site = (0..compiled.site_table.len())
            .map(|s| r.site_trace.site_total(s))
            .find(|c| c.taken == 5 && c.not_taken == 1);
        assert!(loop_site.is_some(), "no site with 5/1 branch outcomes");
        // Counters (not timing) are identical on a 4-node machine.
        let mut m4 = Machine::new(MachineConfig::with_nodes(4));
        let r4 = m4.run(&compiled, entry, &[]).unwrap();
        for s in 0..compiled.site_table.len() {
            let (a, b) = (r.site_trace.site_total(s), r4.site_trace.site_total(s));
            assert_eq!(
                (a.execs, a.bytes, a.taken, a.not_taken),
                (b.execs, b.bytes, b.taken, b.not_taken),
                "site {s} differs across node counts"
            );
        }
    }

    #[test]
    fn blkmov_round_trip() {
        use earth_ir::builder::FunctionBuilder;
        use earth_ir::{BlkDir, Operand, StructDef, Ty, VarDecl};
        let mut prog = earth_ir::Program::new();
        let mut p3 = StructDef::new("P3");
        let fa = p3.add_field("a", Ty::Int);
        let _fb = p3.add_field("b", Ty::Int);
        let fc = p3.add_field("c", Ty::Int);
        let sid = prog.add_struct(p3);

        let mut fb2 = FunctionBuilder::new("main", Some(Ty::Int));
        let p = fb2.var(VarDecl::new("p", Ty::Ptr(sid)));
        let buf = fb2.var(VarDecl::new("bcomm1", Ty::Struct(sid)));
        let t = fb2.var(VarDecl::new("t", Ty::Int));
        fb2.malloc(p, sid, Some(Operand::int(1)));
        fb2.store_deref(p, fa, Operand::int(10));
        fb2.store_deref(p, fc, Operand::int(32));
        fb2.blkmov(BlkDir::RemoteToLocal, p, buf);
        fb2.load_field(t, buf, fa);
        fb2.store_field(buf, fc, Operand::int(33));
        fb2.blkmov(BlkDir::LocalToRemote, p, buf);
        let t2 = fb2.var(VarDecl::new("t2", Ty::Int));
        fb2.load_deref(t2, p, fc);
        let t3 = fb2.var(VarDecl::new("t3", Ty::Int));
        fb2.binop(t3, earth_ir::BinOp::Add, Operand::Var(t), Operand::Var(t2));
        fb2.ret(Some(Operand::Var(t3)));
        prog.add_function(fb2.finish());
        earth_ir::validate_program(&prog).unwrap();

        let r = run_program(&prog, "main", &[], 2).unwrap();
        assert_eq!(r.ret, Value::Int(43)); // 10 + 33
        assert_eq!(r.stats.blkmov, 2);
        assert_eq!(r.stats.blkmov_words, 6);
    }
}
