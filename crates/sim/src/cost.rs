//! The EARTH-MANNA timing model.
//!
//! All costs are in nanoseconds of virtual time. The remote-operation
//! parameters are taken from the paper's Table I: a split-phase operation
//! occupies the EU for its *pipelined* cost and completes (value available /
//! write durable) after its *sequential* cost. Back-to-back dependent
//! operations therefore cost the sequential figure each, while batched
//! independent operations approach the pipelined figure — reproducing both
//! extremes of Table I by construction.

/// Timing parameters of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// A simple ALU / control bytecode operation.
    pub local_op_ns: u64,
    /// A register-to-register copy (`Mov`). Defaults to zero: the real
    /// code generator coalesces the copies the communication optimizer
    /// introduces (`bx = comm1` in the paper's Figure 8(b)) during
    /// register allocation.
    pub mov_ns: u64,
    /// A local memory access (dereference of a local pointer, struct
    /// buffer field access beyond register pressure is folded in here).
    pub local_mem_ns: u64,
    /// EU occupancy to issue a remote word read.
    pub read_issue_ns: u64,
    /// Time from issue until the read value is available (Table I
    /// "sequential" read: 7109 ns).
    pub read_latency_ns: u64,
    /// EU occupancy to issue a remote word write.
    pub write_issue_ns: u64,
    /// Time from issue until the write is durable (Table I "sequential"
    /// write: 6458 ns), observable via `fence()`.
    pub write_latency_ns: u64,
    /// EU occupancy to issue a one-word block move.
    pub blk_issue_ns: u64,
    /// Time from issue until a one-word block move completes.
    pub blk_latency_ns: u64,
    /// Additional streaming time per extra word in a block move
    /// (8 bytes over the 50 MB/s MANNA link ⇒ 160 ns/word).
    pub blk_per_word_ns: u64,
    /// EU occupancy for a remote operation whose target turns out to be
    /// local memory (a "pseudo-remote" operation: still a runtime call,
    /// but no network traversal).
    pub pseudo_remote_ns: u64,
    /// Context switch between threads on one EU.
    pub switch_ns: u64,
    /// Creating a thread on the local node (parallel-sequence arm,
    /// forall iteration).
    pub spawn_ns: u64,
    /// One-way message latency for a remote function invocation (request
    /// or reply).
    pub remote_call_ns: u64,
    /// Local function call / return overhead.
    pub call_ns: u64,
    /// Heap allocation.
    pub malloc_ns: u64,
    /// EU occupancy for an atomic operation on a remote shared variable.
    pub atomic_remote_ns: u64,
    /// Completion latency of a remote `valueof`.
    pub atomic_latency_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            local_op_ns: 40,
            mov_ns: 0,
            local_mem_ns: 60,
            read_issue_ns: 1908,
            read_latency_ns: 7109,
            write_issue_ns: 1749,
            write_latency_ns: 6458,
            blk_issue_ns: 2602,
            blk_latency_ns: 9700,
            blk_per_word_ns: 160,
            pseudo_remote_ns: 250,
            switch_ns: 400,
            spawn_ns: 900,
            remote_call_ns: 3500,
            call_ns: 120,
            malloc_ns: 250,
            atomic_remote_ns: 1800,
            atomic_latency_ns: 7000,
        }
    }
}

impl CostModel {
    /// EU occupancy of a block move of `words` words.
    pub fn blk_issue(&self, words: usize) -> u64 {
        self.blk_issue_ns + self.blk_per_word_ns * words.saturating_sub(1) as u64
    }

    /// Completion latency of a block move of `words` words.
    pub fn blk_latency(&self, words: usize) -> u64 {
        self.blk_latency_ns + self.blk_per_word_ns * words.saturating_sub(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_defaults() {
        let c = CostModel::default();
        assert_eq!(c.read_issue_ns, 1908);
        assert_eq!(c.read_latency_ns, 7109);
        assert_eq!(c.write_issue_ns, 1749);
        assert_eq!(c.write_latency_ns, 6458);
        assert_eq!(c.blk_issue(1), 2602);
        assert_eq!(c.blk_latency(1), 9700);
        assert_eq!(c.blk_issue(4), 2602 + 3 * 160);
    }
}
