//! Runtime values and the global address space.

use std::fmt;

/// Identifies an EARTH node.
pub type NodeId = u16;

/// A global heap address: the owning node plus an object index within that
/// node's store. Field granularity is carried by the operations, not the
/// address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// The node whose local memory holds the object.
    pub node: NodeId,
    /// Index into the node's object table.
    pub index: u32,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:{}", self.node, self.index)
    }
}

/// A dynamic value in the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// Pointer to a heap object.
    Ptr(Addr),
    /// The null pointer.
    Null,
    /// Uninitialized memory / result of a speculative remote read of an
    /// invalid address. Using it in an operation is a runtime error.
    Uninit,
}

impl Value {
    /// Interprets the value as an integer.
    pub fn as_int(self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Double(v) => Ok(v as i64),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    /// Interprets the value as a double.
    pub fn as_double(self) -> Result<f64, String> {
        match self {
            Value::Double(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            other => Err(format!("expected double, got {other:?}")),
        }
    }

    /// Interprets the value as a (possibly null) pointer.
    pub fn as_ptr(self) -> Result<Option<Addr>, String> {
        match self {
            Value::Ptr(a) => Ok(Some(a)),
            Value::Null => Ok(None),
            other => Err(format!("expected pointer, got {other:?}")),
        }
    }

    /// Truthiness for conditions.
    pub fn truthy(self) -> Result<bool, String> {
        match self {
            Value::Int(v) => Ok(v != 0),
            Value::Double(v) => Ok(v != 0.0),
            Value::Ptr(_) => Ok(true),
            Value::Null => Ok(false),
            Value::Uninit => Err("uninitialized value in condition".into()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Ptr(a) => write!(f, "{a}"),
            Value::Null => write!(f, "NULL"),
            Value::Uninit => write!(f, "<uninit>"),
        }
    }
}

/// One node's object store. Objects are fixed-size field arrays; indices
/// are never reused (no GC — simulations are bounded).
#[derive(Debug, Clone, Default)]
pub struct NodeHeap {
    objects: Vec<Box<[Value]>>,
}

impl NodeHeap {
    /// Allocates an object with `words` fields, all [`Value::Uninit`].
    pub fn alloc(&mut self, words: usize) -> u32 {
        let idx = self.objects.len() as u32;
        self.objects
            .push(vec![Value::Uninit; words].into_boxed_slice());
        idx
    }

    /// Reads field `field` of object `index`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range object or field indices.
    pub fn load(&self, index: u32, field: usize) -> Result<Value, String> {
        self.objects
            .get(index as usize)
            .and_then(|o| o.get(field))
            .copied()
            .ok_or_else(|| format!("heap access out of range: obj {index} field {field}"))
    }

    /// Writes field `field` of object `index`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range object or field indices.
    pub fn store(&mut self, index: u32, field: usize, v: Value) -> Result<(), String> {
        let slot = self
            .objects
            .get_mut(index as usize)
            .and_then(|o| o.get_mut(field))
            .ok_or_else(|| format!("heap access out of range: obj {index} field {field}"))?;
        *slot = v;
        Ok(())
    }

    /// Snapshot of all fields of an object (for block moves).
    ///
    /// # Errors
    ///
    /// Returns an error for an out-of-range object index.
    pub fn load_all(&self, index: u32) -> Result<&[Value], String> {
        self.objects
            .get(index as usize)
            .map(|o| &**o)
            .ok_or_else(|| format!("heap access out of range: obj {index}"))
    }

    /// Snapshot of `len` fields starting at `off` (partial block moves).
    ///
    /// # Errors
    ///
    /// Returns an error when the range exceeds the object.
    pub fn load_range(&self, index: u32, off: usize, len: usize) -> Result<&[Value], String> {
        let obj = self.load_all(index)?;
        obj.get(off..off + len)
            .ok_or_else(|| format!("blkmov range [{off}, {}) exceeds object", off + len))
    }

    /// Overwrites `values.len()` fields starting at `off`.
    ///
    /// # Errors
    ///
    /// Returns an error when the range exceeds the object.
    pub fn store_range(&mut self, index: u32, off: usize, values: &[Value]) -> Result<(), String> {
        let obj = self
            .objects
            .get_mut(index as usize)
            .ok_or_else(|| format!("heap access out of range: obj {index}"))?;
        let slice = obj.get_mut(off..off + values.len()).ok_or_else(|| {
            format!(
                "blkmov range [{off}, {}) exceeds object",
                off + values.len()
            )
        })?;
        slice.copy_from_slice(values);
        Ok(())
    }

    /// Overwrites all fields of an object (for block moves).
    ///
    /// # Errors
    ///
    /// Returns an error on index or size mismatch.
    pub fn store_all(&mut self, index: u32, values: &[Value]) -> Result<(), String> {
        let obj = self
            .objects
            .get_mut(index as usize)
            .ok_or_else(|| format!("heap access out of range: obj {index}"))?;
        if obj.len() != values.len() {
            return Err(format!(
                "blkmov size mismatch: object has {} words, buffer {}",
                obj.len(),
                values.len()
            ));
        }
        obj.copy_from_slice(values);
        Ok(())
    }

    /// Number of objects allocated on this node.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether nothing is allocated here.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_alloc_load_store() {
        let mut h = NodeHeap::default();
        let i = h.alloc(3);
        assert_eq!(h.load(i, 0).unwrap(), Value::Uninit);
        h.store(i, 1, Value::Int(42)).unwrap();
        assert_eq!(h.load(i, 1).unwrap(), Value::Int(42));
        assert!(h.load(i, 3).is_err());
        assert!(h.load(99, 0).is_err());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn block_ops() {
        let mut h = NodeHeap::default();
        let i = h.alloc(2);
        h.store_all(i, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(h.load_all(i).unwrap(), &[Value::Int(1), Value::Int(2)]);
        assert!(h.store_all(i, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_double().unwrap(), 3.0);
        assert_eq!(Value::Double(2.5).as_int().unwrap(), 2);
        assert!(Value::Null.as_ptr().unwrap().is_none());
        assert!(Value::Null.as_int().is_err());
        assert!(!Value::Null.truthy().unwrap());
        assert!(Value::Ptr(Addr { node: 0, index: 0 }).truthy().unwrap());
        assert!(Value::Uninit.truthy().is_err());
    }
}
