//! Hierarchical data-dependence graph and EARTH fiber partitioning —
//! Phase III of the compiler diagram (the paper's Figure 2: "Build
//! Hierarchical DDG" → "Thread Generation").
//!
//! EARTH threads ("fibers") run to completion on the EU and synchronize
//! through sync slots: a consumer of a split-phase result must live in a
//! *later* fiber than the operation's issue, so the EU can run other
//! fibers while the communication is in flight. This module computes,
//! per statement sequence:
//!
//! * the **DDG**: flow edges between basic statements (def→use over
//!   variables, plus conservative heap-conflict edges from the read/write
//!   sets), and
//! * a **fiber partition**: the greedy linear partition that cuts after
//!   every long-latency operation whose value is consumed later in the
//!   same sequence — the boundary where the original EARTH-McCAT backend
//!   would split threads.
//!
//! The `earth-sim` machine does not need the partition to execute
//! (split-phase results are modelled as pending values within one
//! thread), so this analysis is *reporting* infrastructure: it drives
//! `earthcc dump --fibers` and quantifies how much thread-level slack a
//! function offers (`FiberReport::max_fiber_ops`). The hierarchy mirrors
//! SIMPLE: compound statements contain their own partitions.

use earth_analysis::FunctionAnalysis;
use earth_ir::{Basic, Function, Label, MemRef, Rvalue, Stmt, StmtKind};
use std::collections::{BTreeSet, HashMap};

/// A dependence edge between two statements of one sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// The producing statement.
    pub from: Label,
    /// The consuming statement.
    pub to: Label,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// Why two statements are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// `to` reads a variable `from` writes.
    Flow,
    /// `to` writes a variable `from` reads or writes (anti/output).
    Storage,
    /// Possible heap conflict (connected regions, matching fields).
    Heap,
}

/// The dependence graph of one statement sequence (one level of the
/// hierarchy).
#[derive(Debug, Clone, Default)]
pub struct SeqDdg {
    /// Labels of the sequence's children, in program order.
    pub stmts: Vec<Label>,
    /// Dependence edges among them.
    pub edges: Vec<Edge>,
    /// Fiber boundaries: index `i` means a cut *before* `stmts[i]`.
    pub cuts: Vec<usize>,
}

impl SeqDdg {
    /// The fibers as label slices.
    pub fn fibers(&self) -> Vec<&[Label]> {
        let mut out = Vec::new();
        let mut start = 0;
        for &c in &self.cuts {
            out.push(&self.stmts[start..c]);
            start = c;
        }
        out.push(&self.stmts[start..]);
        out
    }
}

/// DDG + fiber partition for a whole function, keyed by the label of each
/// statement sequence.
#[derive(Debug, Clone, Default)]
pub struct FiberReport {
    /// Per-sequence graphs.
    pub seqs: HashMap<Label, SeqDdg>,
    /// Total number of fibers over all sequences.
    pub fibers: usize,
    /// Size (in statements) of the largest fiber.
    pub max_fiber_ops: usize,
}

/// Builds the hierarchical DDG and fiber partition for `f`.
pub fn build_ddg(f: &Function, fa: &FunctionAnalysis) -> FiberReport {
    let mut report = FiberReport::default();
    visit(f, fa, &f.body, &mut report);
    report
}

fn visit(f: &Function, fa: &FunctionAnalysis, s: &Stmt, report: &mut FiberReport) {
    match &s.kind {
        StmtKind::Seq(ss) | StmtKind::ParSeq(ss) => {
            if matches!(s.kind, StmtKind::Seq(_)) {
                let ddg = seq_ddg(f, fa, ss);
                report.fibers += ddg.cuts.len() + 1;
                report.max_fiber_ops = report
                    .max_fiber_ops
                    .max(ddg.fibers().iter().map(|fb| fb.len()).max().unwrap_or(0));
                report.seqs.insert(s.label, ddg);
            }
            for c in ss {
                visit(f, fa, c, report);
            }
        }
        StmtKind::Basic(_) => {}
        StmtKind::If { then_s, else_s, .. } => {
            visit(f, fa, then_s, report);
            visit(f, fa, else_s, report);
        }
        StmtKind::Switch { cases, default, .. } => {
            for (_, c) in cases {
                visit(f, fa, c, report);
            }
            visit(f, fa, default, report);
        }
        StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => visit(f, fa, body, report),
        StmtKind::Forall { body, .. } => visit(f, fa, body, report),
    }
}

/// Whether a basic statement issues a long-latency (split-phase) remote
/// operation whose result arrives later.
fn is_long_latency(f: &Function, b: &Basic) -> bool {
    match b {
        Basic::Assign {
            src: Rvalue::Load(MemRef::Deref { base, .. }),
            ..
        } => f.deref_is_remote(*base),
        Basic::BlkMov { dir, ptr, .. } => {
            f.deref_is_remote(*ptr) && matches!(dir, earth_ir::BlkDir::RemoteToLocal)
        }
        Basic::Assign {
            src: Rvalue::ValueOf(_),
            ..
        } => true,
        Basic::Call { at: Some(_), .. } => true,
        _ => false,
    }
}

/// Variables a statement (including compound children, via rw sets)
/// defines / uses.
fn defs_uses(
    fa: &FunctionAnalysis,
    l: Label,
) -> (BTreeSet<earth_ir::VarId>, BTreeSet<earth_ir::VarId>) {
    let rw = fa.rw.get(l);
    (rw.vars_written.clone(), rw.vars_read.clone())
}

fn seq_ddg(f: &Function, fa: &FunctionAnalysis, ss: &[Stmt]) -> SeqDdg {
    let mut ddg = SeqDdg {
        stmts: ss.iter().map(|s| s.label).collect(),
        ..SeqDdg::default()
    };
    // Edges: pairwise over the sequence (n is small per SIMPLE level).
    for i in 0..ss.len() {
        let (di, ui) = defs_uses(fa, ss[i].label);
        for later in ss.iter().skip(i + 1) {
            let (dj, uj) = defs_uses(fa, later.label);
            if di.intersection(&uj).next().is_some() {
                ddg.edges.push(Edge {
                    from: ss[i].label,
                    to: later.label,
                    kind: EdgeKind::Flow,
                });
            } else if dj.intersection(&ui).next().is_some() || dj.intersection(&di).next().is_some()
            {
                ddg.edges.push(Edge {
                    from: ss[i].label,
                    to: later.label,
                    kind: EdgeKind::Storage,
                });
            } else {
                // Heap conflicts through connected regions.
                let rwi = fa.rw.get(ss[i].label);
                let rwj = fa.rw.get(later.label);
                let conflict = rwi.heap_writes.iter().any(|a| {
                    rwj.heap_reads
                        .iter()
                        .chain(rwj.heap_writes.iter())
                        .any(|b| {
                            fa.regions.connected(a.base, b.base)
                                && match (a.field, b.field) {
                                    (Some(x), Some(y)) => x == y,
                                    _ => true,
                                }
                        })
                }) || rwj.heap_writes.iter().any(|b| {
                    rwi.heap_reads.iter().any(|a| {
                        fa.regions.connected(a.base, b.base)
                            && match (a.field, b.field) {
                                (Some(x), Some(y)) => x == y,
                                _ => true,
                            }
                    })
                });
                if conflict {
                    ddg.edges.push(Edge {
                        from: ss[i].label,
                        to: later.label,
                        kind: EdgeKind::Heap,
                    });
                }
            }
        }
    }

    // Fiber cuts: after each long-latency issue whose value is used by a
    // *later* statement of this sequence (a flow edge out of it), the
    // consumer starts a new fiber.
    for (i, s) in ss.iter().enumerate() {
        let StmtKind::Basic(b) = &s.kind else {
            continue;
        };
        if !is_long_latency(f, b) {
            continue;
        }
        let has_consumer = ddg
            .edges
            .iter()
            .any(|e| e.from == s.label && e.kind == EdgeKind::Flow);
        if has_consumer && i + 1 < ss.len() {
            // Cut before the first consumer.
            let first_consumer = ss
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, t)| {
                    ddg.edges
                        .iter()
                        .any(|e| e.from == s.label && e.to == t.label && e.kind == EdgeKind::Flow)
                })
                .map(|(j, _)| j);
            if let Some(j) = first_consumer {
                if !ddg.cuts.contains(&j) {
                    ddg.cuts.push(j);
                }
            }
        }
    }
    ddg.cuts.sort_unstable();
    ddg
}

/// Renders the fiber partition of one function, for `earthcc dump
/// --fibers`.
pub fn render_fibers(f: &Function, report: &FiberReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "function `{}`: {} fibers, largest {} statements",
        f.name, report.fibers, report.max_fiber_ops
    );
    let mut seqs: Vec<(&Label, &SeqDdg)> = report.seqs.iter().collect();
    seqs.sort_by_key(|(l, _)| **l);
    for (label, ddg) in seqs {
        if ddg.stmts.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  seq {label}:");
        for (i, fiber) in ddg.fibers().iter().enumerate() {
            let labels: Vec<String> = fiber.iter().map(|l| l.to_string()).collect();
            let _ = writeln!(out, "    fiber {i}: [{}]", labels.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, func: &str) -> (earth_ir::Program, FiberReport) {
        let prog = earth_frontend::compile(src).unwrap();
        let analysis = earth_analysis::analyze(&prog);
        let fid = prog.function_by_name(func).unwrap();
        let report = build_ddg(prog.function(fid), analysis.function(fid));
        (prog, report)
    }

    #[test]
    fn dependent_remote_read_cuts_a_fiber() {
        let (prog, report) = analyze(
            r#"
            struct P { double x; double y; };
            double f(P *p) {
                double a;
                double b;
                a = p->x;
                b = a + 1.0;
                return b;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let body = &report.seqs[&f.body.label];
        // The read's consumer starts a new fiber: [read][use; return].
        assert_eq!(body.cuts.len(), 1, "{body:?}");
        assert_eq!(report.fibers, 2);
        let text = render_fibers(f, &report);
        assert!(text.contains("fiber 1"), "{text}");
    }

    #[test]
    fn independent_reads_share_a_fiber() {
        let (prog, report) = analyze(
            r#"
            struct P { double x; double y; };
            double f(P *p, P *q) {
                double a;
                double b;
                a = p->x;
                b = q->y;
                return a + b;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let body = &report.seqs[&f.body.label];
        // Both issues land in fiber 0; the first consumer (the addition,
        // lowered into the return temp) starts fiber 1.
        let fibers = body.fibers();
        assert!(fibers[0].len() >= 2, "{body:?}");
    }

    #[test]
    fn local_reads_do_not_cut() {
        let (prog, report) = analyze(
            r#"
            struct P { double x; double y; };
            double f(P local *p) {
                double a;
                a = p->x;
                return a + 1.0;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let body = &report.seqs[&f.body.label];
        assert!(body.cuts.is_empty(), "{body:?}");
    }

    #[test]
    fn flow_edges_are_recorded() {
        let (prog, report) = analyze(
            r#"
            struct P { double x; };
            double f(P *p) {
                double a;
                double b;
                a = p->x;
                b = a * 2.0;
                return b;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let body = &report.seqs[&f.body.label];
        assert!(body.edges.iter().any(|e| e.kind == EdgeKind::Flow));
    }

    #[test]
    fn heap_conflicts_create_edges() {
        let (prog, report) = analyze(
            r#"
            struct P { double x; };
            void f(P *p, P *q) {
                P *r;
                double a;
                r = p;
                r->x = 1.0;
                a = p->x;
                q->x = a;
            }
        "#,
            "f",
        );
        let fid = prog.function_by_name("f").unwrap();
        let f = prog.function(fid);
        let body = &report.seqs[&f.body.label];
        assert!(
            body.edges.iter().any(|e| e.kind == EdgeKind::Heap),
            "{body:?}"
        );
    }
}
