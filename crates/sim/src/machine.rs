//! The discrete-event EARTH-MANNA machine.
//!
//! Mirrors the architecture of the paper's Figure 9: each node has an
//! Execution Unit running threads non-preemptively ("the EU executes a
//! thread to completion before moving to another thread" — here, until the
//! thread stalls on a split-phase value, blocks on a join, or ends), a
//! ready queue, and local memory that is one slice of the global address
//! space. Split-phase remote operations occupy the EU for their pipelined
//! issue cost and deliver their result after the full Table-I latency;
//! threads touching a still-pending value are suspended and rescheduled at
//! the value's ready time, letting the EU run other threads meanwhile —
//! which is exactly how EARTH overlaps communication with computation.
//!
//! The simulation is deterministic: a single virtual clock, a stable event
//! order, and a seeded LCG for the `rand()` builtin.

use crate::bytecode::{CallAt, CompiledProgram, Op, Opnd, Pc, Slot, NO_SITE};
use crate::cost::CostModel;
use crate::stats::{SiteCounters, SiteTrace, Stats};
use crate::value::{Addr, NodeHeap, NodeId, Value};
use earth_ir::{BinOp, Builtin, FuncId, UnOp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Machine construction parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of EARTH nodes.
    pub n_nodes: u16,
    /// Timing model.
    pub cost: CostModel,
    /// Seed for the `rand()` builtin.
    pub seed: u64,
    /// Abort after this many bytecode operations (runaway guard).
    pub max_ops: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            n_nodes: 1,
            cost: CostModel::default(),
            seed: 0x5EED_1234,
            max_ops: 2_000_000_000,
        }
    }
}

impl MachineConfig {
    /// A machine with `n` nodes and default cost model.
    pub fn with_nodes(n: u16) -> Self {
        MachineConfig {
            n_nodes: n,
            ..MachineConfig::default()
        }
    }
}

/// A simulation failure (runtime error in the simulated program, deadlock,
/// or resource exhaustion).
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    /// Virtual time of the failure.
    pub time_ns: u64,
    /// Description.
    pub message: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation error at t={}ns: {}",
            self.time_ns, self.message
        )
    }
}

impl std::error::Error for SimError {}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The entry function's return value.
    pub ret: Value,
    /// Virtual completion time in nanoseconds.
    pub time_ns: u64,
    /// Operation counts.
    pub stats: Stats,
    /// Lines produced by `print_int` / `print_double`.
    pub output: Vec<String>,
    /// Per-node EU busy time in nanoseconds (index = node id); the gap to
    /// `time_ns` is idle/stall time, so this exposes load balance.
    pub node_busy_ns: Vec<u64>,
    /// Per-site, per-node event counters (empty unless the program was
    /// compiled with
    /// [`record_sites`](crate::codegen::CodegenOptions::record_sites)).
    pub site_trace: SiteTrace,
}

impl RunResult {
    /// Mean EU utilization across nodes (busy time / completion time).
    pub fn utilization(&self) -> f64 {
        if self.time_ns == 0 || self.node_busy_ns.is_empty() {
            return 0.0;
        }
        let total: u64 = self.node_busy_ns.iter().sum();
        total as f64 / (self.time_ns as f64 * self.node_busy_ns.len() as f64)
    }

    /// Load imbalance: max node busy time over mean node busy time
    /// (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.node_busy_ns.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.node_busy_ns.len() as f64;
        let max = *self.node_busy_ns.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

type ThreadId = u32;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ThreadState {
    /// Has a wake event scheduled (or is being executed).
    Ready,
    /// Waiting for a remote call reply or a join; resumed explicitly.
    Blocked,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    val: Value,
    ready: u64,
}

#[derive(Debug)]
struct Frame {
    cells: Vec<Cell>,
}

#[derive(Debug, Clone, Copy)]
struct ActRec {
    func: FuncId,
    pc: Pc,
    frame: usize,
    /// Slot in the *caller's* frame receiving the return value.
    ret_slot: Option<Slot>,
}

#[derive(Debug, Clone, Copy)]
enum ParentLink {
    /// Arm of a Fork or a forall iteration: notify parent on EndArm.
    Arm(ThreadId),
    /// Remote invocation: reply to `(thread, slot)` on final Ret.
    Reply(ThreadId, Option<Slot>),
    /// The root thread.
    Root,
}

#[derive(Debug)]
struct Thread {
    node: NodeId,
    stack: Vec<ActRec>,
    state: ThreadState,
    parent: ParentLink,
    outstanding_children: u32,
    waiting_join: bool,
    writes_done_at: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct NodeState {
    eu_free_at: u64,
    last_thread: Option<ThreadId>,
    busy_ns: u64,
}

/// The machine: global address space plus per-node EUs.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    heaps: Vec<NodeHeap>,
    nodes: Vec<NodeState>,
    threads: Vec<Thread>,
    frames: Vec<Frame>,
    events: BinaryHeap<Reverse<(u64, u64, ThreadId)>>,
    event_seq: u64,
    stats: Stats,
    site_trace: SiteTrace,
    rng: u64,
    output: Vec<String>,
    result: Option<Value>,
    finished_at: u64,
}

impl Machine {
    /// Creates a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.n_nodes >= 1, "need at least one node");
        Machine {
            heaps: (0..cfg.n_nodes).map(|_| NodeHeap::default()).collect(),
            nodes: vec![NodeState::default(); cfg.n_nodes as usize],
            threads: Vec::new(),
            frames: Vec::new(),
            events: BinaryHeap::new(),
            event_seq: 0,
            stats: Stats::default(),
            site_trace: SiteTrace::default(),
            rng: cfg
                .seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493),
            output: Vec::new(),
            result: None,
            finished_at: 0,
            cfg,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> u16 {
        self.cfg.n_nodes
    }

    /// Runs `func` (by id) with `args` on node 0 and simulates to
    /// completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on runtime errors in the simulated program
    /// (null dereference of a local pointer, locality violations, arity
    /// mismatches), deadlock, or exceeding the operation budget.
    pub fn run(
        &mut self,
        prog: &CompiledProgram,
        func: FuncId,
        args: &[Value],
    ) -> Result<RunResult, SimError> {
        let cf = &prog.functions[func.index()];
        if args.len() != cf.param_slots.len() {
            return Err(SimError {
                time_ns: 0,
                message: format!(
                    "entry `{}` expects {} arguments, got {}",
                    cf.name,
                    cf.param_slots.len(),
                    args.len()
                ),
            });
        }
        self.site_trace = SiteTrace::sized(prog.site_table.len(), self.cfg.n_nodes as usize);
        let frame = self.new_frame(cf.n_slots);
        for (&slot, &v) in cf.param_slots.iter().zip(args) {
            self.frames[frame].cells[slot as usize] = Cell { val: v, ready: 0 };
        }
        let tid = self.new_thread(
            0,
            ActRec {
                func,
                pc: 0,
                frame,
                ret_slot: None,
            },
            ParentLink::Root,
        );
        self.schedule(0, tid);

        while let Some(Reverse((time, _, tid))) = self.events.pop() {
            if self.threads[tid as usize].state != ThreadState::Ready {
                continue;
            }
            self.run_thread(prog, tid, time)?;
            if self.result.is_some() {
                break;
            }
        }
        match self.result.take() {
            Some(ret) => Ok(RunResult {
                ret,
                time_ns: self.finished_at,
                stats: self.stats,
                output: std::mem::take(&mut self.output),
                node_busy_ns: self.nodes.iter().map(|n| n.busy_ns).collect(),
                site_trace: std::mem::take(&mut self.site_trace),
            }),
            None => Err(SimError {
                time_ns: self.finished_at,
                message: "deadlock: no runnable threads but the program has not finished".into(),
            }),
        }
    }

    fn new_frame(&mut self, n_slots: u32) -> usize {
        self.frames.push(Frame {
            cells: vec![
                Cell {
                    val: Value::Uninit,
                    ready: 0,
                };
                n_slots as usize
            ],
        });
        self.frames.len() - 1
    }

    fn new_thread(&mut self, node: NodeId, root: ActRec, parent: ParentLink) -> ThreadId {
        let tid = self.threads.len() as ThreadId;
        self.threads.push(Thread {
            node,
            stack: vec![root],
            state: ThreadState::Blocked,
            parent,
            outstanding_children: 0,
            waiting_join: false,
            writes_done_at: 0,
        });
        tid
    }

    fn schedule(&mut self, time: u64, tid: ThreadId) {
        self.threads[tid as usize].state = ThreadState::Ready;
        self.event_seq += 1;
        self.events.push(Reverse((time, self.event_seq, tid)));
    }

    fn err<T>(&self, time: u64, message: impl Into<String>) -> Result<T, SimError> {
        Err(SimError {
            time_ns: time,
            message: message.into(),
        })
    }

    /// The per-(site, node) counters for the op at `(func, pc)`, when the
    /// program was compiled with site recording and the op is attributed.
    fn site_mut(
        &mut self,
        prog: &CompiledProgram,
        func: FuncId,
        pc: Pc,
        node: usize,
    ) -> Option<&mut SiteCounters> {
        if self.site_trace.per_site.is_empty() {
            return None;
        }
        let s = *prog.functions[func.index()].site_of.get(pc as usize)?;
        if s == NO_SITE {
            return None;
        }
        Some(&mut self.site_trace.per_site[s as usize][node])
    }

    // ---- value plumbing -------------------------------------------------

    fn cell(&self, frame: usize, slot: Slot) -> Cell {
        self.frames[frame].cells[slot as usize]
    }

    fn set_cell(&mut self, frame: usize, slot: Slot, val: Value, ready: u64) {
        self.frames[frame].cells[slot as usize] = Cell { val, ready };
    }

    fn opnd_ready(&self, frame: usize, o: &Opnd) -> u64 {
        match o {
            Opnd::Slot(s) => self.cell(frame, *s).ready,
            Opnd::Imm(_) => 0,
        }
    }

    fn opnd_val(&self, frame: usize, o: &Opnd) -> Value {
        match o {
            Opnd::Slot(s) => self.cell(frame, *s).val,
            Opnd::Imm(v) => *v,
        }
    }

    /// The earliest time every slot this op *reads* is available.
    fn op_ready_at(&self, t: &Thread, frame: usize, op: &Op) -> u64 {
        let mut r = 0u64;
        let slot = |s: Slot| -> u64 { self.cell(frame, s).ready };
        let opnd = |o: &Opnd| -> u64 { self.opnd_ready(frame, o) };
        match op {
            // Mov propagates pending-ness (a register rename, not a use):
            // no readiness requirement on the source.
            Op::Mov { .. } => {}
            Op::Bin { a, b, .. } => r = opnd(a).max(opnd(b)),
            Op::Un { a, .. } => r = opnd(a),
            Op::LoadLocal { ptr, .. } | Op::LoadRemote { ptr, .. } => r = slot(*ptr),
            Op::StoreLocal { ptr, src, .. } | Op::StoreRemote { ptr, src, .. } => {
                r = slot(*ptr).max(opnd(src))
            }
            Op::BlkRead { ptr, .. } => r = slot(*ptr),
            Op::BlkWrite {
                ptr,
                buf,
                off,
                words,
            } => {
                r = slot(*ptr);
                for w in *off..*off + *words {
                    r = r.max(slot(buf + w));
                }
            }
            Op::CopySlots { src, words, .. } => {
                for w in 0..*words {
                    r = r.max(slot(src + w));
                }
            }
            Op::Malloc { node, .. } => {
                if let Some(n) = node {
                    r = opnd(n);
                }
            }
            Op::AllocShared { .. } => {}
            Op::AtomicWrite { cell, src } | Op::AtomicAdd { cell, src } => {
                r = slot(*cell).max(opnd(src))
            }
            Op::ValueOf { cell, .. } => r = slot(*cell),
            Op::Call { args, at, .. } => {
                for a in args {
                    r = r.max(opnd(a));
                }
                match at {
                    CallAt::OwnerOf(s) => r = r.max(slot(*s)),
                    CallAt::Node(o) => r = r.max(opnd(o)),
                    CallAt::Local => {}
                }
            }
            Op::Builtin { which, args, .. } => {
                for a in args {
                    r = r.max(opnd(a));
                }
                if matches!(which, Builtin::Fence) {
                    r = r.max(t.writes_done_at);
                }
            }
            Op::Ret { val } => {
                if let Some(v) = val {
                    r = opnd(v);
                }
            }
            Op::Br { a, b, .. } => r = opnd(a).max(opnd(b)),
            Op::Switch { scrut, .. } => r = opnd(scrut),
            Op::Jmp(_) | Op::Fork { .. } | Op::SpawnIter { .. } | Op::JoinIters | Op::EndArm => {}
        }
        r
    }

    // ---- the EU ---------------------------------------------------------

    /// Runs thread `tid` from `event_time` until it stalls, blocks, or
    /// finishes. Returns when the EU is released.
    fn run_thread(
        &mut self,
        prog: &CompiledProgram,
        tid: ThreadId,
        event_time: u64,
    ) -> Result<(), SimError> {
        let node = self.threads[tid as usize].node as usize;
        let mut now = event_time.max(self.nodes[node].eu_free_at);
        if self.nodes[node].last_thread != Some(tid) {
            now += self.cfg.cost.switch_ns;
        }
        self.nodes[node].last_thread = Some(tid);
        let span_start = now;

        loop {
            self.stats.ops += 1;
            if self.stats.ops > self.cfg.max_ops {
                return self.err(now, "operation budget exceeded (infinite loop?)");
            }
            let rec = *self.threads[tid as usize]
                .stack
                .last()
                .expect("running thread has a frame");
            let op = prog.functions[rec.func.index()].ops[rec.pc as usize].clone();

            // Stall if an input is still in flight.
            let ready_at = self.op_ready_at(&self.threads[tid as usize], rec.frame, &op);
            if ready_at > now {
                self.stats.stall_ns += ready_at - now;
                // The stall is charged to the *consuming* op's site: the
                // statement whose input was still in flight.
                if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                    sc.stall_ns += ready_at - now;
                }
                self.nodes[node].eu_free_at = now;
                self.nodes[node].busy_ns += now - span_start;
                self.schedule(ready_at, tid);
                return Ok(());
            }

            let c = self.cfg.cost.clone();
            let frame = rec.frame;
            // Advance pc by default; control ops override.
            self.threads[tid as usize].stack.last_mut().unwrap().pc = rec.pc + 1;

            match op {
                Op::Mov { dst, src } => {
                    // Copies propagate the ready time of their source: the
                    // EU does not synchronize on a value just to move it
                    // (the compiler would have renamed the sync slot).
                    let (v, ready) = match &src {
                        Opnd::Slot(s) => {
                            let cell = self.cell(frame, *s);
                            (cell.val, cell.ready)
                        }
                        Opnd::Imm(v) => (*v, 0),
                    };
                    self.set_cell(frame, dst, v, ready);
                    now += c.mov_ns;
                }
                Op::Bin { dst, op, a, b } => {
                    let av = self.opnd_val(frame, &a);
                    let bv = self.opnd_val(frame, &b);
                    let v = eval_bin(op, av, bv).map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?;
                    self.set_cell(frame, dst, v, 0);
                    now += c.local_op_ns;
                }
                Op::Un { dst, op, a } => {
                    let av = self.opnd_val(frame, &a);
                    let v = eval_un(op, av).map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?;
                    self.set_cell(frame, dst, v, 0);
                    now += c.local_op_ns;
                }
                Op::LoadLocal { dst, ptr, field } => {
                    let addr = self.expect_local_addr(now, tid, frame, ptr)?;
                    let v = self.heaps[addr.node as usize]
                        .load(addr.index, field as usize)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    self.set_cell(frame, dst, v, 0);
                    self.stats.local_mem += 1;
                    now += c.local_mem_ns;
                }
                Op::LoadRemote { dst, ptr, field } => {
                    self.stats.read_data += 1;
                    if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                        sc.execs += 1;
                        sc.bytes += 8;
                    }
                    match self.cell(frame, ptr).val {
                        Value::Ptr(addr) => {
                            let v = self.heaps[addr.node as usize]
                                .load(addr.index, field as usize)
                                .map_err(|m| SimError {
                                    time_ns: now,
                                    message: m,
                                })?;
                            if addr.node as usize == node {
                                now += c.pseudo_remote_ns;
                                self.set_cell(frame, dst, v, 0);
                            } else {
                                let ready = now + c.read_latency_ns;
                                now += c.read_issue_ns;
                                self.set_cell(frame, dst, v, ready);
                            }
                        }
                        // Speculative read of an invalid address: EARTH
                        // tolerates it; the result must simply never be used.
                        Value::Null | Value::Uninit => {
                            let ready = now + c.read_latency_ns;
                            now += c.read_issue_ns;
                            self.set_cell(frame, dst, Value::Uninit, ready);
                        }
                        other => {
                            return self
                                .err(now, format!("remote read through non-pointer {other:?}"))
                        }
                    }
                }
                Op::StoreLocal { ptr, field, src } => {
                    let addr = self.expect_local_addr(now, tid, frame, ptr)?;
                    let v = self.opnd_val(frame, &src);
                    self.heaps[addr.node as usize]
                        .store(addr.index, field as usize, v)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    self.stats.local_mem += 1;
                    now += c.local_mem_ns;
                }
                Op::StoreRemote { ptr, field, src } => {
                    self.stats.write_data += 1;
                    if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                        sc.execs += 1;
                        sc.bytes += 8;
                    }
                    let Some(addr) = self.cell(frame, ptr).val.as_ptr().map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?
                    else {
                        return self.err(now, "remote write through NULL pointer");
                    };
                    let v = self.opnd_val(frame, &src);
                    self.heaps[addr.node as usize]
                        .store(addr.index, field as usize, v)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    if addr.node as usize == node {
                        now += c.pseudo_remote_ns;
                    } else {
                        let done = now + c.write_latency_ns;
                        let t = &mut self.threads[tid as usize];
                        t.writes_done_at = t.writes_done_at.max(done);
                        now += c.write_issue_ns;
                    }
                }
                Op::BlkRead {
                    ptr,
                    buf,
                    off,
                    words,
                } => {
                    self.stats.blkmov += 1;
                    self.stats.blkmov_words += words as u64;
                    if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                        sc.execs += 1;
                        sc.bytes += 8 * words as u64;
                    }
                    match self.cell(frame, ptr).val {
                        Value::Ptr(addr) => {
                            let vals: Vec<Value> = self.heaps[addr.node as usize]
                                .load_range(addr.index, off as usize, words as usize)
                                .map_err(|m| SimError {
                                    time_ns: now,
                                    message: m,
                                })?
                                .to_vec();
                            let (issue, ready) = if addr.node as usize == node {
                                (c.pseudo_remote_ns, now)
                            } else {
                                (
                                    c.blk_issue(words as usize),
                                    now + c.blk_latency(words as usize),
                                )
                            };
                            for (w, v) in vals.into_iter().enumerate() {
                                self.set_cell(frame, buf + off + w as u32, v, ready);
                            }
                            now += issue;
                        }
                        Value::Null | Value::Uninit => {
                            let ready = now + c.blk_latency(words as usize);
                            for w in off..off + words {
                                self.set_cell(frame, buf + w, Value::Uninit, ready);
                            }
                            now += c.blk_issue(words as usize);
                        }
                        other => {
                            return self.err(now, format!("blkmov through non-pointer {other:?}"))
                        }
                    }
                }
                Op::BlkWrite {
                    ptr,
                    buf,
                    off,
                    words,
                } => {
                    self.stats.blkmov += 1;
                    self.stats.blkmov_words += words as u64;
                    if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                        sc.execs += 1;
                        sc.bytes += 8 * words as u64;
                    }
                    let Some(addr) = self.cell(frame, ptr).val.as_ptr().map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?
                    else {
                        return self.err(now, "blkmov write through NULL pointer");
                    };
                    let vals: Vec<Value> = (off..off + words)
                        .map(|w| self.cell(frame, buf + w).val)
                        .collect();
                    self.heaps[addr.node as usize]
                        .store_range(addr.index, off as usize, &vals)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    if addr.node as usize == node {
                        now += c.pseudo_remote_ns;
                    } else {
                        let done = now + c.blk_latency(words as usize);
                        let t = &mut self.threads[tid as usize];
                        t.writes_done_at = t.writes_done_at.max(done);
                        now += c.blk_issue(words as usize);
                    }
                }
                Op::CopySlots { dst, src, words } => {
                    for w in 0..words {
                        let v = self.cell(frame, src + w);
                        self.set_cell(frame, dst + w, v.val, v.ready);
                    }
                    now += c.local_op_ns * words as u64;
                }
                Op::Malloc {
                    dst,
                    words,
                    node: on,
                } => {
                    let target = match on {
                        None => node as NodeId,
                        Some(o) => {
                            let n = self.opnd_val(frame, &o).as_int().map_err(|m| SimError {
                                time_ns: now,
                                message: m,
                            })?;

                            n.rem_euclid(self.cfg.n_nodes as i64) as NodeId
                        }
                    };
                    let index = self.heaps[target as usize].alloc(words as usize);
                    self.set_cell(
                        frame,
                        dst,
                        Value::Ptr(Addr {
                            node: target,
                            index,
                        }),
                        0,
                    );
                    now += c.malloc_ns;
                    if target as usize != node {
                        now += c.write_issue_ns;
                    }
                }
                Op::AllocShared { dst } => {
                    let index = self.heaps[node].alloc(1);
                    self.heaps[node]
                        .store(index, 0, Value::Int(0))
                        .expect("fresh cell");
                    self.set_cell(
                        frame,
                        dst,
                        Value::Ptr(Addr {
                            node: node as NodeId,
                            index,
                        }),
                        0,
                    );
                    now += c.malloc_ns;
                }
                Op::AtomicWrite { cell, src } | Op::AtomicAdd { cell, src } => {
                    let is_add = matches!(op, Op::AtomicAdd { .. });
                    let Some(addr) = self.cell(frame, cell).val.as_ptr().map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?
                    else {
                        return self.err(now, "atomic op on unallocated shared cell");
                    };
                    let v = self.opnd_val(frame, &src);
                    let new = if is_add {
                        let old =
                            self.heaps[addr.node as usize]
                                .load(addr.index, 0)
                                .map_err(|m| SimError {
                                    time_ns: now,
                                    message: m,
                                })?;
                        Value::Int(
                            old.as_int().map_err(|m| SimError {
                                time_ns: now,
                                message: m,
                            })? + v.as_int().map_err(|m| SimError {
                                time_ns: now,
                                message: m,
                            })?,
                        )
                    } else {
                        v
                    };
                    self.heaps[addr.node as usize]
                        .store(addr.index, 0, new)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    if addr.node as usize == node {
                        self.stats.local_mem += 1;
                        now += c.local_mem_ns;
                    } else {
                        self.stats.atomic_remote += 1;
                        now += c.atomic_remote_ns;
                    }
                }
                Op::ValueOf { dst, cell } => {
                    let Some(addr) = self.cell(frame, cell).val.as_ptr().map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?
                    else {
                        return self.err(now, "valueof on unallocated shared cell");
                    };
                    let v = self.heaps[addr.node as usize]
                        .load(addr.index, 0)
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    if addr.node as usize == node {
                        self.stats.local_mem += 1;
                        self.set_cell(frame, dst, v, 0);
                        now += c.local_mem_ns;
                    } else {
                        self.stats.atomic_remote += 1;
                        let ready = now + c.atomic_latency_ns;
                        self.set_cell(frame, dst, v, ready);
                        now += c.atomic_remote_ns;
                    }
                }
                Op::Call {
                    dst,
                    func,
                    args,
                    at,
                } => {
                    let callee = &prog.functions[func.index()];
                    if args.len() != callee.param_slots.len() {
                        return self.err(now, format!("arity mismatch calling `{}`", callee.name));
                    }
                    let target: usize = match at {
                        CallAt::Local => node,
                        CallAt::OwnerOf(s) => match self.cell(frame, s).val {
                            Value::Ptr(a) => a.node as usize,
                            Value::Null => {
                                return self.err(now, "OWNER_OF(NULL)");
                            }
                            other => {
                                return self.err(now, format!("OWNER_OF of non-pointer {other:?}"))
                            }
                        },
                        CallAt::Node(o) => {
                            let n = self.opnd_val(frame, &o).as_int().map_err(|m| SimError {
                                time_ns: now,
                                message: m,
                            })?;
                            n.rem_euclid(self.cfg.n_nodes as i64) as usize
                        }
                    };
                    let arg_vals: Vec<Value> =
                        args.iter().map(|a| self.opnd_val(frame, a)).collect();
                    let new_frame = self.new_frame(callee.n_slots);
                    let param_slots = callee.param_slots.clone();
                    for (&slot, v) in param_slots.iter().zip(arg_vals) {
                        self.set_cell(new_frame, slot, v, 0);
                    }
                    now += c.call_ns;
                    if target == node {
                        // Synchronous local call: push a frame.
                        self.threads[tid as usize].stack.push(ActRec {
                            func,
                            pc: 0,
                            frame: new_frame,
                            ret_slot: dst,
                        });
                    } else {
                        // Remote invocation: suspend and spawn over there.
                        self.stats.remote_calls += 1;
                        let child = self.new_thread(
                            target as NodeId,
                            ActRec {
                                func,
                                pc: 0,
                                frame: new_frame,
                                ret_slot: None,
                            },
                            ParentLink::Reply(tid, dst),
                        );
                        self.schedule(now + c.remote_call_ns, child);
                        self.threads[tid as usize].state = ThreadState::Blocked;
                        self.nodes[node].eu_free_at = now;
                        self.nodes[node].busy_ns += now - span_start;
                        return Ok(());
                    }
                }
                Op::Builtin { dst, which, args } => {
                    now += c.local_op_ns;
                    let v = match which {
                        Builtin::Sqrt => Value::Double(
                            self.opnd_val(frame, &args[0])
                                .as_double()
                                .map_err(|m| SimError {
                                    time_ns: now,
                                    message: m,
                                })?
                                .sqrt(),
                        ),
                        Builtin::Fabs => Value::Double(
                            self.opnd_val(frame, &args[0])
                                .as_double()
                                .map_err(|m| SimError {
                                    time_ns: now,
                                    message: m,
                                })?
                                .abs(),
                        ),
                        Builtin::Rand => {
                            self.rng = self
                                .rng
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            Value::Int(((self.rng >> 33) & 0x7FFF_FFFF) as i64)
                        }
                        Builtin::NumNodes => Value::Int(self.cfg.n_nodes as i64),
                        Builtin::MyNode => Value::Int(node as i64),
                        Builtin::OwnerOf => match self.opnd_val(frame, &args[0]) {
                            Value::Ptr(a) => Value::Int(a.node as i64),
                            Value::Null => {
                                return self.err(now, "owner_of(NULL)");
                            }
                            other => {
                                return self.err(now, format!("owner_of of non-pointer {other:?}"))
                            }
                        },
                        Builtin::PrintInt => {
                            let v = self.opnd_val(frame, &args[0]);
                            self.output.push(format!("{v}"));
                            v
                        }
                        Builtin::PrintDouble => {
                            let v = self.opnd_val(frame, &args[0]);
                            self.output.push(format!("{v}"));
                            v
                        }
                        // Readiness was checked against writes_done_at.
                        Builtin::Fence => Value::Int(0),
                    };
                    self.set_cell(frame, dst, v, 0);
                }
                Op::Ret { val } => {
                    let v = val
                        .map(|o| self.opnd_val(frame, &o))
                        .unwrap_or(Value::Int(0));
                    now += c.call_ns;
                    let popped = self.threads[tid as usize].stack.pop().expect("frame");
                    if let Some(caller) = self.threads[tid as usize].stack.last() {
                        let caller_frame = caller.frame;
                        if let Some(slot) = popped.ret_slot {
                            self.set_cell(caller_frame, slot, v, 0);
                        }
                        continue;
                    }
                    // Root frame of this thread.
                    match self.threads[tid as usize].parent {
                        ParentLink::Root => {
                            self.threads[tid as usize].state = ThreadState::Done;
                            self.nodes[node].eu_free_at = now;
                            self.nodes[node].busy_ns += now - span_start;
                            // Completion waits for outstanding writes.
                            self.finished_at = now.max(self.threads[tid as usize].writes_done_at);
                            self.result = Some(v);
                            return Ok(());
                        }
                        ParentLink::Reply(caller, dst) => {
                            self.threads[tid as usize].state = ThreadState::Done;
                            let arrive = now + c.remote_call_ns;
                            let caller_t = &self.threads[caller as usize];
                            let caller_frame = caller_t.stack.last().expect("caller stack").frame;
                            if let Some(slot) = dst {
                                self.set_cell(caller_frame, slot, v, arrive);
                            }
                            // Completion of the callee's remote writes is
                            // covered by the reply ordering on EARTH; fold
                            // it into the caller's fence state.
                            let wd = self.threads[tid as usize].writes_done_at;
                            let ct = &mut self.threads[caller as usize];
                            ct.writes_done_at = ct.writes_done_at.max(wd);
                            self.schedule(arrive, caller);
                            self.nodes[node].eu_free_at = now;
                            self.nodes[node].busy_ns += now - span_start;
                            return Ok(());
                        }
                        ParentLink::Arm(_) => {
                            return self.err(now, "return from a parallel arm");
                        }
                    }
                }
                Op::Jmp(t) => {
                    self.threads[tid as usize].stack.last_mut().unwrap().pc = t;
                    now += c.local_op_ns;
                }
                Op::Br {
                    op,
                    a,
                    b,
                    then_pc,
                    else_pc,
                } => {
                    let av = self.opnd_val(frame, &a);
                    let bv = self.opnd_val(frame, &b);
                    let v = eval_bin(op, av, bv).map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?;
                    let taken = v.truthy().map_err(|m| SimError {
                        time_ns: now,
                        message: m,
                    })?;
                    if let Some(sc) = self.site_mut(prog, rec.func, rec.pc, node) {
                        sc.execs += 1;
                        if taken {
                            sc.taken += 1;
                        } else {
                            sc.not_taken += 1;
                        }
                    }
                    self.threads[tid as usize].stack.last_mut().unwrap().pc =
                        if taken { then_pc } else { else_pc };
                    now += c.local_op_ns;
                }
                Op::Switch {
                    scrut,
                    table,
                    default_pc,
                } => {
                    let v = self
                        .opnd_val(frame, &scrut)
                        .as_int()
                        .map_err(|m| SimError {
                            time_ns: now,
                            message: m,
                        })?;
                    let target = table
                        .iter()
                        .find(|(k, _)| *k == v)
                        .map(|(_, pc)| *pc)
                        .unwrap_or(default_pc);
                    self.threads[tid as usize].stack.last_mut().unwrap().pc = target;
                    now += c.local_op_ns;
                }
                Op::Fork { arms, cont } => {
                    let func = rec.func;
                    self.threads[tid as usize].stack.last_mut().unwrap().pc = cont;
                    self.threads[tid as usize].outstanding_children = arms.len() as u32;
                    self.threads[tid as usize].waiting_join = true;
                    self.threads[tid as usize].state = ThreadState::Blocked;
                    for arm_pc in arms {
                        now += c.spawn_ns;
                        self.stats.spawns += 1;
                        let child = self.new_thread(
                            node as NodeId,
                            ActRec {
                                func,
                                pc: arm_pc,
                                frame,
                                ret_slot: None,
                            },
                            ParentLink::Arm(tid),
                        );
                        self.schedule(now, child);
                    }
                    self.nodes[node].eu_free_at = now;
                    self.nodes[node].busy_ns += now - span_start;
                    return Ok(());
                }
                Op::SpawnIter { body } => {
                    let func = rec.func;
                    now += c.spawn_ns;
                    self.stats.spawns += 1;
                    // The iteration gets a copy of the frame: forall bodies
                    // must not carry dependences on ordinary variables.
                    let cloned = self.frames[frame].cells.clone();
                    self.frames.push(Frame { cells: cloned });
                    let new_frame = self.frames.len() - 1;
                    self.threads[tid as usize].outstanding_children += 1;
                    let child = self.new_thread(
                        node as NodeId,
                        ActRec {
                            func,
                            pc: body,
                            frame: new_frame,
                            ret_slot: None,
                        },
                        ParentLink::Arm(tid),
                    );
                    self.schedule(now, child);
                }
                Op::JoinIters => {
                    if self.threads[tid as usize].outstanding_children > 0 {
                        self.threads[tid as usize].waiting_join = true;
                        self.threads[tid as usize].state = ThreadState::Blocked;
                        self.nodes[node].eu_free_at = now;
                        self.nodes[node].busy_ns += now - span_start;
                        return Ok(());
                    }
                    now += c.local_op_ns;
                }
                Op::EndArm => {
                    self.threads[tid as usize].state = ThreadState::Done;
                    let wd = self.threads[tid as usize].writes_done_at;
                    if let ParentLink::Arm(parent) = self.threads[tid as usize].parent {
                        let pt = &mut self.threads[parent as usize];
                        pt.outstanding_children -= 1;
                        pt.writes_done_at = pt.writes_done_at.max(wd);
                        if pt.outstanding_children == 0 && pt.waiting_join {
                            pt.waiting_join = false;
                            self.schedule(now, parent);
                        }
                    }
                    self.nodes[node].eu_free_at = now;
                    self.nodes[node].busy_ns += now - span_start;
                    return Ok(());
                }
            }
        }
    }

    fn expect_local_addr(
        &self,
        now: u64,
        tid: ThreadId,
        frame: usize,
        ptr: Slot,
    ) -> Result<Addr, SimError> {
        match self.cell(frame, ptr).val {
            Value::Ptr(a) => {
                if a.node != self.threads[tid as usize].node {
                    return self.err(
                        now,
                        format!(
                            "locality violation: local access to {a} from node {}",
                            self.threads[tid as usize].node
                        ),
                    );
                }
                Ok(a)
            }
            Value::Null => self.err(now, "local dereference of NULL"),
            other => self.err(now, format!("local dereference of non-pointer {other:?}")),
        }
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use Value::*;
    // Pointer comparisons.
    if op.is_comparison() {
        let r = match (a, b) {
            (Ptr(x), Ptr(y)) => match op {
                BinOp::Eq => Some(x == y),
                BinOp::Ne => Some(x != y),
                _ => return Err("ordered comparison of pointers".into()),
            },
            (Ptr(_), Null) => match op {
                BinOp::Eq => Some(false),
                BinOp::Ne => Some(true),
                _ => return Err("ordered comparison of pointers".into()),
            },
            (Null, Ptr(_)) => match op {
                BinOp::Eq => Some(false),
                BinOp::Ne => Some(true),
                _ => return Err("ordered comparison of pointers".into()),
            },
            (Null, Null) => match op {
                BinOp::Eq => Some(true),
                BinOp::Ne => Some(false),
                _ => return Err("ordered comparison of pointers".into()),
            },
            _ => None,
        };
        if let Some(v) = r {
            return Ok(Int(v as i64));
        }
    }
    match (a, b) {
        (Int(x), Int(y)) => {
            let v = match op {
                BinOp::Add => Int(x.wrapping_add(y)),
                BinOp::Sub => Int(x.wrapping_sub(y)),
                BinOp::Mul => Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        return Err("integer division by zero".into());
                    }
                    Int(x.wrapping_div(y))
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err("integer remainder by zero".into());
                    }
                    Int(x.wrapping_rem(y))
                }
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
            };
            Ok(v)
        }
        _ => {
            let x = a.as_double()?;
            let y = b.as_double()?;
            let v = match op {
                BinOp::Add => Double(x + y),
                BinOp::Sub => Double(x - y),
                BinOp::Mul => Double(x * y),
                BinOp::Div => Double(x / y),
                BinOp::Rem => Double(x % y),
                BinOp::Eq => Int((x == y) as i64),
                BinOp::Ne => Int((x != y) as i64),
                BinOp::Lt => Int((x < y) as i64),
                BinOp::Le => Int((x <= y) as i64),
                BinOp::Gt => Int((x > y) as i64),
                BinOp::Ge => Int((x >= y) as i64),
            };
            Ok(v)
        }
    }
}

fn eval_un(op: UnOp, a: Value) -> Result<Value, String> {
    match op {
        UnOp::Neg => match a {
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Double(v) => Ok(Value::Double(-v)),
            other => Err(format!("negation of {other:?}")),
        },
        UnOp::Not => Ok(Value::Int(!a.truthy()? as i64)),
    }
}
