//! Lowering from SIMPLE IR to threaded bytecode (the simulator's Phase
//! III: thread generation + code generation).

use crate::bytecode::{CallAt, CompiledFunction, CompiledProgram, Op, Opnd, Pc, Slot, NO_SITE};
use crate::value::Value;
use earth_ir::{
    AtTarget, Basic, Cond, Const, FuncId, Function, MemRef, Operand, Place, Program, Rvalue,
    SiteId, SiteMap, Stmt, StmtKind, Ty,
};
use std::collections::HashMap;
use std::fmt;

/// Code generation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenOptions {
    /// Compile every memory access as a local access — the "pure
    /// sequential C" build used for the paper's Sequential column. Only
    /// meaningful for single-node runs of programs without parallel
    /// constructs spanning nodes.
    pub force_local: bool,
    /// Record provenance-stable [`SiteId`]s for every emitted instruction
    /// ([`earth_ir::assign_sites`] over the program being compiled), so
    /// the machine can collect a per-site
    /// [`SiteTrace`](crate::stats::SiteTrace) for profile-guided
    /// optimization.
    pub record_sites: bool,
}

/// A code generation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    /// The function being compiled.
    pub func: String,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error in `{}`: {}", self.func, self.message)
    }
}

impl std::error::Error for CodegenError {}

/// Compiles a whole program.
///
/// # Errors
///
/// Returns an error for constructs the threaded backend cannot express:
/// `return` inside a parallel arm or forall body, struct-typed parameters,
/// or non-scalar stores that cannot be scratch-materialized.
pub fn compile_program(
    prog: &Program,
    opts: CodegenOptions,
) -> Result<CompiledProgram, CodegenError> {
    let struct_words = prog
        .structs()
        .iter()
        .map(|s| s.size_words() as u32)
        .collect();
    let mut interner = SiteInterner::default();
    let mut functions = Vec::with_capacity(prog.functions().len());
    for (fid, f) in prog.iter_functions() {
        functions.push(compile_function(prog, fid, f, opts, &mut interner)?);
    }
    Ok(CompiledProgram {
        functions,
        struct_words,
        site_table: interner.table,
    })
}

/// Program-wide deduplication of [`SiteId`]s into a dense `u32` index.
/// Functions are compiled in [`FuncId`] order and ops in emission order, so
/// the interned table is deterministic.
#[derive(Default)]
struct SiteInterner {
    table: Vec<SiteId>,
    index: HashMap<SiteId, u32>,
}

impl SiteInterner {
    fn intern(&mut self, site: &SiteId) -> u32 {
        if let Some(&i) = self.index.get(site) {
            return i;
        }
        let i = self.table.len() as u32;
        self.table.push(site.clone());
        self.index.insert(site.clone(), i);
        i
    }
}

struct FnCg<'a> {
    prog: &'a Program,
    func: &'a Function,
    opts: CodegenOptions,
    ops: Vec<Op>,
    /// Base slot of each variable.
    slot_of: Vec<Slot>,
    /// One scratch slot for materializing store sources.
    scratch: Slot,
    n_slots: u32,
    /// Nesting depth of parallel arms / forall bodies (returns forbidden
    /// inside).
    par_depth: u32,
    /// Site assignment for this function's labels (empty unless
    /// `opts.record_sites`).
    sites: SiteMap,
    /// Interned site index attributed to ops emitted right now.
    cur_site: u32,
    /// Per-op site index, kept parallel to `ops` by `emit`.
    site_of: Vec<u32>,
    interner: &'a mut SiteInterner,
}

fn compile_function(
    prog: &Program,
    fid: FuncId,
    func: &Function,
    opts: CodegenOptions,
    interner: &mut SiteInterner,
) -> Result<CompiledFunction, CodegenError> {
    let err = |m: String| CodegenError {
        func: func.name.clone(),
        message: m,
    };
    // Slot layout.
    let mut slot_of = Vec::with_capacity(func.vars().len());
    let mut next: Slot = 0;
    for (_, d) in func.iter_vars() {
        slot_of.push(next);
        next += match d.ty {
            Ty::Struct(sid) => prog.struct_def(sid).size_words() as u32,
            _ => 1,
        };
    }
    let scratch = next;
    next += 1;
    for &p in &func.params {
        if func.var(p).ty.is_struct() {
            return Err(err(format!(
                "struct-typed parameter `{}` is not supported",
                func.var(p).name
            )));
        }
    }

    let sites = if opts.record_sites {
        earth_ir::assign_sites(fid, func)
    } else {
        SiteMap::default()
    };
    let mut cg = FnCg {
        prog,
        func,
        opts,
        ops: Vec::new(),
        slot_of,
        scratch,
        n_slots: next,
        par_depth: 0,
        sites,
        cur_site: NO_SITE,
        site_of: Vec::new(),
        interner,
    };
    // Shared variables get their cells at entry.
    for (v, d) in func.iter_vars() {
        if d.shared {
            let dst = cg.slot_of[v.index()];
            cg.emit(Op::AllocShared { dst });
        }
    }
    cg.stmt(&func.body)?;
    // Implicit return for void functions falling off the end.
    cg.emit(Op::Ret { val: None });
    debug_assert_eq!(cg.ops.len(), cg.site_of.len());
    Ok(CompiledFunction {
        name: func.name.clone(),
        ops: cg.ops,
        n_slots: cg.n_slots,
        param_slots: func.params.iter().map(|p| cg.slot_of[p.index()]).collect(),
        site_of: if opts.record_sites {
            cg.site_of
        } else {
            Vec::new()
        },
    })
}

impl FnCg<'_> {
    fn err<T>(&self, m: impl Into<String>) -> Result<T, CodegenError> {
        Err(CodegenError {
            func: self.func.name.clone(),
            message: m.into(),
        })
    }

    fn slot(&self, v: earth_ir::VarId) -> Slot {
        self.slot_of[v.index()]
    }

    fn opnd(&self, o: Operand) -> Opnd {
        match o {
            Operand::Var(v) => Opnd::Slot(self.slot(v)),
            Operand::Const(Const::Int(i)) => Opnd::Imm(Value::Int(i)),
            Operand::Const(Const::Double(d)) => Opnd::Imm(Value::Double(d)),
            Operand::Const(Const::Null) => Opnd::Imm(Value::Null),
        }
    }

    fn here(&self) -> Pc {
        self.ops.len() as Pc
    }

    fn emit(&mut self, op: Op) -> Pc {
        let pc = self.here();
        self.ops.push(op);
        self.site_of.push(self.cur_site);
        pc
    }

    fn patch_jmp(&mut self, at: Pc, target: Pc) {
        match &mut self.ops[at as usize] {
            Op::Jmp(t) => *t = target,
            other => unreachable!("patch_jmp on {other:?}"),
        }
    }

    fn is_remote(&self, base: earth_ir::VarId) -> bool {
        !self.opts.force_local && self.func.deref_is_remote(base)
    }

    fn words_of_ptr(&self, base: earth_ir::VarId) -> u32 {
        let sid = self
            .func
            .var(base)
            .ty
            .struct_id()
            .expect("deref base is a struct pointer");
        self.prog.struct_def(sid).size_words() as u32
    }

    // ---- statements ----------------------------------------------------

    /// Ops emitted while lowering a statement are attributed to the
    /// innermost enclosing statement that has a site (loop back-branches
    /// emitted after the body thus belong to the loop, not its last child).
    fn stmt(&mut self, s: &Stmt) -> Result<(), CodegenError> {
        let saved = self.cur_site;
        if let Some(site) = self.sites.get(s.label) {
            self.cur_site = self.interner.intern(site);
        } else if self.opts.record_sites {
            // Fresh label from a later transformation: unattributed.
            self.cur_site = NO_SITE;
        }
        let r = self.stmt_kind(&s.kind);
        self.cur_site = saved;
        r
    }

    fn stmt_kind(&mut self, kind: &StmtKind) -> Result<(), CodegenError> {
        match kind {
            StmtKind::Seq(ss) => {
                for c in ss {
                    self.stmt(c)?;
                }
                Ok(())
            }
            StmtKind::Basic(b) => self.basic(b),
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                let br = self.emit_branch_placeholder(cond);
                let then_pc = self.here();
                self.stmt(then_s)?;
                let jmp_end = self.emit(Op::Jmp(Pc::MAX));
                let else_pc = self.here();
                self.stmt(else_s)?;
                let end = self.here();
                self.patch_branch(br, then_pc, else_pc);
                self.patch_jmp(jmp_end, end);
                Ok(())
            }
            StmtKind::Switch {
                scrut,
                cases,
                default,
            } => {
                let sw_at = self.emit(Op::Switch {
                    scrut: self.opnd(*scrut),
                    table: Vec::new(),
                    default_pc: Pc::MAX,
                });
                let mut table = Vec::new();
                let mut end_jumps = Vec::new();
                for (v, body) in cases {
                    table.push((*v, self.here()));
                    self.stmt(body)?;
                    end_jumps.push(self.emit(Op::Jmp(Pc::MAX)));
                }
                let default_pc = self.here();
                self.stmt(default)?;
                let end = self.here();
                for j in end_jumps {
                    self.patch_jmp(j, end);
                }
                match &mut self.ops[sw_at as usize] {
                    Op::Switch {
                        table: t,
                        default_pc: d,
                        ..
                    } => {
                        *t = table;
                        *d = default_pc;
                    }
                    _ => unreachable!(),
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let top = self.here();
                let br = self.emit_branch_placeholder(cond);
                let body_pc = self.here();
                self.stmt(body)?;
                self.emit(Op::Jmp(top));
                let end = self.here();
                self.patch_branch(br, body_pc, end);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let top = self.here();
                self.stmt(body)?;
                let br = self.emit_branch_placeholder(cond);
                let end = self.here();
                self.patch_branch(br, top, end);
                Ok(())
            }
            StmtKind::ParSeq(arms) => {
                self.par_depth += 1;
                let fork_at = self.emit(Op::Fork {
                    arms: Vec::new(),
                    cont: Pc::MAX,
                });
                let mut arm_pcs = Vec::new();
                for arm in arms {
                    arm_pcs.push(self.here());
                    self.stmt(arm)?;
                    self.emit(Op::EndArm);
                }
                let cont = self.here();
                match &mut self.ops[fork_at as usize] {
                    Op::Fork { arms: a, cont: c } => {
                        *a = arm_pcs;
                        *c = cont;
                    }
                    _ => unreachable!(),
                }
                self.par_depth -= 1;
                Ok(())
            }
            StmtKind::Forall {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init)?;
                let top = self.here();
                let br = self.emit_branch_placeholder(cond);
                let spawn_pc = self.emit(Op::SpawnIter { body: Pc::MAX });
                self.stmt(step)?;
                self.emit(Op::Jmp(top));
                // Iteration body.
                self.par_depth += 1;
                let body_pc = self.here();
                self.stmt(body)?;
                self.emit(Op::EndArm);
                self.par_depth -= 1;
                let join_pc = self.emit(Op::JoinIters);
                let _ = join_pc;
                let end = self.here();
                let _ = end;
                // Patch: loop exit goes to JoinIters (which falls through).
                self.patch_branch(br, spawn_pc, join_pc);
                match &mut self.ops[spawn_pc as usize] {
                    Op::SpawnIter { body } => *body = body_pc,
                    _ => unreachable!(),
                }
                Ok(())
            }
        }
    }

    fn emit_branch_placeholder(&mut self, cond: &Cond) -> Pc {
        let op = Op::Br {
            op: cond.op,
            a: self.opnd(cond.lhs),
            b: self.opnd(cond.rhs),
            then_pc: Pc::MAX,
            else_pc: Pc::MAX,
        };
        self.emit(op)
    }

    fn patch_branch(&mut self, at: Pc, then_pc: Pc, else_pc: Pc) {
        match &mut self.ops[at as usize] {
            Op::Br {
                then_pc: t,
                else_pc: e,
                ..
            } => {
                *t = then_pc;
                *e = else_pc;
            }
            other => unreachable!("patch_branch on {other:?}"),
        }
    }

    // ---- basic statements ----------------------------------------------

    fn basic(&mut self, b: &Basic) -> Result<(), CodegenError> {
        match b {
            Basic::Assign { dst, src } => self.assign(dst, src),
            Basic::Call {
                dst,
                func,
                args,
                at,
            } => {
                let callee = self.prog.function(*func);
                if args.len() != callee.params.len() {
                    return self.err(format!(
                        "call to `{}` with {} args, expected {}",
                        callee.name,
                        args.len(),
                        callee.params.len()
                    ));
                }
                let at = match at {
                    None => CallAt::Local,
                    Some(AtTarget::OwnerOf(p)) => CallAt::OwnerOf(self.slot(*p)),
                    Some(AtTarget::Node(n)) => CallAt::Node(self.opnd(*n)),
                };
                let args = args.iter().map(|a| self.opnd(*a)).collect();
                self.emit(Op::Call {
                    dst: dst.map(|d| self.slot(d)),
                    func: *func,
                    args,
                    at,
                });
                Ok(())
            }
            Basic::Return(v) => {
                if self.par_depth > 0 {
                    return self.err("`return` inside a parallel arm or forall body");
                }
                let val = v.map(|o| self.opnd(o));
                self.emit(Op::Ret { val });
                Ok(())
            }
            Basic::BlkMov {
                dir,
                ptr,
                buf,
                range,
            } => {
                let struct_words = self.words_of_ptr(*ptr);
                let (off, words) = range.unwrap_or((0, struct_words));
                let buf_slot = self.slot(*buf);
                if !self.is_remote(*ptr) {
                    // A local block move: word-by-word local accesses.
                    for w in off..off + words {
                        let op = match dir {
                            earth_ir::BlkDir::RemoteToLocal => Op::LoadLocal {
                                dst: buf_slot + w,
                                ptr: self.slot(*ptr),
                                field: w,
                            },
                            earth_ir::BlkDir::LocalToRemote => Op::StoreLocal {
                                ptr: self.slot(*ptr),
                                field: w,
                                src: Opnd::Slot(buf_slot + w),
                            },
                        };
                        self.emit(op);
                    }
                    return Ok(());
                }
                let op = match dir {
                    earth_ir::BlkDir::RemoteToLocal => Op::BlkRead {
                        ptr: self.slot(*ptr),
                        buf: buf_slot,
                        off,
                        words,
                    },
                    earth_ir::BlkDir::LocalToRemote => Op::BlkWrite {
                        ptr: self.slot(*ptr),
                        buf: buf_slot,
                        off,
                        words,
                    },
                };
                self.emit(op);
                Ok(())
            }
            Basic::AtomicWrite { var, value } => {
                let op = Op::AtomicWrite {
                    cell: self.slot(*var),
                    src: self.opnd(*value),
                };
                self.emit(op);
                Ok(())
            }
            Basic::AtomicAdd { var, value } => {
                let op = Op::AtomicAdd {
                    cell: self.slot(*var),
                    src: self.opnd(*value),
                };
                self.emit(op);
                Ok(())
            }
        }
    }

    fn assign(&mut self, dst: &Place, src: &Rvalue) -> Result<(), CodegenError> {
        match dst {
            Place::Var(v) => {
                let dslot = self.slot(*v);
                let dty = self.func.var(*v).ty;
                if let Ty::Struct(sid) = dty {
                    // Whole-struct copy.
                    let words = self.prog.struct_def(sid).size_words() as u32;
                    match src {
                        Rvalue::Use(Operand::Var(s)) if self.func.var(*s).ty == dty => {
                            self.emit(Op::CopySlots {
                                dst: dslot,
                                src: self.slot(*s),
                                words,
                            });
                            Ok(())
                        }
                        _ => self.err("struct variables may only be copied from struct variables"),
                    }
                } else {
                    self.rvalue_into(dslot, src)
                }
            }
            Place::Mem(m) => {
                // Materialize the source into a scalar operand first.
                let src_opnd = match src {
                    Rvalue::Use(o) => self.opnd(*o),
                    other => {
                        let scratch = self.scratch;
                        self.rvalue_into(scratch, other)?;
                        Opnd::Slot(scratch)
                    }
                };
                match m {
                    MemRef::Deref { base, field } => {
                        let op = if self.is_remote(*base) {
                            Op::StoreRemote {
                                ptr: self.slot(*base),
                                field: field.0,
                                src: src_opnd,
                            }
                        } else {
                            Op::StoreLocal {
                                ptr: self.slot(*base),
                                field: field.0,
                                src: src_opnd,
                            }
                        };
                        self.emit(op);
                        Ok(())
                    }
                    MemRef::Field { base, field } => {
                        let slot = self.slot(*base) + field.0;
                        self.emit(Op::Mov {
                            dst: slot,
                            src: src_opnd,
                        });
                        Ok(())
                    }
                }
            }
        }
    }

    fn rvalue_into(&mut self, dst: Slot, src: &Rvalue) -> Result<(), CodegenError> {
        match src {
            Rvalue::Use(o) => {
                let src = self.opnd(*o);
                self.emit(Op::Mov { dst, src });
                Ok(())
            }
            Rvalue::Unary(op, a) => {
                let a = self.opnd(*a);
                self.emit(Op::Un { dst, op: *op, a });
                Ok(())
            }
            Rvalue::Binary(op, a, b) => {
                let (a, b) = (self.opnd(*a), self.opnd(*b));
                self.emit(Op::Bin { dst, op: *op, a, b });
                Ok(())
            }
            Rvalue::Load(MemRef::Deref { base, field }) => {
                let op = if self.is_remote(*base) {
                    Op::LoadRemote {
                        dst,
                        ptr: self.slot(*base),
                        field: field.0,
                    }
                } else {
                    Op::LoadLocal {
                        dst,
                        ptr: self.slot(*base),
                        field: field.0,
                    }
                };
                self.emit(op);
                Ok(())
            }
            Rvalue::Load(MemRef::Field { base, field }) => {
                let src = Opnd::Slot(self.slot(*base) + field.0);
                self.emit(Op::Mov { dst, src });
                Ok(())
            }
            Rvalue::Malloc { struct_id, on } => {
                let words = self.prog.struct_def(*struct_id).size_words() as u32;
                let node = on.map(|o| self.opnd(o));
                self.emit(Op::Malloc { dst, words, node });
                Ok(())
            }
            Rvalue::Builtin { builtin, args } => {
                let args = args.iter().map(|a| self.opnd(*a)).collect();
                self.emit(Op::Builtin {
                    dst,
                    which: *builtin,
                    args,
                });
                Ok(())
            }
            Rvalue::ValueOf(v) => {
                let cell = self.slot(*v);
                self.emit(Op::ValueOf { dst, cell });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_frontend::compile;

    fn cg(src: &str) -> CompiledProgram {
        let prog = compile(src).unwrap();
        compile_program(&prog, CodegenOptions::default()).unwrap()
    }

    #[test]
    fn remote_vs_local_loads() {
        let cp = cg(r#"
            struct N { N* next; int v; };
            int f(N *p, N local *q) {
                return p->v + q->v;
            }
        "#);
        let f = &cp.functions[0];
        let remotes = f
            .ops
            .iter()
            .filter(|o| matches!(o, Op::LoadRemote { .. }))
            .count();
        let locals = f
            .ops
            .iter()
            .filter(|o| matches!(o, Op::LoadLocal { .. }))
            .count();
        assert_eq!((remotes, locals), (1, 1));
    }

    #[test]
    fn force_local_removes_remote_ops() {
        let prog = compile(
            r#"
            struct N { N* next; int v; };
            int f(N *p) { return p->v; }
        "#,
        )
        .unwrap();
        let cp = compile_program(
            &prog,
            CodegenOptions {
                force_local: true,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        assert!(cp.functions[0]
            .ops
            .iter()
            .all(|o| !matches!(o, Op::LoadRemote { .. })));
    }

    #[test]
    fn struct_vars_get_slot_ranges() {
        let cp = cg(r#"
            struct P { double x; double y; double z; };
            double f(P *p) {
                P b;
                b.x = 1.0;
                b.z = 3.0;
                return b.x + b.z;
            }
        "#);
        let f = &cp.functions[0];
        // b.x and b.z must land in different slots, 2 apart.
        let movs: Vec<Slot> = f
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Mov {
                    dst,
                    src: Opnd::Imm(_),
                } => Some(*dst),
                _ => None,
            })
            .collect();
        assert_eq!(movs.len(), 2);
        assert_eq!(movs[1], movs[0] + 2);
    }

    #[test]
    fn return_in_parallel_arm_rejected() {
        let prog = compile(
            r#"
            struct N { int v; };
            int f() {
                int a;
                {^
                    a = 1;
                    a = 2;
                ^}
                return a;
            }
        "#,
        )
        .unwrap();
        // Patch: place a return inside an arm via the builder-level IR is
        // awkward from source; instead check the forall case.
        let _ = prog;
        let bad = compile(
            r#"
            struct N { N* next; int v; };
            int f(N *head) {
                N *p;
                forall (p = head; p != NULL; p = p->next) {
                    return 1;
                }
                return 0;
            }
        "#,
        )
        .unwrap();
        let e = compile_program(&bad, CodegenOptions::default()).unwrap_err();
        assert!(e.message.contains("parallel"));
    }

    #[test]
    fn forall_compiles_spawn_and_join() {
        let cp = cg(r#"
            struct N { N* next; int v; };
            void f(N *head) {
                N *p;
                shared int c;
                forall (p = head; p != NULL; p = p->next) {
                    addto(&c, 1);
                }
            }
        "#);
        let f = &cp.functions[0];
        assert!(f.ops.iter().any(|o| matches!(o, Op::SpawnIter { .. })));
        assert!(f.ops.iter().any(|o| matches!(o, Op::JoinIters)));
        assert!(f.ops.iter().any(|o| matches!(o, Op::AllocShared { .. })));
        assert!(f.ops.iter().any(|o| matches!(o, Op::EndArm)));
    }

    #[test]
    fn sites_recorded_parallel_to_ops() {
        let prog = compile(
            r#"
            struct N { N* next; int v; };
            int f(N *p) {
                int acc;
                acc = 0;
                while (p != NULL) {
                    acc = acc + p->v;
                    p = p->next;
                }
                return acc;
            }
        "#,
        )
        .unwrap();
        let cp = compile_program(
            &prog,
            CodegenOptions {
                record_sites: true,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let f = &cp.functions[0];
        assert_eq!(f.site_of.len(), f.ops.len());
        assert!(!cp.site_table.is_empty());
        // Every remote load and every branch is attributed to a site.
        for (op, &site) in f.ops.iter().zip(&f.site_of) {
            if matches!(op, Op::LoadRemote { .. } | Op::Br { .. }) {
                assert_ne!(site, crate::bytecode::NO_SITE, "{op:?} unattributed");
            }
        }
        // The loop's branch and back-jump belong to the While statement's
        // site, not to the last statement of the body.
        let br_site = f
            .ops
            .iter()
            .zip(&f.site_of)
            .find_map(|(op, &s)| matches!(op, Op::Br { .. }).then_some(s))
            .unwrap();
        let load_site = f
            .ops
            .iter()
            .zip(&f.site_of)
            .find_map(|(op, &s)| matches!(op, Op::LoadRemote { .. }).then_some(s))
            .unwrap();
        assert_ne!(br_site, load_site);
        // Without the flag, nothing is recorded.
        let plain = compile_program(&prog, CodegenOptions::default()).unwrap();
        assert!(plain.site_table.is_empty());
        assert!(plain.functions[0].site_of.is_empty());
    }

    #[test]
    fn switch_table_built() {
        let cp = cg(r#"
            struct N { int v; };
            int f(int x) {
                int r;
                switch (x) {
                    case 0: r = 10; break;
                    case 5: r = 20; break;
                    default: r = 30;
                }
                return r;
            }
        "#);
        let f = &cp.functions[0];
        let sw = f
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Switch {
                    table, default_pc, ..
                } => Some((table.clone(), *default_pc)),
                _ => None,
            })
            .unwrap();
        assert_eq!(sw.0.len(), 2);
        assert_ne!(sw.1, Pc::MAX);
    }
}
