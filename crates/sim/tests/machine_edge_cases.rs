//! Edge-case integration tests for the EARTH-MANNA machine.

use earth_ir::builder::FunctionBuilder;
use earth_ir::{BinOp, BlkDir, Operand, Program, StructDef, Ty, VarDecl};
use earth_sim::{run_program, Value};

fn run_src(src: &str, nodes: u16) -> earth_sim::RunResult {
    let prog = earth_frontend::compile(src).unwrap();
    run_program(&prog, "main", &[], nodes).unwrap()
}

#[test]
fn switch_dispatch() {
    let r = run_src(
        r#"
        struct S { int x; };
        int pick(int k) {
            int r;
            switch (k) {
                case 0: r = 10; break;
                case 1: r = 20; break;
                case 7: r = 70; break;
                default: r = 0 - 1;
            }
            return r;
        }
        int main() {
            return pick(0) + pick(1) + pick(7) + pick(3);
        }
    "#,
        1,
    );
    assert_eq!(r.ret, Value::Int(10 + 20 + 70 - 1));
}

#[test]
fn do_while_runs_at_least_once() {
    let r = run_src(
        r#"
        struct S { int x; };
        int main() {
            int i;
            int n;
            i = 100;
            n = 0;
            do {
                n = n + 1;
                i = i + 1;
            } while (i < 10);
            return n;
        }
    "#,
        1,
    );
    assert_eq!(r.ret, Value::Int(1));
}

#[test]
fn remote_atomic_counter() {
    // A forall whose iterations call a remote function that bumps a shared
    // counter via its cell pointer is not expressible in the subset, but
    // atomics on a local shared cell hit by many iteration threads are.
    let r = run_src(
        r#"
        struct N { N* next; int v; };
        int main() {
            shared int c;
            N *head;
            N *n;
            N *p;
            int i;
            head = NULL;
            for (i = 0; i < 20; i = i + 1) {
                n = malloc_on(i % num_nodes(), sizeof(N));
                n->next = head;
                head = n;
            }
            writeto(&c, 100);
            forall (p = head; p != NULL; p = p->next) {
                addto(&c, 2);
            }
            return valueof(&c);
        }
    "#,
        4,
    );
    assert_eq!(r.ret, Value::Int(140));
}

#[test]
fn nested_forall_in_called_function() {
    let r = run_src(
        r#"
        struct N { N* next; int v; };
        int count(N *head) {
            shared int c;
            N *p;
            writeto(&c, 0);
            forall (p = head; p != NULL; p = p->next) {
                addto(&c, 1);
            }
            return valueof(&c);
        }
        int main() {
            N *head;
            N *n;
            int i;
            head = NULL;
            for (i = 0; i < 7; i = i + 1) {
                n = malloc(sizeof(N));
                n->next = head;
                head = n;
            }
            return count(head) + count(head);
        }
    "#,
        2,
    );
    assert_eq!(r.ret, Value::Int(14));
}

#[test]
fn partial_blkmov_moves_only_the_range() {
    // Built via the IR builder: read fields [1, 3) of a 4-word struct.
    let mut prog = Program::new();
    let mut s = StructDef::new("Q");
    let f0 = s.add_field("w0", Ty::Int);
    let f1 = s.add_field("w1", Ty::Int);
    let f2 = s.add_field("w2", Ty::Int);
    let f3 = s.add_field("w3", Ty::Int);
    let sid = prog.add_struct(s);
    let mut fb = FunctionBuilder::new("main", Some(Ty::Int));
    let p = fb.var(VarDecl::new("p", Ty::Ptr(sid)));
    let buf = fb.var(VarDecl::new("bcomm1", Ty::Struct(sid)));
    let (a, b) = (
        fb.var(VarDecl::new("a", Ty::Int)),
        fb.var(VarDecl::new("b", Ty::Int)),
    );
    fb.malloc(p, sid, Some(Operand::int(1)));
    fb.store_deref(p, f0, Operand::int(1));
    fb.store_deref(p, f1, Operand::int(2));
    fb.store_deref(p, f2, Operand::int(3));
    fb.store_deref(p, f3, Operand::int(4));
    fb.blkmov_range(BlkDir::RemoteToLocal, p, buf, 1, 2);
    fb.load_field(a, buf, f1);
    fb.load_field(b, buf, f2);
    let t = fb.var(VarDecl::new("t", Ty::Int));
    fb.binop(t, BinOp::Add, Operand::Var(a), Operand::Var(b));
    // Writing through the partial buffer and flushing the same range.
    fb.store_field(buf, f2, Operand::int(30));
    fb.blkmov_range(BlkDir::LocalToRemote, p, buf, 1, 2);
    let c = fb.var(VarDecl::new("c", Ty::Int));
    fb.load_deref(c, p, f2);
    let u = fb.var(VarDecl::new("u", Ty::Int));
    fb.binop(u, BinOp::Mul, Operand::Var(t), Operand::Var(c));
    fb.ret(Some(Operand::Var(u)));
    prog.add_function(fb.finish());
    earth_ir::validate_program(&prog).unwrap();
    let r = run_program(&prog, "main", &[], 2).unwrap();
    assert_eq!(r.ret, Value::Int((2 + 3) * 30));
    // Two partial moves of two words each.
    assert_eq!(r.stats.blkmov, 2);
    assert_eq!(r.stats.blkmov_words, 4);
}

#[test]
fn out_of_range_partial_blkmov_rejected_by_validator() {
    let mut prog = Program::new();
    let mut s = StructDef::new("Q");
    s.add_field("w0", Ty::Int);
    let sid = prog.add_struct(s);
    let mut fb = FunctionBuilder::new("main", Some(Ty::Int));
    let p = fb.var(VarDecl::new("p", Ty::Ptr(sid)));
    let buf = fb.var(VarDecl::new("b", Ty::Struct(sid)));
    fb.blkmov_range(BlkDir::RemoteToLocal, p, buf, 0, 2);
    fb.ret(Some(Operand::int(0)));
    prog.add_function(fb.finish());
    let e = earth_ir::validate_program(&prog).unwrap_err();
    assert!(e.to_string().contains("out of bounds"), "{e}");
}

#[test]
fn deadlock_detection() {
    // A thread waiting on a value that never arrives cannot be built from
    // the safe frontend; instead exercise the guard with an entry
    // function that spawns nothing and... the simplest deadlock-free
    // program simply ends, so check that the machine reports *completion*
    // and that an empty forall joins immediately.
    let r = run_src(
        r#"
        struct N { N* next; int v; };
        int main() {
            N *p;
            shared int c;
            writeto(&c, 5);
            forall (p = NULL; p != NULL; p = p->next) {
                addto(&c, 1);
            }
            return valueof(&c);
        }
    "#,
        2,
    );
    assert_eq!(r.ret, Value::Int(5));
    assert_eq!(r.stats.spawns, 0);
}

#[test]
fn stats_are_placement_sensitive() {
    // The same program with data on the local vs a remote node must show
    // pseudo-remote vs remote behaviour in the virtual time while keeping
    // the same operation counts.
    let src_local = r#"
        struct P { int v; };
        int main() {
            P *p;
            p = malloc_on(0, sizeof(P));
            p->v = 1;
            return p->v;
        }
    "#;
    let src_remote = r#"
        struct P { int v; };
        int main() {
            P *p;
            p = malloc_on(1, sizeof(P));
            p->v = 1;
            return p->v;
        }
    "#;
    let local = run_src(src_local, 2);
    let remote = run_src(src_remote, 2);
    assert_eq!(local.ret, remote.ret);
    assert_eq!(local.stats.read_data, remote.stats.read_data);
    assert!(remote.time_ns > local.time_ns * 2);
}

#[test]
fn cond_new_requires_comparison_is_upheld_by_machine() {
    // Br over doubles works with all comparison operators.
    let r = run_src(
        r#"
        struct S { int x; };
        int main() {
            double a;
            int n;
            a = 1.5;
            n = 0;
            if (a < 2.0) { n = n + 1; }
            if (a <= 1.5) { n = n + 1; }
            if (a > 1.0) { n = n + 1; }
            if (a >= 1.5) { n = n + 1; }
            if (a == 1.5) { n = n + 1; }
            if (a != 2.5) { n = n + 1; }
            return n;
        }
    "#,
        1,
    );
    assert_eq!(r.ret, Value::Int(6));
}

#[test]
fn node_utilization_is_tracked() {
    let src = r#"
        struct N { int v; };
        int work(N local *p) {
            int i;
            int acc;
            acc = 0;
            for (i = 0; i < 500; i = i + 1) { acc = acc + p->v; }
            return acc;
        }
        int main() {
            N *a;
            N *b;
            int r1;
            int r2;
            a = malloc_on(1, sizeof(N));
            b = malloc_on(2, sizeof(N));
            a->v = 1;
            b->v = 1;
            {^
                r1 = work(a) @ OWNER_OF(a);
                r2 = work(b) @ OWNER_OF(b);
            ^}
            return r1 + r2;
        }
    "#;
    let prog = earth_frontend::compile(src).unwrap();
    let r = run_program(&prog, "main", &[], 3).unwrap();
    assert_eq!(r.ret, Value::Int(1000));
    assert_eq!(r.node_busy_ns.len(), 3);
    // Nodes 1 and 2 did the work; node 0 mostly waited.
    assert!(r.node_busy_ns[1] > r.node_busy_ns[0]);
    assert!(r.node_busy_ns[2] > r.node_busy_ns[0]);
    // Busy time never exceeds completion time.
    for &b in &r.node_busy_ns {
        assert!(b <= r.time_ns, "{b} > {}", r.time_ns);
    }
    assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    assert!(r.imbalance() >= 1.0);
}
