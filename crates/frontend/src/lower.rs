//! Lowering from the EARTH-C AST to three-address SIMPLE IR.
//!
//! This pass combines type checking and the *simplification* the paper
//! assumes has already happened: every expression is decomposed so that a
//! basic statement carries at most one potentially-remote memory operation.
//! No common-subexpression elimination is performed — `p->x * p->x` lowers
//! to two loads, exactly as in the paper's Figure 3(b); eliminating the
//! redundancy is the communication optimizer's job.
//!
//! Nested struct-typed fields are flattened: `village->hosp.free_personnel`
//! becomes a single IR field named `hosp.free_personnel`, preserving the
//! memory layout (and hence `blkmov` sizes) of the unflattened struct.

use crate::ast::{self, AstBinOp, AstUnOp, Expr, Item, LValue, Stmt, TypeExpr, Unit};
use crate::token::Pos;
use earth_ir::builder::FunctionBuilder;
use earth_ir::{
    AtTarget, Basic, BinOp, Builtin, Cond, FuncId, Operand, Program, StructDef, StructId, Ty, UnOp,
    VarDecl, VarId,
};
use std::collections::HashMap;
use std::fmt;

/// A type-checking / lowering error.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(pos: Pos, message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError {
        pos,
        message: message.into(),
    })
}

/// Lowers a parsed translation unit to a SIMPLE IR program.
///
/// # Errors
///
/// Returns the first type error, unresolved name, unsupported construct, or
/// SIMPLE-form restriction violation (e.g. an impure `forall` condition).
pub fn lower_unit(unit: &Unit) -> Result<Program, LowerError> {
    let mut prog = Program::new();

    // Pass 1a: declare all struct names.
    let mut struct_ids: HashMap<String, StructId> = HashMap::new();
    for item in &unit.items {
        if let Item::Struct(s) = item {
            if struct_ids.contains_key(&s.name) {
                return err(s.pos, format!("duplicate struct `{}`", s.name));
            }
            let id = prog.add_struct(StructDef::new(s.name.clone()));
            struct_ids.insert(s.name.clone(), id);
        }
    }

    // Pass 1b: flatten fields (nested structs become dotted field names).
    let mut field_maps: HashMap<StructId, HashMap<String, earth_ir::FieldId>> = HashMap::new();
    for item in &unit.items {
        if let Item::Struct(s) = item {
            let sid = struct_ids[&s.name];
            let mut def = StructDef::new(s.name.clone());
            let mut map = HashMap::new();
            let mut stack = vec![s.name.clone()];
            flatten_struct(unit, &struct_ids, s, "", &mut def, &mut map, &mut stack)?;
            field_maps.insert(sid, map);
            // Replace the placeholder definition.
            replace_struct(&mut prog, sid, def);
        }
    }

    // Pass 2a: declare function signatures.
    let mut sigs: HashMap<String, (FuncId, Vec<Ty>, Option<Ty>)> = HashMap::new();
    let mut decls: Vec<&ast::FuncDecl> = Vec::new();
    for item in &unit.items {
        if let Item::Func(f) = item {
            if sigs.contains_key(&f.name) {
                return err(f.pos, format!("duplicate function `{}`", f.name));
            }
            if Builtin::by_name(&f.name).is_some() || is_special_call(&f.name) {
                return err(f.pos, format!("`{}` shadows a builtin", f.name));
            }
            let ret = lower_ret_type(&f.ret, &struct_ids, f.pos)?;
            let mut ptys = Vec::new();
            for p in &f.params {
                ptys.push(lower_type(&p.ty, &struct_ids, p.pos)?);
            }
            // Reserve the FuncId by inserting a shell function now.
            let shell = earth_ir::Function::new(f.name.clone(), ret);
            let fid = prog.add_function(shell);
            sigs.insert(f.name.clone(), (fid, ptys, ret));
            decls.push(f);
        }
    }

    // Pass 2b: lower bodies.
    let ctx = UnitCtx {
        struct_ids: &struct_ids,
        field_maps: &field_maps,
        sigs: &sigs,
    };
    for f in decls {
        let lowered = lower_function(&prog, &ctx, f)?;
        let fid = sigs[&f.name].0;
        prog.replace_function(fid, lowered);
    }

    earth_ir::validate_program(&prog).map_err(|e| LowerError {
        pos: Pos::default(),
        message: format!("internal error: lowering produced invalid IR: {e}"),
    })?;
    Ok(prog)
}

fn replace_struct(prog: &mut Program, sid: StructId, def: StructDef) {
    // Program has no struct replacement API; rebuild in place via interior
    // knowledge: structs are append-only, so we rebuild the program's struct
    // table through a small dance. To keep the IR crate's encapsulation we
    // instead mutate through a dedicated helper.
    prog.set_struct_def(sid, def);
}

fn flatten_struct(
    unit: &Unit,
    struct_ids: &HashMap<String, StructId>,
    s: &ast::StructDecl,
    prefix: &str,
    def: &mut StructDef,
    map: &mut HashMap<String, earth_ir::FieldId>,
    stack: &mut Vec<String>,
) -> Result<(), LowerError> {
    for (ty, fname) in &s.fields {
        let path = if prefix.is_empty() {
            fname.clone()
        } else {
            format!("{prefix}.{fname}")
        };
        match ty {
            TypeExpr::Int => {
                let id = def.add_field(path.clone(), Ty::Int);
                map.insert(path, id);
            }
            TypeExpr::Double => {
                let id = def.add_field(path.clone(), Ty::Double);
                map.insert(path, id);
            }
            TypeExpr::Ptr(name) => {
                let target = struct_ids.get(name).ok_or_else(|| LowerError {
                    pos: s.pos,
                    message: format!("unknown struct `{name}` in field `{path}`"),
                })?;
                let id = def.add_field(path.clone(), Ty::Ptr(*target));
                map.insert(path, id);
            }
            TypeExpr::Struct(name) => {
                if stack.contains(name) {
                    return err(
                        s.pos,
                        format!("struct `{}` recursively contains itself by value", name),
                    );
                }
                let inner = find_struct_decl(unit, name).ok_or_else(|| LowerError {
                    pos: s.pos,
                    message: format!("unknown struct `{name}` in field `{path}`"),
                })?;
                stack.push(name.clone());
                flatten_struct(unit, struct_ids, inner, &path, def, map, stack)?;
                stack.pop();
            }
            TypeExpr::Void => {
                return err(s.pos, format!("field `{path}` cannot have type void"));
            }
        }
    }
    Ok(())
}

fn find_struct_decl<'a>(unit: &'a Unit, name: &str) -> Option<&'a ast::StructDecl> {
    unit.items.iter().find_map(|i| match i {
        Item::Struct(s) if s.name == name => Some(s),
        _ => None,
    })
}

fn lower_type(
    ty: &TypeExpr,
    struct_ids: &HashMap<String, StructId>,
    pos: Pos,
) -> Result<Ty, LowerError> {
    match ty {
        TypeExpr::Int => Ok(Ty::Int),
        TypeExpr::Double => Ok(Ty::Double),
        TypeExpr::Void => err(pos, "`void` is only valid as a return type"),
        TypeExpr::Struct(n) => match struct_ids.get(n) {
            Some(id) => Ok(Ty::Struct(*id)),
            None => err(pos, format!("unknown struct `{n}`")),
        },
        TypeExpr::Ptr(n) => match struct_ids.get(n) {
            Some(id) => Ok(Ty::Ptr(*id)),
            None => err(pos, format!("unknown struct `{n}`")),
        },
    }
}

fn lower_ret_type(
    ty: &TypeExpr,
    struct_ids: &HashMap<String, StructId>,
    pos: Pos,
) -> Result<Option<Ty>, LowerError> {
    if matches!(ty, TypeExpr::Void) {
        Ok(None)
    } else {
        lower_type(ty, struct_ids, pos).map(Some)
    }
}

fn is_special_call(name: &str) -> bool {
    matches!(
        name,
        "writeto" | "addto" | "valueof" | "malloc" | "malloc_on"
    )
}

struct UnitCtx<'a> {
    struct_ids: &'a HashMap<String, StructId>,
    field_maps: &'a HashMap<StructId, HashMap<String, earth_ir::FieldId>>,
    sigs: &'a HashMap<String, (FuncId, Vec<Ty>, Option<Ty>)>,
}

/// The inferred type of an expression; `Null` unifies with any pointer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ETy {
    T(Ty),
    Null,
}

impl ETy {
    fn display(self, prog: &Program) -> String {
        match self {
            ETy::T(Ty::Int) => "int".into(),
            ETy::T(Ty::Double) => "double".into(),
            ETy::T(Ty::Ptr(s)) => format!("{}*", prog.struct_def(s).name),
            ETy::T(Ty::Struct(s)) => prog.struct_def(s).name.clone(),
            ETy::Null => "NULL".into(),
        }
    }
}

struct FnLower<'a> {
    prog: &'a Program,
    ctx: &'a UnitCtx<'a>,
    fb: FunctionBuilder,
    names: HashMap<String, VarId>,
    ret_ty: Option<Ty>,
    fname: String,
}

fn lower_function(
    prog: &Program,
    ctx: &UnitCtx<'_>,
    f: &ast::FuncDecl,
) -> Result<earth_ir::Function, LowerError> {
    let ret = lower_ret_type(&f.ret, ctx.struct_ids, f.pos)?;
    let mut lw = FnLower {
        prog,
        ctx,
        fb: FunctionBuilder::new(f.name.clone(), ret),
        names: HashMap::new(),
        ret_ty: ret,
        fname: f.name.clone(),
    };
    for p in &f.params {
        let ty = lower_type(&p.ty, ctx.struct_ids, p.pos)?;
        if p.quals.shared {
            return err(p.pos, "parameters cannot be `shared`");
        }
        let mut decl = VarDecl::new(p.name.clone(), ty);
        if p.quals.local {
            if !ty.is_ptr() {
                return err(p.pos, "`local` only applies to pointers");
            }
            decl = VarDecl::local(p.name.clone(), ty);
        }
        if lw.names.contains_key(&p.name) {
            return err(p.pos, format!("duplicate parameter `{}`", p.name));
        }
        let id = lw.fb.param(decl);
        lw.names.insert(p.name.clone(), id);
    }
    lw.stmts(&f.body)?;
    Ok(lw.fb.finish())
}

impl<'a> FnLower<'a> {
    fn struct_name(&self, sid: StructId) -> &str {
        &self.prog.struct_def(sid).name
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<VarId, LowerError> {
        self.names.get(name).copied().ok_or_else(|| LowerError {
            pos,
            message: format!("unknown variable `{name}` in `{}`", self.fname),
        })
    }

    fn var_ty(&self, v: VarId) -> Ty {
        self.fb.function().var(v).ty
    }

    fn is_shared(&self, v: VarId) -> bool {
        self.fb.function().var(v).shared
    }

    /// Resolves a flattened field path on struct `sid`.
    fn field(
        &self,
        sid: StructId,
        path: &[String],
        pos: Pos,
    ) -> Result<earth_ir::FieldId, LowerError> {
        let joined = path.join(".");
        self.ctx.field_maps[&sid]
            .get(&joined)
            .copied()
            .ok_or_else(|| LowerError {
                pos,
                message: format!(
                    "struct `{}` has no field `{}`",
                    self.struct_name(sid),
                    joined
                ),
            })
    }

    fn field_ty(&self, sid: StructId, fid: earth_ir::FieldId) -> Ty {
        self.prog.struct_def(sid).field(fid).ty
    }

    // ---- statements ---------------------------------------------------

    fn stmts(&mut self, ss: &[Stmt]) -> Result<(), LowerError> {
        for s in ss {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Block(ss) => self.stmts(ss),
            Stmt::Decl {
                ty,
                quals,
                name,
                init,
                pos,
            } => {
                if self.names.contains_key(name) {
                    return err(
                        *pos,
                        format!("duplicate variable `{name}` (shadowing is not supported)"),
                    );
                }
                let ir_ty = lower_type(ty, self.ctx.struct_ids, *pos)?;
                let decl = if quals.shared {
                    if ir_ty != Ty::Int {
                        return err(*pos, "`shared` variables must have type int");
                    }
                    VarDecl::shared(name.clone(), ir_ty)
                } else if quals.local {
                    if !ir_ty.is_ptr() {
                        return err(*pos, "`local` only applies to pointers");
                    }
                    VarDecl::local(name.clone(), ir_ty)
                } else {
                    VarDecl::new(name.clone(), ir_ty)
                };
                let id = self.fb.var(decl);
                self.names.insert(name.clone(), id);
                if let Some(e) = init {
                    if quals.shared {
                        return err(*pos, "initialize shared variables with writeto(&x, v)");
                    }
                    self.assign_var(id, e)?;
                }
                Ok(())
            }
            Stmt::Assign { lv, rhs, pos } => match lv {
                LValue::Var(name, vpos) => {
                    let v = self.lookup(name, *vpos)?;
                    if self.is_shared(v) {
                        return err(*pos, "assign shared variables with writeto(&x, v)");
                    }
                    self.assign_var(v, rhs)
                }
                LValue::FieldPath {
                    base,
                    arrow,
                    path,
                    pos,
                } => {
                    let b = self.lookup(base, *pos)?;
                    let bty = self.var_ty(b);
                    let (sid, is_deref) = match (bty, arrow) {
                        (Ty::Ptr(s), true) => (s, true),
                        (Ty::Struct(s), false) => (s, false),
                        (Ty::Ptr(_), false) => {
                            return err(*pos, format!("`{base}` is a pointer; use `->`"))
                        }
                        (Ty::Struct(_), true) => {
                            return err(*pos, format!("`{base}` is a struct; use `.`"))
                        }
                        _ => return err(*pos, format!("`{base}` has no fields")),
                    };
                    let fid = self.field(sid, path, *pos)?;
                    let fty = self.field_ty(sid, fid);
                    let (op, ety) = self.expr(rhs)?;
                    self.check_assignable(ETy::T(fty), ety, rhs.pos())?;
                    if is_deref {
                        self.fb.store_deref(b, fid, op);
                    } else {
                        self.fb.store_field(b, fid, op);
                    }
                    Ok(())
                }
            },
            Stmt::ExprStmt(e) => match e {
                Expr::Call {
                    name,
                    args,
                    at,
                    pos,
                } if name == "writeto" || name == "addto" => {
                    if at.is_some() {
                        return err(*pos, "atomic operations cannot take `@` clauses");
                    }
                    let var = self.shared_ref_arg(args, 0, *pos)?;
                    if args.len() != 2 {
                        return err(*pos, format!("`{name}` expects 2 arguments"));
                    }
                    let (val, vty) = self.expr(&args[1])?;
                    self.check_assignable(ETy::T(Ty::Int), vty, args[1].pos())?;
                    if name == "writeto" {
                        self.fb.atomic_write(var, val);
                    } else {
                        self.fb.atomic_add(var, val);
                    }
                    Ok(())
                }
                Expr::Call { .. } => {
                    self.expr_discard(e)?;
                    Ok(())
                }
                _ => err(e.pos(), "expression statements must be calls"),
            },
            Stmt::If {
                cond,
                then_s,
                else_s,
                pos: _,
            } => {
                let c = self.cond(cond)?;
                self.fb.begin_seq();
                let r = self.stmts(then_s);
                let then_stmt = self.fb.end_seq();
                r?;
                self.fb.begin_seq();
                let r = self.stmts(else_s);
                let else_stmt = self.fb.end_seq();
                r?;
                self.fb.emit_if(c, then_stmt, else_stmt);
                Ok(())
            }
            Stmt::While { cond, body, pos: _ } => {
                if let Some(c) = self.pure_cond(cond)? {
                    self.fb.begin_seq();
                    let r = self.stmts(body);
                    let b = self.fb.end_seq();
                    r?;
                    self.fb.emit_while(c, b);
                } else {
                    // `while (e)` with an impure condition becomes
                    //   t = e; while (t != 0) { body; t = e; }
                    let t = self.fb.temp(Ty::Int);
                    self.assign_bool(t, cond)?;
                    self.fb.begin_seq();
                    let r = self.stmts(body).and_then(|()| self.assign_bool(t, cond));
                    let b = self.fb.end_seq();
                    r?;
                    self.fb
                        .emit_while(Cond::new(BinOp::Ne, Operand::Var(t), Operand::int(0)), b);
                }
                Ok(())
            }
            Stmt::DoWhile { body, cond, pos: _ } => {
                if let Some(_c) = self.pure_cond(cond)? {
                    self.fb.begin_seq();
                    let r = self.stmts(body);
                    let b = self.fb.end_seq();
                    r?;
                    // Recompute: pure_cond emits nothing, so this is safe.
                    let c = self.pure_cond(cond)?.expect("purity is deterministic");
                    self.fb.emit_do_while(b, c);
                } else {
                    let t = self.fb.temp(Ty::Int);
                    self.fb.begin_seq();
                    let r = self.stmts(body).and_then(|()| self.assign_bool(t, cond));
                    let b = self.fb.end_seq();
                    r?;
                    self.fb
                        .emit_do_while(b, Cond::new(BinOp::Ne, Operand::Var(t), Operand::int(0)));
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                pos: _,
            } => {
                // `for` desugars to init; while (cond) { body; step; }.
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let always = Expr::Int(1, Pos::default());
                let cond = cond.as_ref().unwrap_or(&always);
                if let Some(_c) = self.pure_cond(cond)? {
                    self.fb.begin_seq();
                    let r = self.stmts(body).and_then(|()| match step {
                        Some(st) => self.stmt(st),
                        None => Ok(()),
                    });
                    let b = self.fb.end_seq();
                    r?;
                    let c = self.pure_cond(cond)?.expect("purity is deterministic");
                    self.fb.emit_while(c, b);
                } else {
                    let t = self.fb.temp(Ty::Int);
                    self.assign_bool(t, cond)?;
                    self.fb.begin_seq();
                    let r = self
                        .stmts(body)
                        .and_then(|()| match step {
                            Some(st) => self.stmt(st),
                            None => Ok(()),
                        })
                        .and_then(|()| self.assign_bool(t, cond));
                    let b = self.fb.end_seq();
                    r?;
                    self.fb
                        .emit_while(Cond::new(BinOp::Ne, Operand::Var(t), Operand::int(0)), b);
                }
                Ok(())
            }
            Stmt::Forall {
                init,
                cond,
                step,
                body,
                pos,
            } => {
                let init_b = self.lower_single_basic(init, *pos, "forall init")?;
                let Some(c) = self.pure_cond(cond)? else {
                    return err(
                        *pos,
                        "forall conditions must be simple comparisons over variables",
                    );
                };
                let step_b = self.lower_single_basic(step, *pos, "forall step")?;
                self.fb.begin_seq();
                let r = self.stmts(body);
                let b = self.fb.end_seq();
                r?;
                self.fb.emit_forall(init_b, c, step_b, b);
                Ok(())
            }
            Stmt::Switch {
                scrut,
                cases,
                default,
                pos: _,
            } => {
                let (op, ety) = self.expr(scrut)?;
                self.check_assignable(ETy::T(Ty::Int), ety, scrut.pos())?;
                let mut built = Vec::with_capacity(cases.len());
                for (v, body) in cases {
                    self.fb.begin_seq();
                    let r = self.stmts(body);
                    let cs = self.fb.end_seq();
                    r?;
                    built.push((*v, cs));
                }
                self.fb.begin_seq();
                let r = self.stmts(default);
                let def = self.fb.end_seq();
                r?;
                self.fb.emit_switch(op, built, def);
                Ok(())
            }
            Stmt::ParSeq(arms, _) => {
                let mut built = Vec::with_capacity(arms.len());
                for arm in arms {
                    self.fb.begin_seq();
                    let r = self.stmt(arm);
                    let a = self.fb.end_seq();
                    r?;
                    built.push(a);
                }
                self.fb.emit_par_seq(built);
                Ok(())
            }
            Stmt::Return(e, pos) => {
                match (e, self.ret_ty) {
                    (None, None) => {
                        self.fb.ret(None);
                    }
                    (Some(e), Some(rt)) => {
                        let (op, ety) = self.expr(e)?;
                        self.check_assignable(ETy::T(rt), ety, e.pos())?;
                        self.fb.ret(Some(op));
                    }
                    (None, Some(_)) => return err(*pos, "missing return value"),
                    (Some(_), None) => return err(*pos, "void function returns a value"),
                }
                Ok(())
            }
        }
    }

    /// Lowers a statement that must produce exactly one basic statement
    /// (used for `forall` init/step).
    fn lower_single_basic(&mut self, s: &Stmt, pos: Pos, what: &str) -> Result<Basic, LowerError> {
        self.fb.begin_seq();
        let r = self.stmt(s);
        let seq = self.fb.end_seq();
        r?;
        let earth_ir::StmtKind::Seq(mut ss) = seq.kind else {
            unreachable!()
        };
        if ss.len() != 1 {
            return err(
                pos,
                format!(
                    "{what} must lower to a single basic statement (got {})",
                    ss.len()
                ),
            );
        }
        match ss.pop().expect("length checked").kind {
            earth_ir::StmtKind::Basic(b) => Ok(b),
            _ => err(pos, format!("{what} must be a simple assignment")),
        }
    }

    /// Lowers a condition for an `if`: evaluation statements may be emitted
    /// before the branch.
    fn cond(&mut self, e: &Expr) -> Result<Cond, LowerError> {
        if let Some(c) = self.pure_cond(e)? {
            return Ok(c);
        }
        if let Expr::Binary { op, lhs, rhs, pos } = e {
            let ir_op = match op {
                AstBinOp::And | AstBinOp::Or => None,
                other => {
                    let o = ast_binop_to_ir(*other);
                    o.is_comparison().then_some(o)
                }
            };
            if let Some(ir_op) = ir_op {
                let (a, lt) = self.expr(lhs)?;
                let (b, rt) = self.expr(rhs)?;
                self.check_comparable(lt, rt, *pos)?;
                return Ok(Cond::new(ir_op, a, b));
            }
        }
        let t = self.fb.temp(Ty::Int);
        self.assign_bool(t, e)?;
        Ok(Cond::new(BinOp::Ne, Operand::Var(t), Operand::int(0)))
    }

    /// Tries to turn `e` into a condition without emitting any statements.
    fn pure_cond(&mut self, e: &Expr) -> Result<Option<Cond>, LowerError> {
        fn trivial(lw: &mut FnLower<'_>, e: &Expr) -> Result<Option<(Operand, ETy)>, LowerError> {
            match e {
                Expr::Int(..) | Expr::Double(..) | Expr::Null(..) | Expr::Var(..) => {
                    lw.expr(e).map(Some)
                }
                _ => Ok(None),
            }
        }
        match e {
            Expr::Binary { op, lhs, rhs, pos } => {
                let ir_op = match op {
                    AstBinOp::And | AstBinOp::Or => return Ok(None),
                    other => ast_binop_to_ir(*other),
                };
                if !ir_op.is_comparison() {
                    return Ok(None);
                }
                let (Some((a, lt)), Some((b, rt))) = (trivial(self, lhs)?, trivial(self, rhs)?)
                else {
                    return Ok(None);
                };
                self.check_comparable(lt, rt, *pos)?;
                Ok(Some(Cond::new(ir_op, a, b)))
            }
            Expr::Var(..) | Expr::Int(..) => {
                let (op, ety) = self.expr(e)?;
                let zero = match ety {
                    ETy::T(Ty::Ptr(_)) | ETy::Null => Operand::null(),
                    _ => Operand::int(0),
                };
                Ok(Some(Cond::new(BinOp::Ne, op, zero)))
            }
            _ => Ok(None),
        }
    }

    /// Emits `dst = (e != 0)` (or the direct comparison when `e` is one).
    fn assign_bool(&mut self, dst: VarId, e: &Expr) -> Result<(), LowerError> {
        match e {
            Expr::Binary { op, .. } => match op {
                AstBinOp::And | AstBinOp::Or => {
                    let Expr::Binary { op, lhs, rhs, .. } = e else {
                        unreachable!()
                    };
                    self.lower_logical(*op, lhs, rhs, dst)
                }
                other if ast_binop_to_ir(*other).is_comparison() => self.assign_var(dst, e),
                _ => {
                    let (op, _) = self.expr(e)?;
                    self.fb.binop(dst, BinOp::Ne, op, Operand::int(0));
                    Ok(())
                }
            },
            Expr::Unary {
                op: AstUnOp::Not, ..
            } => self.assign_var(dst, e),
            _ => {
                let (op, ety) = self.expr(e)?;
                let zero = match ety {
                    ETy::T(Ty::Ptr(_)) | ETy::Null => Operand::null(),
                    _ => Operand::int(0),
                };
                self.fb.binop(dst, BinOp::Ne, op, zero);
                Ok(())
            }
        }
    }

    // ---- expressions --------------------------------------------------

    fn shared_ref_arg(&mut self, args: &[Expr], idx: usize, pos: Pos) -> Result<VarId, LowerError> {
        match args.get(idx) {
            Some(Expr::AddrOf(name, p)) => {
                let v = self.lookup(name, *p)?;
                if !self.is_shared(v) {
                    return err(*p, format!("`&{name}`: variable is not `shared`"));
                }
                Ok(v)
            }
            _ => err(pos, "expected `&shared_var` argument"),
        }
    }

    fn check_assignable(&self, dst: ETy, src: ETy, pos: Pos) -> Result<(), LowerError> {
        match (dst, src) {
            (ETy::T(Ty::Int), ETy::T(Ty::Int)) => Ok(()),
            (ETy::T(Ty::Double), ETy::T(Ty::Double)) => Ok(()),
            // Implicit numeric conversions, as in C.
            (ETy::T(Ty::Double), ETy::T(Ty::Int)) => Ok(()),
            (ETy::T(Ty::Int), ETy::T(Ty::Double)) => Ok(()),
            (ETy::T(Ty::Ptr(a)), ETy::T(Ty::Ptr(b))) if a == b => Ok(()),
            (ETy::T(Ty::Ptr(_)), ETy::Null) => Ok(()),
            (ETy::T(Ty::Struct(a)), ETy::T(Ty::Struct(b))) if a == b => Ok(()),
            _ => err(
                pos,
                format!(
                    "type mismatch: cannot assign {} to {}",
                    src.display(self.prog),
                    dst.display(self.prog)
                ),
            ),
        }
    }

    fn expr_discard(&mut self, e: &Expr) -> Result<(), LowerError> {
        // Calls evaluated for effect.
        if let Expr::Call { name, .. } = e {
            if let Some((fid, _, ret)) = self.ctx.sigs.get(name) {
                let (fid, ret) = (*fid, *ret);
                let args = self.call_args(e)?;
                let at = self.at_clause(e)?;
                let _ = ret;
                self.fb.basic(Basic::Call {
                    dst: None,
                    func: fid,
                    args,
                    at,
                });
                return Ok(());
            }
        }
        let _ = self.expr(e)?;
        Ok(())
    }

    fn call_args(&mut self, e: &Expr) -> Result<Vec<Operand>, LowerError> {
        let Expr::Call {
            name, args, pos, ..
        } = e
        else {
            unreachable!()
        };
        let (_, ptys, _) = &self.ctx.sigs[name];
        let ptys = ptys.clone();
        if args.len() != ptys.len() {
            return err(
                *pos,
                format!(
                    "`{name}` expects {} arguments, got {}",
                    ptys.len(),
                    args.len()
                ),
            );
        }
        let mut out = Vec::with_capacity(args.len());
        for (a, pty) in args.iter().zip(ptys) {
            let (op, ety) = self.expr(a)?;
            self.check_assignable(ETy::T(pty), ety, a.pos())?;
            out.push(op);
        }
        Ok(out)
    }

    fn at_clause(&mut self, e: &Expr) -> Result<Option<AtTarget>, LowerError> {
        let Expr::Call { at, pos, .. } = e else {
            unreachable!()
        };
        match at {
            None => Ok(None),
            Some(ast::AtClause::OwnerOf(p)) => {
                let v = self.lookup(p, *pos)?;
                if !self.var_ty(v).is_ptr() {
                    return err(*pos, format!("OWNER_OF(`{p}`): not a pointer"));
                }
                Ok(Some(AtTarget::OwnerOf(v)))
            }
            Some(ast::AtClause::Node(n)) => {
                let (op, ety) = self.expr(n)?;
                self.check_assignable(ETy::T(Ty::Int), ety, n.pos())?;
                Ok(Some(AtTarget::Node(op)))
            }
        }
    }

    /// Lowers `e` to an operand, emitting intermediate statements.
    fn expr(&mut self, e: &Expr) -> Result<(Operand, ETy), LowerError> {
        match e {
            Expr::Int(v, _) => Ok((Operand::int(*v), ETy::T(Ty::Int))),
            Expr::Double(v, _) => Ok((Operand::double(*v), ETy::T(Ty::Double))),
            Expr::Null(_) => Ok((Operand::null(), ETy::Null)),
            Expr::Var(name, pos) => {
                let v = self.lookup(name, *pos)?;
                if self.is_shared(v) {
                    return err(*pos, format!("read shared `{name}` with valueof(&{name})"));
                }
                Ok((Operand::Var(v), ETy::T(self.var_ty(v))))
            }
            _ => {
                // Everything else materializes into a temp.
                let (ty, emit) = self.plan_value(e)?;
                let t = self.fb.temp(ty);
                emit(self, t)?;
                Ok((Operand::Var(t), ETy::T(ty)))
            }
        }
    }

    /// Lowers `e` and assigns the result to `dst` without an extra copy for
    /// the final operation.
    fn assign_var(&mut self, dst: VarId, e: &Expr) -> Result<(), LowerError> {
        let dty = self.var_ty(dst);
        match e {
            Expr::Int(..) | Expr::Double(..) | Expr::Null(..) | Expr::Var(..) => {
                let (op, ety) = self.expr(e)?;
                self.check_assignable(ETy::T(dty), ety, e.pos())?;
                self.fb.assign(dst, op);
                Ok(())
            }
            _ => {
                let (ty, emit) = self.plan_value(e)?;
                self.check_assignable(ETy::T(dty), ETy::T(ty), e.pos())?;
                emit(self, dst)
            }
        }
    }

    /// Plans the lowering of a non-trivial expression: returns its result
    /// type and a closure that emits the final operation into a given
    /// destination variable. Sub-expressions are lowered eagerly (emitting
    /// temps) when the plan is created... except they cannot be, because the
    /// borrow would overlap — so the closure performs all emission.
    #[allow(clippy::type_complexity)]
    fn plan_value(
        &mut self,
        e: &Expr,
    ) -> Result<
        (
            Ty,
            Box<dyn FnOnce(&mut Self, VarId) -> Result<(), LowerError> + 'a>,
        ),
        LowerError,
    > {
        match e {
            Expr::FieldPath {
                base,
                arrow,
                path,
                pos,
            } => {
                let b = self.lookup(base, *pos)?;
                let bty = self.var_ty(b);
                let (sid, is_deref) = match (bty, arrow) {
                    (Ty::Ptr(s), true) => (s, true),
                    (Ty::Struct(s), false) => (s, false),
                    (Ty::Ptr(_), false) => {
                        return err(*pos, format!("`{base}` is a pointer; use `->`"))
                    }
                    (Ty::Struct(_), true) => {
                        return err(*pos, format!("`{base}` is a struct; use `.`"))
                    }
                    _ => return err(*pos, format!("`{base}` has no fields")),
                };
                let fid = self.field(sid, path, *pos)?;
                let fty = self.field_ty(sid, fid);
                Ok((
                    fty,
                    Box::new(move |lw, dst| {
                        if is_deref {
                            lw.fb.load_deref(dst, b, fid);
                        } else {
                            lw.fb.load_field(dst, b, fid);
                        }
                        Ok(())
                    }),
                ))
            }
            Expr::Unary { op, arg, pos: _ } => {
                let op = *op;
                let arg = (**arg).clone();
                // Type: Neg preserves numeric type; Not yields int.
                // We must lower the argument inside the closure (after dst
                // is allocated) to keep statement order natural.
                let aty = self.peek_ty(&arg)?;
                let rty = match op {
                    AstUnOp::Neg => match aty {
                        ETy::T(Ty::Int) => Ty::Int,
                        ETy::T(Ty::Double) => Ty::Double,
                        _ => return err(arg.pos(), "`-` requires a numeric operand"),
                    },
                    AstUnOp::Not => Ty::Int,
                };
                Ok((
                    rty,
                    Box::new(move |lw, dst| {
                        let (a, _) = lw.expr(&arg)?;
                        let irop = match op {
                            AstUnOp::Neg => UnOp::Neg,
                            AstUnOp::Not => UnOp::Not,
                        };
                        lw.fb.unop(dst, irop, a);
                        Ok(())
                    }),
                ))
            }
            Expr::Binary { op, lhs, rhs, pos } => {
                let op = *op;
                let pos = *pos;
                match op {
                    AstBinOp::And | AstBinOp::Or => {
                        let lhs = (**lhs).clone();
                        let rhs = (**rhs).clone();
                        Ok((
                            Ty::Int,
                            Box::new(move |lw, dst| lw.lower_logical(op, &lhs, &rhs, dst)),
                        ))
                    }
                    _ => {
                        let lty = self.peek_ty(lhs)?;
                        let rty = self.peek_ty(rhs)?;
                        let ir_op = ast_binop_to_ir(op);
                        let res_ty = if ir_op.is_comparison() {
                            self.check_comparable(lty, rty, pos)?;
                            Ty::Int
                        } else {
                            match (lty, rty) {
                                (ETy::T(Ty::Int), ETy::T(Ty::Int)) => Ty::Int,
                                (ETy::T(Ty::Double), ETy::T(Ty::Int))
                                | (ETy::T(Ty::Int), ETy::T(Ty::Double))
                                | (ETy::T(Ty::Double), ETy::T(Ty::Double)) => Ty::Double,
                                _ => {
                                    return err(
                                        pos,
                                        format!(
                                            "arithmetic requires numeric operands, got {} and {}",
                                            lty.display(self.prog),
                                            rty.display(self.prog)
                                        ),
                                    )
                                }
                            }
                        };
                        let lhs = (**lhs).clone();
                        let rhs = (**rhs).clone();
                        Ok((
                            res_ty,
                            Box::new(move |lw, dst| {
                                let (a, _) = lw.expr(&lhs)?;
                                let (b, _) = lw.expr(&rhs)?;
                                lw.fb.binop(dst, ir_op, a, b);
                                Ok(())
                            }),
                        ))
                    }
                }
            }
            Expr::Call {
                name, pos, args, ..
            } => {
                // Special call forms first.
                match name.as_str() {
                    "valueof" => {
                        let args = args.clone();
                        let pos = *pos;
                        return Ok((
                            Ty::Int,
                            Box::new(move |lw, dst| {
                                let v = lw.shared_ref_arg(&args, 0, pos)?;
                                if args.len() != 1 {
                                    return err(pos, "`valueof` expects 1 argument");
                                }
                                lw.fb.value_of(dst, v);
                                Ok(())
                            }),
                        ));
                    }
                    "malloc" | "malloc_on" => {
                        let (sname, on) = match (name.as_str(), args.as_slice()) {
                            ("malloc", [Expr::Sizeof(s, _)]) => (s.clone(), None),
                            ("malloc_on", [node, Expr::Sizeof(s, _)]) => {
                                (s.clone(), Some(node.clone()))
                            }
                            _ => {
                                return err(
                                    *pos,
                                    format!("`{name}` expects (node,)? sizeof(Struct) arguments"),
                                )
                            }
                        };
                        let sid = *self.ctx.struct_ids.get(&sname).ok_or_else(|| LowerError {
                            pos: *pos,
                            message: format!("unknown struct `{sname}` in sizeof"),
                        })?;
                        return Ok((
                            Ty::Ptr(sid),
                            Box::new(move |lw, dst| {
                                let on_op = match &on {
                                    Some(n) => {
                                        let (op, ety) = lw.expr(n)?;
                                        lw.check_assignable(ETy::T(Ty::Int), ety, n.pos())?;
                                        Some(op)
                                    }
                                    None => None,
                                };
                                lw.fb.malloc(dst, sid, on_op);
                                Ok(())
                            }),
                        ));
                    }
                    "writeto" | "addto" => {
                        return err(*pos, format!("`{name}` is a statement, not an expression"))
                    }
                    _ => {}
                }
                if let Some(b) = Builtin::by_name(name) {
                    let args = args.clone();
                    let pos = *pos;
                    let rty = match b {
                        Builtin::Sqrt | Builtin::Fabs | Builtin::PrintDouble => Ty::Double,
                        _ => Ty::Int,
                    };
                    return Ok((
                        rty,
                        Box::new(move |lw, dst| {
                            if args.len() != b.arity() {
                                return err(
                                    pos,
                                    format!(
                                        "`{}` expects {} arguments, got {}",
                                        b.name(),
                                        b.arity(),
                                        args.len()
                                    ),
                                );
                            }
                            let mut ops = Vec::new();
                            for a in &args {
                                let (op, _) = lw.expr(a)?;
                                ops.push(op);
                            }
                            lw.fb.builtin(dst, b, ops);
                            Ok(())
                        }),
                    ));
                }
                // User function.
                let Some((fid, _, ret)) = self.ctx.sigs.get(name) else {
                    return err(*pos, format!("unknown function `{name}`"));
                };
                let (fid, ret) = (*fid, *ret);
                let Some(ret) = ret else {
                    return err(*pos, format!("void function `{name}` used as a value"));
                };
                let e = e.clone();
                Ok((
                    ret,
                    Box::new(move |lw, dst| {
                        let args = lw.call_args(&e)?;
                        let at = lw.at_clause(&e)?;
                        lw.fb.basic(Basic::Call {
                            dst: Some(dst),
                            func: fid,
                            args,
                            at,
                        });
                        Ok(())
                    }),
                ))
            }
            Expr::AddrOf(_, pos) => {
                err(*pos, "`&` is only valid in writeto/addto/valueof arguments")
            }
            Expr::Sizeof(_, pos) => err(*pos, "`sizeof` is only valid inside malloc"),
            Expr::Int(..) | Expr::Double(..) | Expr::Null(..) | Expr::Var(..) => {
                // Trivial values: plan as a copy.
                let (op, ety) = self.expr(e)?;
                let ty = match ety {
                    ETy::T(t) => t,
                    ETy::Null => {
                        return err(e.pos(), "NULL needs a pointer-typed context");
                    }
                };
                Ok((
                    ty,
                    Box::new(move |lw, dst| {
                        lw.fb.assign(dst, op);
                        Ok(())
                    }),
                ))
            }
        }
    }

    /// Infers the type of `e` without emitting code.
    fn peek_ty(&mut self, e: &Expr) -> Result<ETy, LowerError> {
        Ok(match e {
            Expr::Int(..) => ETy::T(Ty::Int),
            Expr::Double(..) => ETy::T(Ty::Double),
            Expr::Null(..) => ETy::Null,
            Expr::Var(name, pos) => ETy::T(self.var_ty(self.lookup(name, *pos)?)),
            Expr::FieldPath {
                base,
                arrow,
                path,
                pos,
            } => {
                let b = self.lookup(base, *pos)?;
                let sid = match (self.var_ty(b), arrow) {
                    (Ty::Ptr(s), true) | (Ty::Struct(s), false) => s,
                    _ => return err(*pos, format!("bad field access on `{base}`")),
                };
                let fid = self.field(sid, path, *pos)?;
                ETy::T(self.field_ty(sid, fid))
            }
            Expr::Unary { op, arg, .. } => match op {
                AstUnOp::Not => ETy::T(Ty::Int),
                AstUnOp::Neg => self.peek_ty(arg)?,
            },
            Expr::Binary { op, lhs, rhs, .. } => match op {
                AstBinOp::And
                | AstBinOp::Or
                | AstBinOp::Eq
                | AstBinOp::Ne
                | AstBinOp::Lt
                | AstBinOp::Le
                | AstBinOp::Gt
                | AstBinOp::Ge => ETy::T(Ty::Int),
                _ => {
                    let l = self.peek_ty(lhs)?;
                    let r = self.peek_ty(rhs)?;
                    match (l, r) {
                        (ETy::T(Ty::Double), _) | (_, ETy::T(Ty::Double)) => ETy::T(Ty::Double),
                        _ => ETy::T(Ty::Int),
                    }
                }
            },
            Expr::Call { name, pos, .. } => match name.as_str() {
                "valueof" => ETy::T(Ty::Int),
                "malloc" | "malloc_on" => {
                    // Type comes from the sizeof argument; re-derived during
                    // planning, so a best-effort answer suffices here.
                    if let Expr::Call { args, .. } = e {
                        let s = args.iter().find_map(|a| match a {
                            Expr::Sizeof(s, _) => Some(s.clone()),
                            _ => None,
                        });
                        match s.and_then(|s| self.ctx.struct_ids.get(&s).copied()) {
                            Some(sid) => ETy::T(Ty::Ptr(sid)),
                            None => return err(*pos, "malloc needs sizeof(Struct)"),
                        }
                    } else {
                        unreachable!()
                    }
                }
                _ => {
                    if let Some(b) = Builtin::by_name(name) {
                        match b {
                            Builtin::Sqrt | Builtin::Fabs | Builtin::PrintDouble => {
                                ETy::T(Ty::Double)
                            }
                            _ => ETy::T(Ty::Int),
                        }
                    } else if let Some((_, _, ret)) = self.ctx.sigs.get(name) {
                        match ret {
                            Some(t) => ETy::T(*t),
                            None => return err(*pos, format!("void function `{name}` as value")),
                        }
                    } else {
                        return err(*pos, format!("unknown function `{name}`"));
                    }
                }
            },
            Expr::AddrOf(_, pos) => return err(*pos, "`&` not valid here"),
            Expr::Sizeof(_, pos) => return err(*pos, "`sizeof` not valid here"),
        })
    }

    fn check_comparable(&self, l: ETy, r: ETy, pos: Pos) -> Result<(), LowerError> {
        match (l, r) {
            (ETy::T(Ty::Int), ETy::T(Ty::Int))
            | (ETy::T(Ty::Double), ETy::T(Ty::Double))
            | (ETy::T(Ty::Double), ETy::T(Ty::Int))
            | (ETy::T(Ty::Int), ETy::T(Ty::Double)) => Ok(()),
            (ETy::T(Ty::Ptr(a)), ETy::T(Ty::Ptr(b))) if a == b => Ok(()),
            (ETy::T(Ty::Ptr(_)), ETy::Null) | (ETy::Null, ETy::T(Ty::Ptr(_))) => Ok(()),
            (ETy::Null, ETy::Null) => Ok(()),
            _ => err(
                pos,
                format!(
                    "cannot compare {} with {}",
                    l.display(self.prog),
                    r.display(self.prog)
                ),
            ),
        }
    }

    /// Short-circuit lowering of `&&` / `||` into branches.
    fn lower_logical(
        &mut self,
        op: AstBinOp,
        lhs: &Expr,
        rhs: &Expr,
        dst: VarId,
    ) -> Result<(), LowerError> {
        let (l, lty) = self.expr(lhs)?;
        let zero = match lty {
            ETy::T(Ty::Ptr(_)) | ETy::Null => Operand::null(),
            _ => Operand::int(0),
        };
        match op {
            AstBinOp::And => {
                // dst = 0; if (l != 0) { dst = bool(rhs); }
                self.fb.assign(dst, Operand::int(0));
                self.fb.begin_seq();
                let r = self.assign_bool(dst, rhs);
                let then_s = self.fb.end_seq();
                r?;
                self.fb.begin_seq();
                let else_s = self.fb.end_seq();
                self.fb
                    .emit_if(Cond::new(BinOp::Ne, l, zero), then_s, else_s);
            }
            AstBinOp::Or => {
                // dst = 1; if (l == 0) { dst = bool(rhs); }
                self.fb.assign(dst, Operand::int(1));
                self.fb.begin_seq();
                let r = self.assign_bool(dst, rhs);
                let then_s = self.fb.end_seq();
                r?;
                self.fb.begin_seq();
                let else_s = self.fb.end_seq();
                self.fb
                    .emit_if(Cond::new(BinOp::Eq, l, zero), then_s, else_s);
            }
            _ => unreachable!("lower_logical only handles && and ||"),
        }
        Ok(())
    }
}

fn ast_binop_to_ir(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Rem => BinOp::Rem,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::Ne => BinOp::Ne,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::Le => BinOp::Le,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::Ge => BinOp::Ge,
        AstBinOp::And | AstBinOp::Or => unreachable!("logical ops lower to branches"),
    }
}
