//! # earth-frontend — EARTH-C subset frontend
//!
//! Lexer, parser, type checker and *simplifier* for the EARTH-C dialect used
//! by the reproduction of Zhu & Hendren (PLDI 1998). The output is SIMPLE IR
//! ([`earth_ir::Program`]) in three-address form with at most one
//! potentially-remote memory operation per basic statement — the input shape
//! the paper's possible-placement analysis expects.
//!
//! Supported EARTH-C constructs: struct definitions (including nested
//! struct-typed fields, which are flattened), pointer and scalar types,
//! `local` and `shared` qualifiers, `forall` loops, parallel statement
//! sequences `{^ ... ^}`, `@OWNER_OF(p)` / `@node` call placement, the
//! atomic operations `writeto`/`addto`/`valueof`, and `malloc`/`malloc_on`.
//!
//! # Examples
//!
//! ```
//! let prog = earth_frontend::compile(r#"
//!     struct Point { double x; double y; };
//!     double distance(Point *p) {
//!         double d;
//!         d = sqrt(p->x * p->x + p->y * p->y);
//!         return d;
//!     }
//! "#).unwrap();
//! // Simplification produced one remote read per statement: four in total,
//! // exactly as in the paper's Figure 3(b).
//! let f = prog.function(prog.function_by_name("distance").unwrap());
//! let remote_reads = f
//!     .basic_stmts()
//!     .iter()
//!     .filter(|(_, b)| b.deref_access().is_some())
//!     .count();
//! assert_eq!(remote_reads, 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[allow(missing_docs)] // AST field names mirror the grammar and are self-describing
pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

use std::fmt;

pub use lower::{lower_unit, LowerError};
pub use parser::{parse_unit, ParseError};
pub use token::{lex, LexError, Pos};

/// Any frontend failure: lexing, parsing, or lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// Syntax error (including lexical errors).
    Parse(ParseError),
    /// Type or lowering error.
    Lower(LowerError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

impl FrontendError {
    /// Converts the error to the toolchain-wide diagnostic format
    /// ([`earth_ir::diag`]): `FE001` for syntax errors, `FE002` for type and
    /// lowering errors, with the source position folded into the message.
    pub fn to_diagnostic(&self) -> earth_ir::Diagnostic {
        match self {
            FrontendError::Parse(e) => {
                earth_ir::Diagnostic::error("FE001", format!("syntax error: {}", e.message))
                    .with_note(format!("at {}", e.pos))
            }
            FrontendError::Lower(e) => earth_ir::Diagnostic::error("FE002", e.message.clone())
                .with_note(format!("at {}", e.pos)),
        }
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// Compiles EARTH-C source to a validated SIMPLE IR program.
///
/// # Errors
///
/// Returns a [`FrontendError`] for any lexical, syntactic, or type error.
pub fn compile(src: &str) -> Result<earth_ir::Program, FrontendError> {
    let unit = parse_unit(src)?;
    Ok(lower_unit(&unit)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earth_ir::{Basic, StmtKind};

    #[test]
    fn compiles_figure_1a_count() {
        let prog = compile(
            r#"
            struct node { node* next; int value; };
            int count(node *head, node *x) {
                shared int cnt;
                node *p;
                writeto(&cnt, 0);
                forall (p = head; p != NULL; p = p->next) {
                    if (equal_node(p, x) @ OWNER_OF(p)) {
                        addto(&cnt, 1);
                    }
                }
                return valueof(&cnt);
            }
            int equal_node(node local *p, node *q) {
                return p->value == q->value;
            }
        "#,
        )
        .unwrap();
        let count = prog.function(prog.function_by_name("count").unwrap());
        // The forall must survive lowering.
        let mut has_forall = false;
        count.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::Forall { .. }) {
                has_forall = true;
            }
        });
        assert!(has_forall);
        // In equal_node, `p` is local: only the `q->value` load is remote.
        let eq = prog.function(prog.function_by_name("equal_node").unwrap());
        let remote = eq
            .basic_stmts()
            .iter()
            .filter(|(_, b)| b.deref_access().is_some_and(|a| eq.deref_is_remote(a.base)))
            .count();
        assert_eq!(remote, 1);
    }

    #[test]
    fn compiles_figure_1b_count_rec() {
        let prog = compile(
            r#"
            struct node { node* next; int value; };
            int count_rec(node *head, node *x) {
                node *next;
                int c1;
                int c2;
                if (head != NULL) {
                    {^
                        c1 = equal_node(head, x) @ OWNER_OF(x);
                        c2 = count_rec(head->next, x);
                    ^}
                    return c1 + c2;
                } else {
                    return 0;
                }
            }
            int equal_node(node *p, node local *q) {
                return p->value == q->value;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("count_rec").unwrap());
        let mut par_arms = 0;
        f.body.walk(&mut |s| {
            if let StmtKind::ParSeq(arms) = &s.kind {
                par_arms = arms.len();
            }
        });
        assert_eq!(par_arms, 2);
    }

    #[test]
    fn while_with_remote_condition_reevaluates() {
        let prog = compile(
            r#"
            struct node { node* next; int value; };
            int f(node *p) {
                int n;
                n = 0;
                while (p->value > 0) {
                    n = n + 1;
                    p = p->next;
                }
                return n;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("f").unwrap());
        // The load of p->value must appear twice: once before the loop and
        // once at the end of the body.
        let loads = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| {
                b.deref_access()
                    .is_some_and(|a| !a.is_write && a.field == Some(earth_ir::FieldId(1)))
            })
            .count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn logical_ops_short_circuit() {
        let prog = compile(
            r#"
            struct S { int x; };
            int f(int a, int b) {
                int c;
                c = a && b || a;
                return c;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("f").unwrap());
        let mut ifs = 0;
        f.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::If { .. }) {
                ifs += 1;
            }
        });
        assert!(ifs >= 2, "expected branches from && and ||, got {ifs}");
    }

    #[test]
    fn nested_struct_fields_flatten() {
        let prog = compile(
            r#"
            struct Hosp { int free_personnel; int zero; };
            struct Village { Hosp hosp; int id; };
            int f(Village *v) {
                int t;
                t = (*v).hosp.free_personnel;
                v->hosp.free_personnel = t + 1;
                return t;
            }
        "#,
        )
        .unwrap();
        let sid = prog.struct_by_name("Village").unwrap();
        let def = prog.struct_def(sid);
        assert_eq!(def.size_words(), 3);
        assert!(def.field_by_name("hosp.free_personnel").is_some());
    }

    #[test]
    fn type_errors_are_reported() {
        let e = compile(
            r#"
            struct P { int x; };
            struct Q { int y; };
            void f(P *p, Q *q) {
                p = q;
            }
        "#,
        )
        .unwrap_err();
        assert!(matches!(e, FrontendError::Lower(_)));
        assert!(e.to_string().contains("type mismatch"));
    }

    #[test]
    fn shadowing_rejected() {
        let e = compile(
            r#"
            struct P { int x; };
            void f() {
                int a;
                int a;
            }
        "#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate variable"));
    }

    #[test]
    fn atomic_ops_require_shared() {
        let e = compile(
            r#"
            struct P { int x; };
            void f() {
                int a;
                writeto(&a, 1);
            }
        "#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("not `shared`"));
    }

    #[test]
    fn do_while_preserved() {
        let prog = compile(
            r#"
            struct P { int x; };
            int f(int n) {
                int i;
                i = 0;
                do {
                    i = i + 1;
                } while (i < n);
                return i;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("f").unwrap());
        let mut has_do = false;
        f.body.walk(&mut |s| {
            if matches!(s.kind, StmtKind::DoWhile { .. }) {
                has_do = true;
            }
        });
        assert!(has_do);
    }

    #[test]
    fn malloc_forms() {
        let prog = compile(
            r#"
            struct N { N* next; int v; };
            N* f(int node) {
                N *a;
                N *b;
                a = malloc(sizeof(N));
                b = malloc_on(node, sizeof(N));
                a->next = b;
                return a;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("f").unwrap());
        let mallocs = f
            .basic_stmts()
            .iter()
            .filter(|(_, b)| {
                matches!(
                    b,
                    Basic::Assign {
                        src: earth_ir::Rvalue::Malloc { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(mallocs, 2);
    }

    #[test]
    fn switch_lowering() {
        let prog = compile(
            r#"
            struct Q { Q* nw; Q* ne; int color; };
            Q* pick(Q *p, int q1) {
                Q *r;
                switch (q1) {
                    case 0: r = p->nw; break;
                    case 1: r = p->ne; break;
                    default: r = NULL;
                }
                return r;
            }
        "#,
        )
        .unwrap();
        let f = prog.function(prog.function_by_name("pick").unwrap());
        let mut cases = 0;
        f.body.walk(&mut |s| {
            if let StmtKind::Switch { cases: cs, .. } = &s.kind {
                cases = cs.len();
            }
        });
        assert_eq!(cases, 2);
    }
}
