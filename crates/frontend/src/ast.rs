//! Abstract syntax tree for the EARTH-C subset.
//!
//! The AST is the parser's output; the [`lower`](crate::lower) pass
//! type-checks it and produces three-address SIMPLE IR.

use crate::token::Pos;

/// A type as written in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `double`
    Double,
    /// `void` (function returns only)
    Void,
    /// A named struct used by value: `Point s;`
    Struct(String),
    /// A pointer to a named struct: `Point *p;`
    Ptr(String),
}

/// Qualifiers that may precede a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quals {
    /// `local` — dereferences are local memory accesses.
    pub local: bool,
    /// `shared` — accessed via atomic operations.
    pub shared: bool,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDecl {
    pub name: String,
    /// Field declarations `(type, name)`; struct-typed fields are allowed
    /// and flattened during lowering.
    pub fields: Vec<(TypeExpr, String)>,
    pub pos: Pos,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: TypeExpr,
    pub quals: Quals,
    pub name: String,
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    pub ret: TypeExpr,
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub pos: Pos,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Struct(StructDecl),
    Func(FuncDecl),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    pub items: Vec<Item>,
}

/// Binary operators at the AST level (including logical operators that the
/// simplifier lowers into branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstUnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Double literal.
    Double(f64, Pos),
    /// `NULL`
    Null(Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Field-path access: `base->a.b` (`arrow == true`) or `base.a.b`
    /// (`arrow == false`). `(*p).f` parses as the arrow form.
    FieldPath {
        base: String,
        arrow: bool,
        path: Vec<String>,
        pos: Pos,
    },
    /// Binary operation.
    Binary {
        op: AstBinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        pos: Pos,
    },
    /// Unary operation.
    Unary {
        op: AstUnOp,
        arg: Box<Expr>,
        pos: Pos,
    },
    /// Function or builtin call, optionally with an `@` placement.
    Call {
        name: String,
        args: Vec<Expr>,
        at: Option<AtClause>,
        pos: Pos,
    },
    /// `&var` — only valid as an argument to `writeto`/`addto`/`valueof`.
    AddrOf(String, Pos),
    /// `sizeof(StructName)` — only valid inside `malloc`-family calls.
    Sizeof(String, Pos),
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Double(_, p)
            | Expr::Null(p)
            | Expr::Var(_, p)
            | Expr::AddrOf(_, p)
            | Expr::Sizeof(_, p) => *p,
            Expr::FieldPath { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Unary { pos, .. }
            | Expr::Call { pos, .. } => *pos,
        }
    }
}

/// An `@` placement clause on a call.
#[derive(Debug, Clone, PartialEq)]
pub enum AtClause {
    /// `@ OWNER_OF(p)`
    OwnerOf(String),
    /// `@ expr` — explicit node id.
    Node(Box<Expr>),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x`
    Var(String, Pos),
    /// `base->a.b` or `base.a.b` (see [`Expr::FieldPath`]).
    FieldPath {
        base: String,
        arrow: bool,
        path: Vec<String>,
        pos: Pos,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        ty: TypeExpr,
        quals: Quals,
        name: String,
        init: Option<Expr>,
        pos: Pos,
    },
    /// `lv = expr;`
    Assign { lv: LValue, rhs: Expr, pos: Pos },
    /// Expression statement (a call evaluated for effect).
    ExprStmt(Expr),
    /// `if (c) s [else s]`
    If {
        cond: Expr,
        then_s: Vec<Stmt>,
        else_s: Vec<Stmt>,
        pos: Pos,
    },
    /// `while (c) s`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `do s while (c);`
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
        pos: Pos,
    },
    /// `for (init; cond; step) body` — `init`/`step` are assignments or
    /// calls.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `forall (init; cond; step) body`
    Forall {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Vec<Stmt>,
        pos: Pos,
    },
    /// `switch (e) { case v: ... }`
    Switch {
        scrut: Expr,
        cases: Vec<(i64, Vec<Stmt>)>,
        default: Vec<Stmt>,
        pos: Pos,
    },
    /// `return [e];`
    Return(Option<Expr>, Pos),
    /// `{^ arm1; arm2; ... ^}` — each top-level statement is one parallel
    /// arm.
    ParSeq(Vec<Stmt>, Pos),
    /// `{ ... }` nested block (introduces no new scope semantics beyond
    /// declaration ordering; shadowing is rejected during lowering).
    Block(Vec<Stmt>),
}
