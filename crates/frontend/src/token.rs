//! Lexer for the EARTH-C subset.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Default for Pos {
    fn default() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the EARTH-C subset.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // token names mirror their lexemes
pub enum Tok {
    /// Identifier or keyword-adjacent name.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Double(f64),

    // Keywords.
    KwStruct,
    KwInt,
    KwDouble,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwForall,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwReturn,
    KwLocal,
    KwShared,
    KwNull,
    KwOwnerOf,
    KwSizeof,

    // Punctuation and operators.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,
    Colon,
    Arrow,    // ->
    Dot,      // .
    Star,     // *
    Slash,    // /
    Percent,  // %
    Plus,     // +
    Minus,    // -
    Assign,   // =
    EqEq,     // ==
    NotEq,    // !=
    Lt,       // <
    Le,       // <=
    Gt,       // >
    Ge,       // >=
    AndAnd,   // &&
    OrOr,     // ||
    Not,      // !
    Amp,      // &
    At,       // @
    ParOpen,  // {^
    ParClose, // ^}
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Double(v) => write!(f, "double `{v}`"),
            Tok::KwStruct => write!(f, "`struct`"),
            Tok::KwInt => write!(f, "`int`"),
            Tok::KwDouble => write!(f, "`double`"),
            Tok::KwVoid => write!(f, "`void`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::KwWhile => write!(f, "`while`"),
            Tok::KwDo => write!(f, "`do`"),
            Tok::KwFor => write!(f, "`for`"),
            Tok::KwForall => write!(f, "`forall`"),
            Tok::KwSwitch => write!(f, "`switch`"),
            Tok::KwCase => write!(f, "`case`"),
            Tok::KwDefault => write!(f, "`default`"),
            Tok::KwBreak => write!(f, "`break`"),
            Tok::KwReturn => write!(f, "`return`"),
            Tok::KwLocal => write!(f, "`local`"),
            Tok::KwShared => write!(f, "`shared`"),
            Tok::KwNull => write!(f, "`NULL`"),
            Tok::KwOwnerOf => write!(f, "`OWNER_OF`"),
            Tok::KwSizeof => write!(f, "`sizeof`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::At => write!(f, "`@`"),
            Tok::ParOpen => write!(f, "`{{^`"),
            Tok::ParClose => write!(f, "`^}}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub tok: Tok,
    /// Where the token starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes EARTH-C source.
///
/// Supports `//` line comments and `/* */` block comments.
///
/// # Errors
///
/// Returns a [`LexError`] on unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut pos = Pos::default();

    let advance = |pos: &mut Pos, c: char| {
        if c == '\n' {
            pos.line += 1;
            pos.col = 1;
        } else {
            pos.col += 1;
        }
    };

    macro_rules! bump {
        () => {{
            advance(&mut pos, chars[i]);
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start = pos;
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                bump!();
                bump!();
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                s.push(chars[i]);
                bump!();
            }
            let tok = match s.as_str() {
                "struct" => Tok::KwStruct,
                "int" => Tok::KwInt,
                "double" => Tok::KwDouble,
                "void" => Tok::KwVoid,
                "if" => Tok::KwIf,
                "else" => Tok::KwElse,
                "while" => Tok::KwWhile,
                "do" => Tok::KwDo,
                "for" => Tok::KwFor,
                "forall" => Tok::KwForall,
                "switch" => Tok::KwSwitch,
                "case" => Tok::KwCase,
                "default" => Tok::KwDefault,
                "break" => Tok::KwBreak,
                "return" => Tok::KwReturn,
                "local" => Tok::KwLocal,
                "shared" => Tok::KwShared,
                "NULL" => Tok::KwNull,
                "OWNER_OF" => Tok::KwOwnerOf,
                "sizeof" => Tok::KwSizeof,
                _ => Tok::Ident(s),
            };
            out.push(Token { tok, pos: start });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut s = String::new();
            let mut is_double = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                s.push(chars[i]);
                bump!();
            }
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                is_double = true;
                s.push('.');
                bump!();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    s.push(chars[i]);
                    bump!();
                }
            }
            // Exponent.
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut j = i + 1;
                if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                    j += 1;
                }
                if j < chars.len() && chars[j].is_ascii_digit() {
                    is_double = true;
                    while i < j {
                        s.push(chars[i]);
                        bump!();
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        s.push(chars[i]);
                        bump!();
                    }
                }
            }
            let tok = if is_double {
                Tok::Double(s.parse().map_err(|_| LexError {
                    pos: start,
                    message: format!("malformed double literal `{s}`"),
                })?)
            } else {
                Tok::Int(s.parse().map_err(|_| LexError {
                    pos: start,
                    message: format!("integer literal out of range `{s}`"),
                })?)
            };
            out.push(Token { tok, pos: start });
            continue;
        }
        // Multi-character operators.
        let two = |a: char, b: char| i + 1 < chars.len() && c == a && chars[i + 1] == b;
        let tok = if two('{', '^') {
            bump!();
            bump!();
            Tok::ParOpen
        } else if two('^', '}') {
            bump!();
            bump!();
            Tok::ParClose
        } else if two('-', '>') {
            bump!();
            bump!();
            Tok::Arrow
        } else if two('=', '=') {
            bump!();
            bump!();
            Tok::EqEq
        } else if two('!', '=') {
            bump!();
            bump!();
            Tok::NotEq
        } else if two('<', '=') {
            bump!();
            bump!();
            Tok::Le
        } else if two('>', '=') {
            bump!();
            bump!();
            Tok::Ge
        } else if two('&', '&') {
            bump!();
            bump!();
            Tok::AndAnd
        } else if two('|', '|') {
            bump!();
            bump!();
            Tok::OrOr
        } else {
            let t = match c {
                '{' => Tok::LBrace,
                '}' => Tok::RBrace,
                '(' => Tok::LParen,
                ')' => Tok::RParen,
                ';' => Tok::Semi,
                ',' => Tok::Comma,
                ':' => Tok::Colon,
                '.' => Tok::Dot,
                '*' => Tok::Star,
                '/' => Tok::Slash,
                '%' => Tok::Percent,
                '+' => Tok::Plus,
                '-' => Tok::Minus,
                '=' => Tok::Assign,
                '<' => Tok::Lt,
                '>' => Tok::Gt,
                '!' => Tok::Not,
                '&' => Tok::Amp,
                '@' => Tok::At,
                other => {
                    return Err(LexError {
                        pos: start,
                        message: format!("unexpected character `{other}`"),
                    })
                }
            };
            bump!();
            t
        };
        out.push(Token { tok, pos: start });
    }
    out.push(Token { tok: Tok::Eof, pos });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("struct Point int foo"),
            vec![
                Tok::KwStruct,
                Tok::Ident("Point".into()),
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 2.25 1e3 7"),
            vec![
                Tok::Int(42),
                Tok::Double(2.25),
                Tok::Double(1000.0),
                Tok::Int(7),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("p->x == q.y && a != b"),
            vec![
                Tok::Ident("p".into()),
                Tok::Arrow,
                Tok::Ident("x".into()),
                Tok::EqEq,
                Tok::Ident("q".into()),
                Tok::Dot,
                Tok::Ident("y".into()),
                Tok::AndAnd,
                Tok::Ident("a".into()),
                Tok::NotEq,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn parallel_sequence_tokens() {
        assert_eq!(
            toks("{^ a; b; ^}"),
            vec![
                Tok::ParOpen,
                Tok::Ident("a".into()),
                Tok::Semi,
                Tok::Ident("b".into()),
                Tok::Semi,
                Tok::ParClose,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // hello\nb /* multi\nline */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn bad_char_errors() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.message.contains("unexpected"));
        assert_eq!(e.pos.col, 3);
    }

    #[test]
    fn at_owner_of() {
        assert_eq!(
            toks("f(x) @ OWNER_OF(p)"),
            vec![
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::Ident("x".into()),
                Tok::RParen,
                Tok::At,
                Tok::KwOwnerOf,
                Tok::LParen,
                Tok::Ident("p".into()),
                Tok::RParen,
                Tok::Eof
            ]
        );
    }
}
